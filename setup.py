"""Setup shim for environments without the `wheel` package.

`pip install -e .` uses PEP 660 (needs wheel); this shim lets
`python setup.py develop` work offline as a fallback.
"""
from setuptools import setup

setup()
