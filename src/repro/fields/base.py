"""Abstract finite-field interface.

All protocol code in :mod:`repro` works against the :class:`Field`
interface defined here.  Field *elements* are immutable value objects
(:class:`FieldElement`) wrapping an integer encoding; the field object
itself implements arithmetic on those encodings.  This split keeps hot
loops cheap (arithmetic on plain ints via field methods) while the
public API stays ergonomic (operator overloading on elements).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

if TYPE_CHECKING:
    from repro.obs.profiler import NullProfiler, OpProfiler

#: Valid batch-backend selection modes used across the sharing stack:
#: ``"auto"`` picks the numpy kernels when the field supports them,
#: ``"vectorized"`` requires them, ``"scalar"`` forces the pure-Python
#: reference path (see :mod:`repro.fields.vectorized`).
VECTOR_BACKEND_MODES: tuple[str, ...] = ("auto", "vectorized", "scalar")


class FieldElement:
    """An immutable element of a finite field.

    Supports ``+ - * / **`` against other elements of the same field and
    equality/hashing.  Construct elements via :meth:`Field.element` or
    the convenience call syntax ``field(value)``.
    """

    __slots__ = ("field", "value")

    def __init__(self, field: "Field", value: int) -> None:
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("FieldElement is immutable")

    # -- arithmetic ----------------------------------------------------
    def _coerce(self, other: object) -> int:
        if isinstance(other, FieldElement):
            if other.field is not self.field and other.field != self.field:
                raise ValueError(
                    f"cannot mix elements of {self.field} and {other.field}"
                )
            return other.value
        if isinstance(other, int):
            return self.field.encode(other)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: object) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return FieldElement(self.field, self.field.add(self.value, v))

    __radd__ = __add__

    def __sub__(self, other: object) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return FieldElement(self.field, self.field.sub(self.value, v))

    def __rsub__(self, other: object) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return FieldElement(self.field, self.field.sub(v, self.value))

    def __mul__(self, other: object) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return FieldElement(self.field, self.field.mul(self.value, v))

    __rmul__ = __mul__

    def __truediv__(self, other: object) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return FieldElement(self.field, self.field.div(self.value, v))

    def __rtruediv__(self, other: object) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented  # type: ignore[return-value]
        return FieldElement(self.field, self.field.div(v, self.value))

    def __neg__(self) -> "FieldElement":
        return FieldElement(self.field, self.field.neg(self.value))

    def __pow__(self, exponent: int) -> "FieldElement":
        return FieldElement(self.field, self.field.pow(self.value, exponent))

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse; raises ``ZeroDivisionError`` on zero."""
        return FieldElement(self.field, self.field.inv(self.value))

    # -- comparisons / hashing ----------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldElement):
            return self.field == other.field and self.value == other.value
        if isinstance(other, int):
            return self.value == self.field.encode(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(self.field), self.value))

    def __bool__(self) -> bool:
        return self.value != 0

    def __repr__(self) -> str:
        return f"{self.field.short_name}({self.value})"

    def __int__(self) -> int:
        return self.value


class Field(ABC):
    """A finite field acting on integer-encoded elements.

    Concrete subclasses (:class:`~repro.fields.gf2k.GF2k`,
    :class:`~repro.fields.primefield.PrimeField`) implement arithmetic
    on the integer encodings in ``[0, order)``.
    """

    #: Number of elements in the field.
    order: int
    #: Short display name used in ``repr`` of elements.
    short_name: str

    #: Scalar encoding ops wrapped by :meth:`instrument`.  Subclasses
    #: narrow or extend this to match their genuinely-scalar hot ops.
    _PROFILE_OPS: tuple[str, ...] = ("add", "sub", "neg", "mul", "inv", "pow")

    # -- raw arithmetic on encodings ----------------------------------
    @abstractmethod
    def add(self, a: int, b: int) -> int:
        """Return the encoding of ``a + b``."""

    @abstractmethod
    def sub(self, a: int, b: int) -> int:
        """Return the encoding of ``a - b``."""

    @abstractmethod
    def neg(self, a: int) -> int:
        """Return the encoding of ``-a``."""

    @abstractmethod
    def mul(self, a: int, b: int) -> int:
        """Return the encoding of ``a * b``."""

    @abstractmethod
    def inv(self, a: int) -> int:
        """Return the encoding of ``a**-1``; raise on zero."""

    def div(self, a: int, b: int) -> int:
        """Return the encoding of ``a / b``; raise on ``b == 0``."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        """Return the encoding of ``a**e`` (square-and-multiply).

        Negative exponents invert first; ``0**0 == 1`` by convention.
        """
        if e < 0:
            a = self.inv(a)
            e = -e
        result = self.encode(1)
        base = a
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result

    @abstractmethod
    def encode(self, value: int) -> int:
        """Map an arbitrary integer into the canonical encoding range."""

    # -- element-level conveniences ------------------------------------
    def element(self, value: int) -> FieldElement:
        """Wrap ``value`` as a :class:`FieldElement` of this field."""
        return FieldElement(self, self.encode(value))

    def __call__(self, value: int) -> FieldElement:
        return self.element(value)

    def zero(self) -> FieldElement:
        """The additive identity."""
        return FieldElement(self, 0)

    def one(self) -> FieldElement:
        """The multiplicative identity."""
        return FieldElement(self, self.encode(1))

    def random(self, rng: random.Random) -> FieldElement:
        """A uniformly random element."""
        return FieldElement(self, rng.randrange(self.order))

    def random_nonzero(self, rng: random.Random) -> FieldElement:
        """A uniformly random non-zero element."""
        return FieldElement(self, rng.randrange(1, self.order))

    def elements(self) -> Iterable[FieldElement]:
        """Iterate over every element (use only for tiny fields)."""
        return (FieldElement(self, v) for v in range(self.order))

    def sum(self, items: Sequence[FieldElement]) -> FieldElement:
        """Sum a sequence of elements (empty sum is zero)."""
        acc = 0
        for item in items:
            acc = self.add(acc, item.value)
        return FieldElement(self, acc)

    # -- profiling -----------------------------------------------------
    def instrument(
        self,
        profiler: "OpProfiler | NullProfiler",
        component: str = "fields",
    ) -> Callable[[], None]:
        """Count every scalar op of this field instance on ``profiler``.

        Installs *instance-attribute* wrappers around the methods named
        in :attr:`_PROFILE_OPS` — each call records one
        ``component/op`` increment before delegating to the original
        bound method.  Because the wrappers live in the instance dict,
        an uninstrumented field (the default, including the
        module-cached instances of :func:`repro.fields.gf2k.gf2k`) pays
        literally nothing: the class methods run untouched.

        Returns an undo callable that removes the wrappers; always call
        it (or use :func:`repro.obs.profiler.profiled`, which does so in
        a ``finally``) so cached fields never stay instrumented.
        """
        installed: list[str] = []

        def _wrap(op: str, orig: Callable) -> Callable:
            def wrapper(*args: int) -> int:
                profiler.count(component, op)
                return orig(*args)

            return wrapper

        for op in type(self)._PROFILE_OPS:
            if op in self.__dict__:  # already instrumented: refuse to stack
                continue
            orig = getattr(self, op)
            setattr(self, op, _wrap(op, orig))
            installed.append(op)

        def undo() -> None:
            for op in installed:
                self.__dict__.pop(op, None)

        return undo

    # -- identity ------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return self is other or (
            isinstance(other, Field)
            and type(other) is type(self)
            and self._key() == other._key()
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    @abstractmethod
    def _key(self) -> tuple:
        """A tuple identifying the field up to equality."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(order={self.order})"
