"""Polynomials over GF(2) and irreducible-polynomial search.

GF(2)[x] polynomials are encoded as Python integers: bit ``i`` of the
integer is the coefficient of ``x**i``.  This module provides the
carry-less arithmetic needed to build GF(2^k) extension fields and a
deterministic search for the lexicographically smallest irreducible
polynomial of each degree (so no hand-copied tables can be wrong).
"""

from __future__ import annotations

from functools import lru_cache


def gf2_degree(poly: int) -> int:
    """Degree of a GF(2)[x] polynomial (``-1`` for the zero polynomial)."""
    return poly.bit_length() - 1


def gf2_mul(a: int, b: int) -> int:
    """Carry-less (XOR) multiplication of two GF(2)[x] polynomials."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def gf2_mod(a: int, modulus: int) -> int:
    """Remainder of ``a`` modulo ``modulus`` in GF(2)[x]."""
    if modulus == 0:
        raise ZeroDivisionError("polynomial modulus is zero")
    deg_m = gf2_degree(modulus)
    deg_a = gf2_degree(a)
    while deg_a >= deg_m:
        a ^= modulus << (deg_a - deg_m)
        deg_a = gf2_degree(a)
    return a


def gf2_divmod(a: int, b: int) -> tuple[int, int]:
    """Quotient and remainder of ``a / b`` in GF(2)[x]."""
    if b == 0:
        raise ZeroDivisionError("polynomial division by zero")
    deg_b = gf2_degree(b)
    quotient = 0
    while True:
        deg_a = gf2_degree(a)
        if deg_a < deg_b:
            return quotient, a
        shift = deg_a - deg_b
        quotient ^= 1 << shift
        a ^= b << shift


def gf2_mulmod(a: int, b: int, modulus: int) -> int:
    """``a * b mod modulus`` in GF(2)[x], reducing as we go."""
    deg_m = gf2_degree(modulus)
    result = 0
    a = gf2_mod(a, modulus)
    while b:
        if b & 1:
            result ^= a
        b >>= 1
        a <<= 1
        if gf2_degree(a) >= deg_m:
            a ^= modulus << (gf2_degree(a) - deg_m)
    return result


def gf2_powmod(a: int, exponent: int, modulus: int) -> int:
    """``a ** exponent mod modulus`` in GF(2)[x] by square-and-multiply."""
    result = 1
    a = gf2_mod(a, modulus)
    while exponent:
        if exponent & 1:
            result = gf2_mulmod(result, a, modulus)
        a = gf2_mulmod(a, a, modulus)
        exponent >>= 1
    return result


def gf2_gcd(a: int, b: int) -> int:
    """Greatest common divisor in GF(2)[x]."""
    while b:
        a, b = b, gf2_mod(a, b)
    return a


def _prime_factors(n: int) -> list[int]:
    """Distinct prime factors of ``n`` by trial division."""
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def is_irreducible(poly: int) -> bool:
    """Rabin irreducibility test for a GF(2)[x] polynomial.

    ``poly`` of degree ``k`` is irreducible over GF(2) iff
    ``x**(2**k) == x (mod poly)`` and, for every prime ``p | k``,
    ``gcd(x**(2**(k//p)) - x, poly) == 1``.
    """
    k = gf2_degree(poly)
    if k <= 0:
        return False
    if k == 1:
        return True
    if not poly & 1:  # divisible by x
        return False
    x = 0b10
    for p in _prime_factors(k):
        h = gf2_powmod(x, 1 << (k // p), poly) ^ x
        if gf2_gcd(h, poly) != 1:
            return False
    return gf2_powmod(x, 1 << k, poly) == x


@lru_cache(maxsize=None)
def irreducible_polynomial(degree: int) -> int:
    """The lexicographically smallest irreducible GF(2)[x] polynomial.

    Deterministic search, cached per degree.  Used as the reduction
    modulus of :class:`~repro.fields.gf2k.GF2k`.
    """
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    base = 1 << degree
    for low in range(1, base, 2):  # constant term must be 1 (degree >= 1)
        candidate = base | low
        if is_irreducible(candidate):
            return candidate
    raise RuntimeError(f"no irreducible polynomial of degree {degree} found")


def poly_to_string(poly: int) -> str:
    """Human-readable form of a GF(2)[x] polynomial, e.g. ``x^4 + x + 1``."""
    if poly == 0:
        return "0"
    terms = []
    for i in range(gf2_degree(poly), -1, -1):
        if poly >> i & 1:
            if i == 0:
                terms.append("1")
            elif i == 1:
                terms.append("x")
            else:
                terms.append(f"x^{i}")
    return " + ".join(terms)
