"""Prime fields GF(p).

The anonymous channel itself runs over GF(2^kappa), but prime fields are
useful as an alternative substrate for the VSS layer (any field with
more than ``n`` elements works for Shamir-style sharing) and for tests
that want small, human-readable arithmetic.
"""

from __future__ import annotations

import random

from .base import Field

_SMALL_PRIMES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_prime(n: int) -> bool:
    """Deterministic Miller–Rabin primality test for 64-bit-ish inputs.

    Uses the standard witness set that is provably correct for
    ``n < 3317044064679887385961981``; falls back to 40 random rounds
    beyond that.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def witness(a: int) -> bool:
        x = pow(a, d, n)
        if x in (1, n - 1):
            return False
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                return False
        return True

    if n < 3317044064679887385961981:
        witnesses: tuple[int, ...] = _SMALL_PRIMES
    else:
        rng = random.Random(n)
        witnesses = tuple(rng.randrange(2, n - 1) for _ in range(40))
    return not any(witness(a % n) for a in witnesses if a % n >= 2)


def next_prime(n: int) -> int:
    """Smallest prime ``>= n``."""
    if n <= 2:
        return 2
    candidate = n | 1
    while not is_prime(candidate):
        candidate += 2
    return candidate


class PrimeField(Field):
    """The finite field GF(p) for prime ``p``, encoded as ints ``[0, p)``."""

    #: Ops counted by :meth:`Field.instrument` (all scalar ops cost here).
    _PROFILE_OPS = ("add", "sub", "neg", "mul", "inv", "pow")

    def __init__(self, p: int) -> None:
        if not is_prime(p):
            raise ValueError(f"{p} is not prime")
        self.p = p
        self.order = p
        self.short_name = f"GF({p})"

    def add(self, a: int, b: int) -> int:
        s = a + b
        return s - self.p if s >= self.p else s

    def sub(self, a: int, b: int) -> int:
        d = a - b
        return d + self.p if d < 0 else d

    def neg(self, a: int) -> int:
        return self.p - a if a else 0

    def mul(self, a: int, b: int) -> int:
        return a * b % self.p

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("inverse of zero in " + self.short_name)
        return pow(a, self.p - 2, self.p)

    def pow(self, a: int, e: int) -> int:
        if e < 0:
            a = self.inv(a)
            e = -e
        return pow(a, e, self.p)

    def encode(self, value: int) -> int:
        return value % self.p

    def _key(self) -> tuple:
        return (self.p,)
