"""Binary extension fields GF(2^k).

The paper's protocol computes over ``F = GF(2^kappa)`` with
``kappa >= 2n``; elements double as ``kappa``-bit strings (the joint
challenge ``r`` is reconstructed as a field element and then read as a
bit string).  Addition is XOR; multiplication is carry-less
multiplication modulo a fixed irreducible polynomial.

For ``k <= GF2k.TABLE_MAX_K`` the field precomputes discrete log/exp
tables over a generator, making multiplication and inversion O(1) table
lookups — this is what keeps large simulated protocol runs tractable in
pure Python.  Larger fields fall back to carry-less multiplication and
Fermat inversion.
"""

from __future__ import annotations

from .base import Field, FieldElement
from .irreducible import (
    gf2_degree,
    gf2_mulmod,
    gf2_powmod,
    irreducible_polynomial,
    is_irreducible,
    poly_to_string,
)

_FIELD_CACHE: dict[tuple[int, int], "GF2k"] = {}


class GF2k(Field):
    """The finite field GF(2^k), elements encoded as ints in ``[0, 2^k)``.

    Parameters
    ----------
    k:
        Extension degree (``k >= 1``).
    modulus:
        Optional reduction polynomial (bitmask encoding, degree must be
        ``k`` and the polynomial irreducible).  Defaults to the
        lexicographically smallest irreducible polynomial of degree
        ``k``.

    Use :func:`gf2k` to obtain cached instances.
    """

    #: Largest k for which full log/exp tables are built (2^k entries).
    TABLE_MAX_K = 16

    #: Ops counted by :meth:`Field.instrument`.  ``neg`` is excluded:
    #: characteristic 2 makes it the identity, so counting it would
    #: inflate the op profile with free operations.
    _PROFILE_OPS = ("add", "sub", "mul", "inv", "pow")

    def __init__(self, k: int, modulus: int | None = None) -> None:
        if k < 1:
            raise ValueError(f"extension degree must be >= 1, got {k}")
        if modulus is None:
            modulus = irreducible_polynomial(k)
        if gf2_degree(modulus) != k:
            raise ValueError(
                f"modulus degree {gf2_degree(modulus)} does not match k={k}"
            )
        if not is_irreducible(modulus):
            raise ValueError(f"modulus {poly_to_string(modulus)} is reducible")
        self.k = k
        self.modulus = modulus
        self.order = 1 << k
        self.short_name = f"GF(2^{k})"
        self._mask = self.order - 1
        self._exp: list[int] | None = None
        self._log: list[int] | None = None
        if k <= self.TABLE_MAX_K:
            self._build_tables()

    @property
    def has_tables(self) -> bool:
        """Whether log/exp tables exist (``k <= TABLE_MAX_K``).

        Table-backed fields get gather-based vectorized multiplication;
        tableless ones rely on the carryless kernel (see
        :mod:`repro.fields.vectorized`).
        """
        return self._exp is not None

    # -- table construction --------------------------------------------
    def _build_tables(self) -> None:
        """Build discrete log/exp tables over a multiplicative generator."""
        group_order = self.order - 1
        generator = self._find_generator(group_order)
        exp = [1] * (2 * group_order)
        log = [0] * self.order
        value = 1
        for i in range(group_order):
            exp[i] = value
            log[value] = i
            value = gf2_mulmod(value, generator, self.modulus)
        if value != 1:
            raise RuntimeError("generator order mismatch while building tables")
        # Duplicate the exp table so mul can skip one modular reduction.
        for i in range(group_order, 2 * group_order):
            exp[i] = exp[i - group_order]
        self._exp = exp
        self._log = log
        self._group_order = group_order

    def _find_generator(self, group_order: int) -> int:
        """Smallest multiplicative generator of GF(2^k)*."""
        from .irreducible import _prime_factors

        factors = _prime_factors(group_order)
        for candidate in range(2, self.order):
            if all(
                gf2_powmod(candidate, group_order // p, self.modulus) != 1
                for p in factors
            ):
                return candidate
        # k == 1: the group is trivial, 1 generates it.
        return 1

    # -- Field interface -------------------------------------------------
    def add(self, a: int, b: int) -> int:
        return a ^ b

    def sub(self, a: int, b: int) -> int:
        return a ^ b

    def neg(self, a: int) -> int:
        return a

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        if self._exp is not None:
            return self._exp[self._log[a] + self._log[b]]
        return gf2_mulmod(a, b, self.modulus)

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("inverse of zero in " + self.short_name)
        if self._exp is not None:
            return self._exp[self._group_order - self._log[a]]
        # Fermat: a^(2^k - 2)
        return gf2_powmod(a, self.order - 2, self.modulus)

    def pow(self, a: int, e: int) -> int:
        if self._exp is not None and a != 0:
            if e < 0:
                e = (e % self._group_order + self._group_order) % self._group_order
            return self._exp[(self._log[a] * e) % self._group_order]
        return super().pow(a, e)

    def encode(self, value: int) -> int:
        if 0 <= value < self.order:
            return value
        # Interpret arbitrary ints as GF(2)[x] polynomials and reduce.
        from .irreducible import gf2_mod

        return gf2_mod(value, self.modulus) if value >= 0 else gf2_mod(-value, self.modulus)

    def _key(self) -> tuple:
        return (self.k, self.modulus)

    # -- GF(2^k)-specific helpers ----------------------------------------
    def from_bits(self, bits: list[int]) -> FieldElement:
        """Element whose encoding has bit ``i`` equal to ``bits[i]``."""
        if len(bits) > self.k:
            raise ValueError(f"{len(bits)} bits do not fit in {self.short_name}")
        value = 0
        for i, bit in enumerate(bits):
            if bit not in (0, 1):
                raise ValueError(f"bit {i} is {bit}, expected 0 or 1")
            value |= bit << i
        return FieldElement(self, value)

    def to_bits(self, element: FieldElement) -> list[int]:
        """The ``k`` bits of an element's encoding, LSB first.

        The protocol interprets the jointly-reconstructed challenge
        ``r`` as a bit string this way (paper, step 2).
        """
        value = element.value
        return [(value >> i) & 1 for i in range(self.k)]

    def __repr__(self) -> str:
        return f"GF2k(k={self.k}, modulus={poly_to_string(self.modulus)})"


def gf2k(k: int, modulus: int | None = None) -> GF2k:
    """Return a cached GF(2^k) instance (tables are built once per k)."""
    key = (k, modulus if modulus is not None else irreducible_polynomial(k))
    field = _FIELD_CACHE.get(key)
    if field is None:
        field = GF2k(k, key[1])
        _FIELD_CACHE[key] = field
    return field
