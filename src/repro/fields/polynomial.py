"""Univariate polynomials over a finite field.

These are the workhorse of the secret-sharing layer: Shamir shares are
evaluations of a random polynomial, reconstruction is Lagrange
interpolation, and the bivariate sharing in :mod:`repro.sharing` reduces
to rows/columns of univariate polynomials.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from .base import Field, FieldElement


class Polynomial:
    """A polynomial over a :class:`~repro.fields.base.Field`.

    Coefficients are stored low-degree first and normalized (no trailing
    zero coefficients).  The zero polynomial has an empty coefficient
    list and degree ``-1``.
    """

    __slots__ = ("field", "coeffs")

    def __init__(self, field: Field, coeffs: Iterable[FieldElement | int]) -> None:
        values = [
            c.value if isinstance(c, FieldElement) else field.encode(c)
            for c in coeffs
        ]
        while values and values[-1] == 0:
            values.pop()
        self.field = field
        self.coeffs = values

    # -- constructors ----------------------------------------------------
    @classmethod
    def zero(cls, field: Field) -> "Polynomial":
        """The zero polynomial."""
        return cls(field, [])

    @classmethod
    def constant(cls, value: FieldElement) -> "Polynomial":
        """The constant polynomial ``value``."""
        return cls(value.field, [value])

    @classmethod
    def random(
        cls,
        field: Field,
        degree: int,
        rng: random.Random,
        constant: FieldElement | None = None,
    ) -> "Polynomial":
        """A uniformly random polynomial of degree at most ``degree``.

        If ``constant`` is given the constant coefficient is fixed to it
        (this is how a Shamir dealer hides a secret at ``f(0)``).
        """
        if degree < 0:
            raise ValueError(f"degree must be >= 0, got {degree}")
        coeffs = [rng.randrange(field.order) for _ in range(degree + 1)]
        if constant is not None:
            coeffs[0] = constant.value
        poly = cls.__new__(cls)
        while coeffs and coeffs[-1] == 0:
            coeffs.pop()
        poly.field = field
        poly.coeffs = coeffs
        return poly

    # -- queries -----------------------------------------------------------
    @property
    def degree(self) -> int:
        """Degree of the polynomial (``-1`` for the zero polynomial)."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        """True iff this is the zero polynomial."""
        return not self.coeffs

    def coefficient(self, i: int) -> FieldElement:
        """The coefficient of ``x**i`` (zero beyond the degree)."""
        if 0 <= i < len(self.coeffs):
            return FieldElement(self.field, self.coeffs[i])
        return self.field.zero()

    def __call__(self, x: FieldElement | int) -> FieldElement:
        """Evaluate at ``x`` by Horner's rule."""
        xv = x.value if isinstance(x, FieldElement) else self.field.encode(x)
        f = self.field
        acc = 0
        for c in reversed(self.coeffs):
            acc = f.add(f.mul(acc, xv), c)
        return FieldElement(f, acc)

    def evaluate_many(self, xs: Sequence[FieldElement | int]) -> list[FieldElement]:
        """Evaluate at several points."""
        return [self(x) for x in xs]

    # -- arithmetic ----------------------------------------------------------
    def _check(self, other: "Polynomial") -> None:
        if other.field != self.field:
            raise ValueError("cannot mix polynomials over different fields")

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check(other)
        f = self.field
        a, b = self.coeffs, other.coeffs
        if len(a) < len(b):
            a, b = b, a
        out = list(a)
        for i, c in enumerate(b):
            out[i] = f.add(out[i], c)
        return Polynomial(f, [FieldElement(f, v) for v in out])

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        self._check(other)
        f = self.field
        n = max(len(self.coeffs), len(other.coeffs))
        out = []
        for i in range(n):
            a = self.coeffs[i] if i < len(self.coeffs) else 0
            b = other.coeffs[i] if i < len(other.coeffs) else 0
            out.append(FieldElement(f, f.sub(a, b)))
        return Polynomial(f, out)

    def __neg__(self) -> "Polynomial":
        f = self.field
        return Polynomial(f, [FieldElement(f, f.neg(c)) for c in self.coeffs])

    def __mul__(self, other: "Polynomial | FieldElement | int") -> "Polynomial":
        f = self.field
        if isinstance(other, (FieldElement, int)):
            s = other.value if isinstance(other, FieldElement) else f.encode(other)
            return Polynomial(
                f, [FieldElement(f, f.mul(c, s)) for c in self.coeffs]
            )
        self._check(other)
        if self.is_zero() or other.is_zero():
            return Polynomial.zero(f)
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                if b:
                    out[i + j] = f.add(out[i + j], f.mul(a, b))
        return Polynomial(f, [FieldElement(f, v) for v in out])

    __rmul__ = __mul__

    def divmod(self, divisor: "Polynomial") -> tuple["Polynomial", "Polynomial"]:
        """Polynomial long division: returns ``(quotient, remainder)``."""
        self._check(divisor)
        if divisor.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        f = self.field
        remainder = list(self.coeffs)
        dcoeffs = divisor.coeffs
        dlead_inv = f.inv(dcoeffs[-1])
        ddeg = len(dcoeffs) - 1
        if len(remainder) <= ddeg:
            return Polynomial.zero(f), Polynomial(
                f, [FieldElement(f, v) for v in remainder]
            )
        qcoeffs = [0] * (len(remainder) - ddeg)
        for i in range(len(remainder) - 1, ddeg - 1, -1):
            coef = remainder[i]
            if coef == 0:
                continue
            q = f.mul(coef, dlead_inv)
            qcoeffs[i - ddeg] = q
            for j, dc in enumerate(dcoeffs):
                remainder[i - ddeg + j] = f.sub(
                    remainder[i - ddeg + j], f.mul(q, dc)
                )
        return (
            Polynomial(f, [FieldElement(f, v) for v in qcoeffs]),
            Polynomial(f, [FieldElement(f, v) for v in remainder]),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.field == other.field and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((id(self.field), tuple(self.coeffs)))

    def __repr__(self) -> str:
        if self.is_zero():
            return "Polynomial(0)"
        terms = []
        for i in range(self.degree, -1, -1):
            c = self.coeffs[i]
            if c == 0:
                continue
            if i == 0:
                terms.append(f"{c}")
            elif i == 1:
                terms.append(f"{c}*x" if c != 1 else "x")
            else:
                terms.append(f"{c}*x^{i}" if c != 1 else f"x^{i}")
        return "Polynomial(" + " + ".join(terms) + ")"


def lagrange_interpolate(
    field: Field, points: Sequence[tuple[FieldElement | int, FieldElement | int]]
) -> Polynomial:
    """The unique polynomial of degree < ``len(points)`` through ``points``.

    Raises ``ValueError`` on duplicate x-coordinates.
    """
    xs = [
        p[0].value if isinstance(p[0], FieldElement) else field.encode(p[0])
        for p in points
    ]
    ys = [
        p[1].value if isinstance(p[1], FieldElement) else field.encode(p[1])
        for p in points
    ]
    if len(set(xs)) != len(xs):
        raise ValueError("duplicate x-coordinates in interpolation points")
    result = Polynomial.zero(field)
    for i, (xi, yi) in enumerate(zip(xs, ys)):
        if yi == 0:
            continue
        # Basis polynomial l_i(x) = prod_{j != i} (x - x_j) / (x_i - x_j)
        basis = Polynomial(field, [field(1)])
        denom = 1
        for j, xj in enumerate(xs):
            if j == i:
                continue
            basis = basis * Polynomial(
                field, [FieldElement(field, field.neg(xj)), field(1)]
            )
            denom = field.mul(denom, field.sub(xi, xj))
        scale = field.mul(yi, field.inv(denom))
        result = result + basis * FieldElement(field, scale)
    return result


def interpolate_at(
    field: Field,
    points: Sequence[tuple[FieldElement | int, FieldElement | int]],
    x0: FieldElement | int = 0,
) -> FieldElement:
    """Evaluate the interpolating polynomial at ``x0`` without building it.

    This is the hot path of Shamir reconstruction (``x0 = 0``); it runs
    in O(m^2) field operations for ``m`` points.
    """
    f = field
    x0v = x0.value if isinstance(x0, FieldElement) else f.encode(x0)
    xs = [
        p[0].value if isinstance(p[0], FieldElement) else f.encode(p[0])
        for p in points
    ]
    ys = [
        p[1].value if isinstance(p[1], FieldElement) else f.encode(p[1])
        for p in points
    ]
    if len(set(xs)) != len(xs):
        raise ValueError("duplicate x-coordinates in interpolation points")
    acc = 0
    for i, (xi, yi) in enumerate(zip(xs, ys)):
        if yi == 0:
            continue
        num, den = 1, 1
        for j, xj in enumerate(xs):
            if j == i:
                continue
            num = f.mul(num, f.sub(x0v, xj))
            den = f.mul(den, f.sub(xi, xj))
        acc = f.add(acc, f.mul(yi, f.div(num, den)))
    return FieldElement(f, acc)


def lagrange_coefficients(
    field: Field, xs: Sequence[FieldElement | int], x0: FieldElement | int = 0
) -> list[FieldElement]:
    """Lagrange coefficients ``c_i`` with ``f(x0) = sum c_i * f(x_i)``.

    Precomputing these makes repeated reconstruction over the same point
    set (e.g. thousands of parallel VSS instances with the same parties)
    a dot product.
    """
    f = field
    x0v = x0.value if isinstance(x0, FieldElement) else f.encode(x0)
    xvs = [
        x.value if isinstance(x, FieldElement) else f.encode(x) for x in xs
    ]
    if len(set(xvs)) != len(xvs):
        raise ValueError("duplicate x-coordinates")
    out = []
    for i, xi in enumerate(xvs):
        num, den = 1, 1
        for j, xj in enumerate(xvs):
            if j == i:
                continue
            num = f.mul(num, f.sub(x0v, xj))
            den = f.mul(den, f.sub(xi, xj))
        out.append(FieldElement(f, f.div(num, den)))
    return out
