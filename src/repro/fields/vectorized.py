"""Vectorized GF(2^k) arithmetic over numpy arrays.

The experiments shuffle hundreds of thousands of field elements (every
coordinate of every dart vector is VSS-shared).  For table-backed
fields (``k <= GF2k.TABLE_MAX_K``) the log/exp tables turn
multiplication into integer gathers, which numpy executes tens of times
faster than a Python loop.  :class:`VectorGF2k` exposes the same
add/mul/Horner operations on whole arrays; the ideal VSS backend uses
it to deal large batches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from .gf2k import GF2k

if TYPE_CHECKING:
    from numpy.typing import ArrayLike


class VectorGF2k:
    """Array operations over a table-backed binary field.

    All arrays hold raw encodings as ``uint32``; operations are
    element-wise with broadcasting.
    """

    def __init__(self, field: GF2k) -> None:
        if field._exp is None:
            raise ValueError(
                f"{field.short_name} has no tables (k > {GF2k.TABLE_MAX_K}); "
                "vectorized arithmetic needs a table-backed field"
            )
        self.field = field
        self.order = field.order
        self._group = field.order - 1
        self._exp = np.asarray(field._exp, dtype=np.uint32)
        self._log = np.asarray(field._log, dtype=np.uint32)

    # -- conversions ------------------------------------------------------
    def array(self, values: ArrayLike) -> np.ndarray:
        """Coerce a sequence of raw encodings to the working dtype."""
        out = np.asarray(values, dtype=np.uint32)
        if out.size and int(out.max(initial=0)) >= self.order:
            raise ValueError("values out of field range")
        return out

    def random(
        self, shape: int | tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """Uniform random array (``rng`` is ``numpy.random.Generator``)."""
        return rng.integers(0, self.order, size=shape, dtype=np.uint32)

    # -- arithmetic -------------------------------------------------------
    @staticmethod
    def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise field addition (XOR)."""
        return np.bitwise_xor(a, b)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise field multiplication via log/exp gathers."""
        a = np.asarray(a, dtype=np.uint32)
        b = np.asarray(b, dtype=np.uint32)
        a, b = np.broadcast_arrays(a, b)
        out = np.zeros(a.shape, dtype=np.uint32)
        nz = (a != 0) & (b != 0)
        if nz.any():
            idx = self._log[a[nz]].astype(np.int64) + self._log[b[nz]]
            out[nz] = self._exp[idx]
        return out

    def scale(self, a: np.ndarray, scalar: int) -> np.ndarray:
        """Multiply an array by one scalar encoding."""
        if scalar == 0:
            return np.zeros_like(np.asarray(a, dtype=np.uint32))
        a = np.asarray(a, dtype=np.uint32)
        out = np.zeros_like(a)
        nz = a != 0
        if nz.any():
            idx = self._log[a[nz]].astype(np.int64) + int(self._log[scalar])
            out[nz] = self._exp[idx]
        return out

    def inv(self, a: np.ndarray) -> np.ndarray:
        """Element-wise inversion; raises on zeros."""
        a = np.asarray(a, dtype=np.uint32)
        if (a == 0).any():
            raise ZeroDivisionError("inverse of zero in vectorized field op")
        return self._exp[self._group - self._log[a].astype(np.int64)]

    def horner_eval(self, coeffs: np.ndarray, x: int) -> np.ndarray:
        """Evaluate many polynomials at one point.

        ``coeffs`` has shape ``(m, deg + 1)``, low-degree first; returns
        the length-``m`` array of evaluations at encoding ``x``.
        """
        coeffs = np.asarray(coeffs, dtype=np.uint32)
        if coeffs.ndim != 2:
            raise ValueError("coeffs must be 2-D (one row per polynomial)")
        acc = np.zeros(coeffs.shape[0], dtype=np.uint32)
        for j in range(coeffs.shape[1] - 1, -1, -1):
            acc = np.bitwise_xor(self.scale(acc, x), coeffs[:, j])
        return acc

    def eval_at_points(
        self, coeffs: np.ndarray, xs: Iterable[int | np.integer]
    ) -> np.ndarray:
        """Evaluate many polynomials at several points.

        Returns shape ``(m, len(xs))`` — exactly the share table a VSS
        dealer needs (one row per secret, one column per party point).
        """
        xs = [int(x) for x in xs]
        columns = [self.horner_eval(coeffs, x) for x in xs]
        return np.stack(columns, axis=1)

    def dot(self, coeffs: np.ndarray, values: np.ndarray) -> int:
        """Field dot product of two 1-D arrays (Lagrange recombination)."""
        prod = self.mul(coeffs, values)
        acc = 0
        for v in prod.tolist():
            acc ^= v
        return acc
