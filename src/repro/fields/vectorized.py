"""Vectorized finite-field arithmetic over numpy arrays.

The experiments shuffle hundreds of thousands of field elements (every
coordinate of every dart vector is VSS-shared), and at paper scale
(``ell ~ n^6 kappa``) the simulator deals and reconstructs that many
Shamir sharings per execution.  Scalar Python loops are the wall; the
backends here turn the two hot kernels of the sharing stack into a
handful of numpy operations:

- **batch polynomial evaluation** (dealing): evaluate ``m`` sharing
  polynomials at all party points at once, Vandermonde-style
  (:meth:`VectorBackend.batch_eval`), and
- **batch interpolation at zero** (reconstruction): recombine ``m``
  rows of shares against one set of cached Lagrange coefficients
  (:meth:`VectorBackend.interpolate_at_zero_batch`).

Two substrates are supported: table-backed ``GF(2^k)``
(:class:`VectorGF2k` — log/exp tables turn multiplication into integer
gathers) and word-sized prime fields (:class:`VectorPrimeField` —
``uint64`` modular arithmetic).  :func:`vector_backend` picks the right
one for a given field, or raises ``ValueError`` when the field has no
vectorized substrate (callers then fall back to the scalar reference
path, which stays authoritative: property tests assert exact
agreement).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from repro.obs.profiler import get_profiler

from .base import Field
from .gf2k import GF2k
from .primefield import PrimeField

if TYPE_CHECKING:
    from numpy.typing import ArrayLike


class VectorBackend:
    """Shared batch kernels over element-wise field primitives.

    Subclasses fix the array ``dtype`` and implement ``add``, ``mul``,
    ``scale``, ``neg`` and ``reduce_sum``; everything else (Horner
    evaluation, Vandermonde tables, batched interpolation at zero) is
    derived here and therefore identical across substrates.  All arrays
    hold raw field encodings.
    """

    field: Field
    order: int
    dtype: type

    # -- conversions ------------------------------------------------------
    def array(self, values: "ArrayLike") -> np.ndarray:
        """Coerce a sequence of raw encodings to the working dtype."""
        out = np.asarray(values, dtype=self.dtype)
        if out.size and int(out.max(initial=0)) >= self.order:
            raise ValueError("values out of field range")
        return out

    def random(
        self, shape: int | tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """Uniform random array (``rng`` is ``numpy.random.Generator``)."""
        return rng.integers(0, self.order, size=shape, dtype=self.dtype)

    # -- element-wise primitives (substrate-specific) ---------------------
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise field addition."""
        raise NotImplementedError

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise field multiplication (with broadcasting)."""
        raise NotImplementedError

    def neg(self, a: np.ndarray) -> np.ndarray:
        """Element-wise additive inverse."""
        raise NotImplementedError

    def inv(self, a: np.ndarray) -> np.ndarray:
        """Element-wise multiplicative inverse; raises on zeros."""
        raise NotImplementedError

    def reduce_sum(self, a: np.ndarray, axis: int) -> np.ndarray:
        """Field sum along one axis."""
        raise NotImplementedError

    def scale(self, a: np.ndarray, scalar: int) -> np.ndarray:
        """Multiply an array by one scalar encoding."""
        return self.mul(np.asarray(a, dtype=self.dtype), self.dtype(scalar))

    # -- polynomial evaluation -------------------------------------------
    def horner_eval(self, coeffs: np.ndarray, x: int) -> np.ndarray:
        """Evaluate many polynomials at one point.

        ``coeffs`` has shape ``(m, deg + 1)``, low-degree first; returns
        the length-``m`` array of evaluations at encoding ``x``.
        """
        coeffs = np.asarray(coeffs, dtype=self.dtype)
        if coeffs.ndim != 2:
            raise ValueError("coeffs must be 2-D (one row per polynomial)")
        prof = get_profiler()
        if prof.enabled:
            # numpy kernels never route through field.mul, so the field
            # ops they replace are accounted analytically (one
            # mul + add per coefficient per polynomial for Horner).
            prof.observe("vec", "horner_eval", coeffs.shape[0])
            prof.count("fields", "mul", coeffs.shape[0] * coeffs.shape[1])
            prof.count("fields", "add", coeffs.shape[0] * coeffs.shape[1])
        acc = np.zeros(coeffs.shape[0], dtype=self.dtype)
        for j in range(coeffs.shape[1] - 1, -1, -1):
            acc = self.add(self.scale(acc, x), coeffs[:, j])
        return acc

    def eval_at_points(
        self, coeffs: np.ndarray, xs: Iterable[int | np.integer]
    ) -> np.ndarray:
        """Evaluate many polynomials at several points (Horner per point).

        Returns shape ``(m, len(xs))`` — exactly the share table a VSS
        dealer needs (one row per secret, one column per party point).
        """
        xs_list = [int(x) for x in xs]
        columns = [self.horner_eval(coeffs, x) for x in xs_list]
        return np.stack(columns, axis=1)

    def vandermonde(self, xs: Sequence[int], degree: int) -> np.ndarray:
        """The Vandermonde table ``V[i, j] = xs[i]^j`` for ``j <= degree``.

        Computed once and cached by callers (the evaluation points of a
        sharing scheme are fixed), it turns dealing into
        :meth:`batch_eval`'s accumulate-of-products.
        """
        if degree < 0:
            raise ValueError(f"degree must be >= 0, got {degree}")
        xs_arr = self.array(xs)
        if xs_arr.ndim != 1:
            raise ValueError("xs must be 1-D")
        table = np.empty((xs_arr.shape[0], degree + 1), dtype=self.dtype)
        column = np.full(
            xs_arr.shape[0], self.field.encode(1), dtype=self.dtype
        )
        table[:, 0] = column
        for j in range(1, degree + 1):
            column = self.mul(column, xs_arr)
            table[:, j] = column
        return table

    def batch_eval(
        self,
        coeffs: np.ndarray,
        xs: Sequence[int] | None = None,
        *,
        vandermonde: np.ndarray | None = None,
    ) -> np.ndarray:
        """Evaluate ``m`` polynomials at the same points in one pass.

        ``coeffs`` has shape ``(m, deg + 1)`` (low-degree first); the
        points come either from ``xs`` or from a precomputed
        :meth:`vandermonde` table.  Returns shape ``(m, num_points)``:
        ``out[r, i] = sum_j coeffs[r, j] * xs[i]^j``.
        """
        coeffs = np.asarray(coeffs, dtype=self.dtype)
        if coeffs.ndim != 2:
            raise ValueError("coeffs must be 2-D (one row per polynomial)")
        if vandermonde is None:
            if xs is None:
                raise ValueError("need either xs or a vandermonde table")
            vandermonde = self.vandermonde(xs, coeffs.shape[1] - 1)
        if vandermonde.shape[1] != coeffs.shape[1]:
            raise ValueError(
                f"vandermonde width {vandermonde.shape[1]} does not match "
                f"{coeffs.shape[1]} coefficients"
            )
        prof = get_profiler()
        if prof.enabled:
            work = coeffs.shape[0] * coeffs.shape[1] * vandermonde.shape[0]
            prof.observe("vec", "batch_eval", coeffs.shape[0])
            prof.count("fields", "mul", work)
            prof.count("fields", "add", work)
        out = np.zeros((coeffs.shape[0], vandermonde.shape[0]), dtype=self.dtype)
        for j in range(coeffs.shape[1]):
            out = self.add(
                out, self.mul(coeffs[:, j, None], vandermonde[None, :, j])
            )
        return out

    # -- interpolation ----------------------------------------------------
    def lagrange_at_zero(self, xs: Sequence[int]) -> np.ndarray:
        """Lagrange coefficients at 0 for the (distinct) points ``xs``.

        The coefficient set is tiny (one entry per party) and computed
        once per point set, so it reuses the scalar reference
        implementation; the batch work happens in
        :meth:`interpolate_at_zero_batch`.
        """
        from .polynomial import lagrange_coefficients

        coeffs = lagrange_coefficients(self.field, [int(x) for x in xs], 0)
        return self.array([c.value for c in coeffs])

    def interpolate_at_zero_batch(
        self,
        xs: Sequence[int],
        ys: np.ndarray,
        *,
        lagrange: np.ndarray | None = None,
    ) -> np.ndarray:
        """Reconstruct ``m`` secrets from shares at common points.

        ``ys`` has shape ``(m, len(xs))``: row ``r`` holds the share
        values of secret ``r`` at the evaluation points ``xs`` (same
        order for every row).  Returns the length-``m`` array of
        interpolations at zero — the batched form of Shamir
        reconstruction.
        """
        ys = np.asarray(ys, dtype=self.dtype)
        if ys.ndim != 2:
            raise ValueError("ys must be 2-D (one row per secret)")
        if lagrange is None:
            lagrange = self.lagrange_at_zero(xs)
        if ys.shape[1] != lagrange.shape[0]:
            raise ValueError(
                f"rows of {ys.shape[1]} shares do not match "
                f"{lagrange.shape[0]} evaluation points"
            )
        prof = get_profiler()
        if prof.enabled:
            m, npoints = ys.shape
            prof.observe("vec", "interpolate_at_zero_batch", m)
            prof.count("fields", "mul", m * npoints)
            prof.count("fields", "add", m * max(0, npoints - 1))
        return self.reduce_sum(self.mul(ys, lagrange[None, :]), axis=1)

    def dot(self, coeffs: np.ndarray, values: np.ndarray) -> int:
        """Field dot product of two 1-D arrays (Lagrange recombination)."""
        prof = get_profiler()
        if prof.enabled:
            size = int(np.asarray(coeffs).shape[0])
            prof.count("vec", "dot")
            prof.count("fields", "mul", size)
            prof.count("fields", "add", max(0, size - 1))
        prod = self.mul(
            np.asarray(coeffs, dtype=self.dtype),
            np.asarray(values, dtype=self.dtype),
        )
        return int(self.reduce_sum(prod, axis=0))


class VectorGF2k(VectorBackend):
    """Array operations over a table-backed binary field.

    All arrays hold raw encodings as ``uint32``; multiplication is a
    pair of log-table gathers plus one exp-table gather.
    """

    dtype = np.uint32

    def __init__(self, field: GF2k) -> None:
        if field._exp is None:
            raise ValueError(
                f"{field.short_name} has no tables (k > {GF2k.TABLE_MAX_K}); "
                "vectorized arithmetic needs a table-backed field"
            )
        self.field = field
        self.order = field.order
        self._group = field.order - 1
        self._exp = np.asarray(field._exp, dtype=np.uint32)
        self._log = np.asarray(field._log, dtype=np.uint32)

    # -- arithmetic -------------------------------------------------------
    @staticmethod
    def add(a: np.ndarray, b: np.ndarray) -> np.ndarray:  # type: ignore[override]
        """Element-wise field addition (XOR)."""
        return np.bitwise_xor(a, b)

    @staticmethod
    def neg(a: np.ndarray) -> np.ndarray:  # type: ignore[override]
        """Characteristic 2: negation is the identity."""
        return np.asarray(a, dtype=np.uint32)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise field multiplication via log/exp gathers."""
        a = np.asarray(a, dtype=np.uint32)
        b = np.asarray(b, dtype=np.uint32)
        a, b = np.broadcast_arrays(a, b)
        out = np.zeros(a.shape, dtype=np.uint32)
        nz = (a != 0) & (b != 0)
        if nz.any():
            idx = self._log[a[nz]].astype(np.int64) + self._log[b[nz]]
            out[nz] = self._exp[idx]
        return out

    def scale(self, a: np.ndarray, scalar: int) -> np.ndarray:
        """Multiply an array by one scalar encoding."""
        if scalar == 0:
            return np.zeros_like(np.asarray(a, dtype=np.uint32))
        a = np.asarray(a, dtype=np.uint32)
        out = np.zeros_like(a)
        nz = a != 0
        if nz.any():
            idx = self._log[a[nz]].astype(np.int64) + int(self._log[scalar])
            out[nz] = self._exp[idx]
        return out

    def inv(self, a: np.ndarray) -> np.ndarray:
        """Element-wise inversion; raises on zeros."""
        a = np.asarray(a, dtype=np.uint32)
        if (a == 0).any():
            raise ZeroDivisionError("inverse of zero in vectorized field op")
        return self._exp[self._group - self._log[a].astype(np.int64)]

    def reduce_sum(self, a: np.ndarray, axis: int) -> np.ndarray:
        """Field sum along one axis (XOR reduction)."""
        return np.bitwise_xor.reduce(a, axis=axis)


class VectorPrimeField(VectorBackend):
    """Array operations over a word-sized prime field.

    Arrays hold raw encodings as ``uint64``; the prime must satisfy
    ``p < 2^31`` so products (and row sums of products) stay inside
    ``uint64`` without intermediate reduction.
    """

    #: Largest prime for which uint64 modular arithmetic cannot overflow.
    MAX_PRIME = 1 << 31

    dtype = np.uint64

    def __init__(self, field: PrimeField) -> None:
        if field.p >= self.MAX_PRIME:
            raise ValueError(
                f"{field.short_name} too large for uint64 vectorized "
                f"arithmetic (need p < 2^31)"
            )
        self.field = field
        self.order = field.order
        self._p = np.uint64(field.p)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        return (a + b) % self._p

    def neg(self, a: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.uint64)
        return (self._p - a) % self._p

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        return (a * b) % self._p

    def inv(self, a: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.uint64) % self._p
        if (a == 0).any():
            raise ZeroDivisionError("inverse of zero in vectorized field op")
        # Fermat: a^(p-2) by square-and-multiply on the whole array.
        out = np.ones_like(a)
        base = a
        e = self.field.p - 2
        while e:
            if e & 1:
                out = (out * base) % self._p
            base = (base * base) % self._p
            e >>= 1
        return out

    def reduce_sum(self, a: np.ndarray, axis: int) -> np.ndarray:
        a = np.asarray(a, dtype=np.uint64)
        return a.sum(axis=axis, dtype=np.uint64) % self._p


def vector_backend(field: Field) -> VectorBackend:
    """The vectorized backend for ``field``.

    Raises ``ValueError`` when the field has no vectorized substrate
    (tableless ``GF(2^k)``, huge primes, exotic fields); callers treat
    that as "use the scalar reference path".
    """
    if isinstance(field, GF2k):
        return VectorGF2k(field)
    if isinstance(field, PrimeField):
        return VectorPrimeField(field)
    raise ValueError(
        f"no vectorized backend for {getattr(field, 'short_name', field)!r}"
    )
