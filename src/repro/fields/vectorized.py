"""Vectorized finite-field arithmetic over numpy arrays.

The experiments shuffle hundreds of thousands of field elements (every
coordinate of every dart vector is VSS-shared), and at paper scale
(``ell ~ n^6 kappa``) the simulator deals and reconstructs that many
Shamir sharings per execution.  Scalar Python loops are the wall; the
backends here turn the hot kernels of the sharing stack into a handful
of numpy operations:

- **batch polynomial evaluation** (dealing): evaluate ``m`` sharing
  polynomials at all party points at once, Vandermonde-style
  (:meth:`VectorBackend.batch_eval`), and
- **batch interpolation at zero** (reconstruction): recombine ``m``
  rows of shares against one set of cached Lagrange coefficients
  (:meth:`VectorBackend.interpolate_at_zero_batch`).

Two substrates are supported: binary fields ``GF(2^k)``
(:class:`VectorGF2k`) and word-sized prime fields
(:class:`VectorPrimeField` — ``uint64`` modular arithmetic).
:class:`VectorGF2k` carries *two* multiplication kernels: log/exp table
gathers (table-backed fields, small arrays) and a **carryless
shift-and-XOR kernel** that needs no tables at all — it is the only
kernel for tableless fields (``k > GF2k.TABLE_MAX_K``, up to
``k <= CARRYLESS_MAX_K``) and takes over from the gathers above a size
threshold, where streaming passes beat cache-missing random gathers.
:func:`vector_backend` picks the right backend for a given field, or
raises ``ValueError`` when the field has no vectorized substrate
(callers then fall back to the scalar reference path, which stays
authoritative: property tests assert exact agreement).

The module also hosts :data:`TABLES`, the process-wide cache of
Vandermonde and Lagrange-at-zero tables shared by the VSS sessions and
sharing schemes, so the tables survive across protocol epochs (each
``run_anonchan`` builds a fresh session).  Entries are keyed by the
:class:`~repro.fields.base.Field` *object* — field equality hashes the
concrete type plus its defining parameters — never by a lossy repr:
``GF(2^4)`` exists for several reduction polynomials, and a ``GF2k``
modulus can numerically equal a ``PrimeField`` modulus, so any
repr/order-based key would leak tables across fields.

Finally, :func:`force_scalar` reads the ``REPRO_FORCE_SCALAR``
environment switch: when set, every ``"auto"``-mode batch policy in the
stack resolves to the scalar reference path (explicit ``"vectorized"``
or ``"scalar"`` requests are unaffected).  CI runs one matrix leg with
it enabled so the scalar fallbacks keep full coverage.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

import numpy as np

from repro.obs.profiler import get_profiler

from .base import Field
from .gf2k import GF2k
from .primefield import PrimeField

if TYPE_CHECKING:
    from numpy.typing import ArrayLike

#: Largest extension degree the carryless GF(2^k) kernel supports:
#: intermediate products peak at bit ``2k - 2``, which must fit uint64.
CARRYLESS_MAX_K = 32

#: Default array size above which table-backed GF(2^k) multiplication
#: switches from log/exp gathers to the carryless kernel.  Gathers into
#: the 2^k-entry tables are random-access and lose to the kernel's
#: ``O(3k)`` streaming passes only once the tables fall out of cache;
#: measured on the reference container the k=16 tables stay
#: cache-resident through 2^22-element batches, so the default engages
#: the kernel only beyond that (override with the
#: ``REPRO_TABLE_FREE_MIN`` environment variable to re-measure — see
#: docs/PERFORMANCE.md).  Tableless fields (k > ``GF2k.TABLE_MAX_K``)
#: always use the carryless kernel regardless of size.
DEFAULT_TABLE_FREE_MIN = 1 << 22


def default_table_free_min() -> int:
    """The table-free crossover threshold (env-overridable)."""
    raw = os.environ.get("REPRO_TABLE_FREE_MIN", "").strip()
    if raw:
        try:
            return int(raw)
        except ValueError:
            pass
    return DEFAULT_TABLE_FREE_MIN


def force_scalar() -> bool:
    """True when ``REPRO_FORCE_SCALAR`` requests the scalar path.

    Consulted dynamically (not cached) so tests can monkeypatch the
    environment; only ``"auto"`` backend modes honor it.
    """
    return os.environ.get("REPRO_FORCE_SCALAR", "").strip() not in ("", "0")


class VectorBackend:
    """Shared batch kernels over element-wise field primitives.

    Subclasses fix the array ``dtype`` and implement ``add``, ``mul``,
    ``scale``, ``neg``, ``reduce_sum`` and ``reduceat``; everything else
    (Horner evaluation, Vandermonde tables, batched interpolation at
    zero) is derived here and therefore identical across substrates.
    All arrays hold raw field encodings.
    """

    field: Field
    order: int
    dtype: Any

    # -- conversions ------------------------------------------------------
    def array(self, values: "ArrayLike") -> np.ndarray:
        """Coerce a sequence of raw encodings to the working dtype."""
        out = np.asarray(values, dtype=self.dtype)
        if out.size and int(out.max(initial=0)) >= self.order:
            raise ValueError("values out of field range")
        return out

    def random(
        self, shape: int | tuple[int, ...], rng: np.random.Generator
    ) -> np.ndarray:
        """Uniform random array (``rng`` is ``numpy.random.Generator``)."""
        return rng.integers(0, self.order, size=shape, dtype=self.dtype)

    # -- element-wise primitives (substrate-specific) ---------------------
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise field addition."""
        raise NotImplementedError

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise field multiplication (with broadcasting)."""
        raise NotImplementedError

    def neg(self, a: np.ndarray) -> np.ndarray:
        """Element-wise additive inverse."""
        raise NotImplementedError

    def inv(self, a: np.ndarray) -> np.ndarray:
        """Element-wise multiplicative inverse; raises on zeros."""
        raise NotImplementedError

    def reduce_sum(self, a: np.ndarray, axis: int) -> np.ndarray:
        """Field sum along one axis."""
        raise NotImplementedError

    def reduceat(self, a: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Per-segment field sums (``ufunc.reduceat`` semantics).

        ``indices`` are the segment start offsets into the 1-D array
        ``a``; empty segments follow numpy's reduceat convention (the
        caller must patch them — see the VSS layer's usage).
        """
        raise NotImplementedError

    def scale(self, a: np.ndarray, scalar: int) -> np.ndarray:
        """Multiply an array by one scalar encoding."""
        return self.mul(np.asarray(a, dtype=self.dtype), self.dtype(scalar))

    # -- polynomial evaluation -------------------------------------------
    def horner_eval(self, coeffs: np.ndarray, x: int) -> np.ndarray:
        """Evaluate many polynomials at one point.

        ``coeffs`` has shape ``(m, deg + 1)``, low-degree first; returns
        the length-``m`` array of evaluations at encoding ``x``.
        """
        coeffs = np.asarray(coeffs, dtype=self.dtype)
        if coeffs.ndim != 2:
            raise ValueError("coeffs must be 2-D (one row per polynomial)")
        prof = get_profiler()
        if prof.enabled:
            # numpy kernels never route through field.mul, so the field
            # ops they replace are accounted analytically (one
            # mul + add per coefficient per polynomial for Horner).
            prof.observe("vec", "horner_eval", coeffs.shape[0])
            prof.count("fields", "mul", coeffs.shape[0] * coeffs.shape[1])
            prof.count("fields", "add", coeffs.shape[0] * coeffs.shape[1])
        acc = np.zeros(coeffs.shape[0], dtype=self.dtype)
        for j in range(coeffs.shape[1] - 1, -1, -1):
            acc = self.add(self.scale(acc, x), coeffs[:, j])
        return acc

    def eval_at_points(
        self, coeffs: np.ndarray, xs: Iterable[int | np.integer]
    ) -> np.ndarray:
        """Evaluate many polynomials at several points (Horner per point).

        Returns shape ``(m, len(xs))`` — exactly the share table a VSS
        dealer needs (one row per secret, one column per party point).
        """
        xs_list = [int(x) for x in xs]
        columns = [self.horner_eval(coeffs, x) for x in xs_list]
        return np.stack(columns, axis=1)

    def vandermonde(self, xs: Sequence[int], degree: int) -> np.ndarray:
        """The Vandermonde table ``V[i, j] = xs[i]^j`` for ``j <= degree``.

        Computed once and cached by callers (the evaluation points of a
        sharing scheme are fixed — see :data:`TABLES` for the shared
        cross-session cache), it turns dealing into
        :meth:`batch_eval`'s accumulate-of-products.
        """
        if degree < 0:
            raise ValueError(f"degree must be >= 0, got {degree}")
        xs_arr = self.array(xs)
        if xs_arr.ndim != 1:
            raise ValueError("xs must be 1-D")
        table = np.empty((xs_arr.shape[0], degree + 1), dtype=self.dtype)
        column = np.full(
            xs_arr.shape[0], self.field.encode(1), dtype=self.dtype
        )
        table[:, 0] = column
        for j in range(1, degree + 1):
            column = self.mul(column, xs_arr)
            table[:, j] = column
        return table

    def batch_eval(
        self,
        coeffs: np.ndarray,
        xs: Sequence[int] | None = None,
        *,
        vandermonde: np.ndarray | None = None,
    ) -> np.ndarray:
        """Evaluate ``m`` polynomials at the same points in one pass.

        ``coeffs`` has shape ``(m, deg + 1)`` (low-degree first); the
        points come either from ``xs`` or from a precomputed
        :meth:`vandermonde` table.  Returns shape ``(m, num_points)``:
        ``out[r, i] = sum_j coeffs[r, j] * xs[i]^j``.
        """
        coeffs = np.asarray(coeffs, dtype=self.dtype)
        if coeffs.ndim != 2:
            raise ValueError("coeffs must be 2-D (one row per polynomial)")
        if vandermonde is None:
            if xs is None:
                raise ValueError("need either xs or a vandermonde table")
            vandermonde = self.vandermonde(xs, coeffs.shape[1] - 1)
        if vandermonde.shape[1] != coeffs.shape[1]:
            raise ValueError(
                f"vandermonde width {vandermonde.shape[1]} does not match "
                f"{coeffs.shape[1]} coefficients"
            )
        prof = get_profiler()
        if prof.enabled:
            work = coeffs.shape[0] * coeffs.shape[1] * vandermonde.shape[0]
            prof.observe("vec", "batch_eval", coeffs.shape[0])
            prof.count("fields", "mul", work)
            prof.count("fields", "add", work)
        out = np.zeros((coeffs.shape[0], vandermonde.shape[0]), dtype=self.dtype)
        for j in range(coeffs.shape[1]):
            out = self.add(
                out, self.mul(coeffs[:, j, None], vandermonde[None, :, j])
            )
        return out

    # -- interpolation ----------------------------------------------------
    def lagrange_at_zero(self, xs: Sequence[int]) -> np.ndarray:
        """Lagrange coefficients at 0 for the (distinct) points ``xs``.

        The coefficient set is tiny (one entry per party) and computed
        once per point set, so it reuses the scalar reference
        implementation; the batch work happens in
        :meth:`interpolate_at_zero_batch`.
        """
        return self.array(TABLES.lagrange_at_zero(self.field, xs))

    def interpolate_at_zero_batch(
        self,
        xs: Sequence[int],
        ys: np.ndarray,
        *,
        lagrange: np.ndarray | None = None,
    ) -> np.ndarray:
        """Reconstruct ``m`` secrets from shares at common points.

        ``ys`` has shape ``(m, len(xs))``: row ``r`` holds the share
        values of secret ``r`` at the evaluation points ``xs`` (same
        order for every row).  Returns the length-``m`` array of
        interpolations at zero — the batched form of Shamir
        reconstruction.
        """
        ys = np.asarray(ys, dtype=self.dtype)
        if ys.ndim != 2:
            raise ValueError("ys must be 2-D (one row per secret)")
        if lagrange is None:
            lagrange = self.lagrange_at_zero(xs)
        if ys.shape[1] != lagrange.shape[0]:
            raise ValueError(
                f"rows of {ys.shape[1]} shares do not match "
                f"{lagrange.shape[0]} evaluation points"
            )
        prof = get_profiler()
        if prof.enabled:
            m, npoints = ys.shape
            prof.observe("vec", "interpolate_at_zero_batch", m)
            prof.count("fields", "mul", m * npoints)
            prof.count("fields", "add", m * max(0, npoints - 1))
        return self.reduce_sum(self.mul(ys, lagrange[None, :]), axis=1)

    def dot(self, coeffs: np.ndarray, values: np.ndarray) -> int:
        """Field dot product of two 1-D arrays (Lagrange recombination)."""
        prof = get_profiler()
        if prof.enabled:
            size = int(np.asarray(coeffs).shape[0])
            prof.count("vec", "dot")
            prof.count("fields", "mul", size)
            prof.count("fields", "add", max(0, size - 1))
        prod = self.mul(
            np.asarray(coeffs, dtype=self.dtype),
            np.asarray(values, dtype=self.dtype),
        )
        return int(self.reduce_sum(prod, axis=0))


class VectorGF2k(VectorBackend):
    """Array operations over a binary extension field.

    Two multiplication kernels coexist:

    - **table gathers**: a pair of log-table gathers plus one exp-table
      gather, available only when the field carries log/exp tables
      (``k <= GF2k.TABLE_MAX_K``), used for arrays smaller than
      ``table_free_min``;
    - **carryless shift-and-XOR**: bit-sliced over the ``k`` multiplier
      bits, then a modular fold of bits ``2k-2 .. k`` by the reduction
      polynomial — table-free, ``O(3k)`` streaming passes regardless of
      array size, exact for every ``k <= CARRYLESS_MAX_K``.

    Arrays hold raw encodings as ``uint32`` (``k <= 16``) or ``uint64``
    (``k <= 32``); carryless intermediates peak at bit ``2k - 2``, so
    both dtypes are overflow-safe.  Both kernels implement the same
    polynomial multiplication modulo the same irreducible, so crossing
    the threshold never changes a result (property-tested).
    """

    def __init__(self, field: GF2k, table_free_min: int | None = None) -> None:
        if field.k > CARRYLESS_MAX_K:
            raise ValueError(
                f"{field.short_name} exceeds the carryless kernel width "
                f"(k > {CARRYLESS_MAX_K}); no vectorized substrate"
            )
        self.field = field
        self.k = field.k
        self.modulus = field.modulus
        self.order = field.order
        self.dtype = np.uint32 if field.k <= 16 else np.uint64
        self._group = field.order - 1
        if field._exp is not None:
            self._exp: np.ndarray | None = np.asarray(
                field._exp, dtype=np.uint32
            )
            self._log: np.ndarray | None = np.asarray(
                field._log, dtype=np.uint32
            )
        else:
            self._exp = None
            self._log = None
        self.table_free_min = (
            default_table_free_min()
            if table_free_min is None
            else int(table_free_min)
        )

    # -- carryless kernel -------------------------------------------------
    def _fold(self, acc: np.ndarray) -> np.ndarray:
        """Reduce carryless products modulo the irreducible polynomial.

        Folds bits ``2k-2 .. k`` (highest first): whenever bit ``b`` is
        set, XOR in ``modulus << (b - k)``, whose top bit is exactly
        ``b`` (the modulus has degree ``k``).
        """
        dt = self.dtype
        k = self.k
        modulus = int(self.modulus)
        for bit in range(2 * k - 2, k - 1, -1):
            reducer = dt(modulus << (bit - k))
            acc = acc ^ reducer * ((acc >> dt(bit)) & dt(1))
        return acc

    def _clmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Carryless multiply of equal-shape arrays, reduced mod field."""
        prof = get_profiler()
        if prof.enabled:
            prof.observe("vec", "clmul", int(a.size))
        dt = self.dtype
        acc = np.zeros(a.shape, dtype=dt)
        for bit in range(self.k):
            acc ^= (a << dt(bit)) * ((b >> dt(bit)) & dt(1))
        return self._fold(acc)

    def _clmul_scalar(self, a: np.ndarray, scalar: int) -> np.ndarray:
        """Carryless multiply by one scalar (iterates its set bits only)."""
        prof = get_profiler()
        if prof.enabled:
            prof.observe("vec", "clmul", int(a.size))
        dt = self.dtype
        acc = np.zeros_like(a)
        s = int(scalar)
        bit = 0
        while s:
            if s & 1:
                acc = acc ^ (a << dt(bit))
            s >>= 1
            bit += 1
        return self._fold(acc)

    # -- arithmetic -------------------------------------------------------
    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise field addition (XOR)."""
        return np.bitwise_xor(a, b)

    def neg(self, a: np.ndarray) -> np.ndarray:
        """Characteristic 2: negation is the identity."""
        return np.asarray(a, dtype=self.dtype)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Element-wise multiplication: table gathers or carryless."""
        a = np.asarray(a, dtype=self.dtype)
        b = np.asarray(b, dtype=self.dtype)
        a, b = np.broadcast_arrays(a, b)
        if self._exp is not None and a.size < self.table_free_min:
            assert self._log is not None
            out = np.zeros(a.shape, dtype=self.dtype)
            nz = (a != 0) & (b != 0)
            if nz.any():
                idx = self._log[a[nz]].astype(np.int64) + self._log[b[nz]]
                out[nz] = self._exp[idx]
            return out
        return self._clmul(a, b)

    def scale(self, a: np.ndarray, scalar: int) -> np.ndarray:
        """Multiply an array by one scalar encoding."""
        if scalar == 0:
            return np.zeros_like(np.asarray(a, dtype=self.dtype))
        a = np.asarray(a, dtype=self.dtype)
        if self._exp is not None and a.size < self.table_free_min:
            assert self._log is not None
            out = np.zeros_like(a)
            nz = a != 0
            if nz.any():
                idx = self._log[a[nz]].astype(np.int64) + int(
                    self._log[scalar]
                )
                out[nz] = self._exp[idx]
            return out
        return self._clmul_scalar(a, scalar)

    def inv(self, a: np.ndarray) -> np.ndarray:
        """Element-wise inversion; raises on zeros."""
        a = np.asarray(a, dtype=self.dtype)
        if (a == 0).any():
            raise ZeroDivisionError("inverse of zero in vectorized field op")
        if self._exp is not None:
            assert self._log is not None
            return self._exp[self._group - self._log[a].astype(np.int64)]
        # Fermat: a^(2^k - 2) by carryless square-and-multiply.
        out = np.full_like(a, 1)
        base = a
        e = self.order - 2
        while e:
            if e & 1:
                out = self._clmul(out, base)
            base = self._clmul(base, base)
            e >>= 1
        return out

    def reduce_sum(self, a: np.ndarray, axis: int) -> np.ndarray:
        """Field sum along one axis (XOR reduction)."""
        return np.bitwise_xor.reduce(a, axis=axis)

    def reduceat(self, a: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Per-segment XOR sums."""
        return np.bitwise_xor.reduceat(a, indices)


class VectorPrimeField(VectorBackend):
    """Array operations over a word-sized prime field.

    Arrays hold raw encodings as ``uint64``; the prime must satisfy
    ``p < 2^31`` so products (and row sums of products) stay inside
    ``uint64`` without intermediate reduction.
    """

    #: Largest prime for which uint64 modular arithmetic cannot overflow.
    MAX_PRIME = 1 << 31

    dtype = np.uint64

    def __init__(self, field: PrimeField) -> None:
        if field.p >= self.MAX_PRIME:
            raise ValueError(
                f"{field.short_name} too large for uint64 vectorized "
                f"arithmetic (need p < 2^31)"
            )
        self.field = field
        self.order = field.order
        self._p = np.uint64(field.p)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        return (a + b) % self._p

    def neg(self, a: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.uint64)
        return (self._p - a) % self._p

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.uint64)
        b = np.asarray(b, dtype=np.uint64)
        return (a * b) % self._p

    def inv(self, a: np.ndarray) -> np.ndarray:
        a = np.asarray(a, dtype=np.uint64) % self._p
        if (a == 0).any():
            raise ZeroDivisionError("inverse of zero in vectorized field op")
        # Fermat: a^(p-2) by square-and-multiply on the whole array.
        out = np.ones_like(a)
        base = a
        e = self.field.p - 2
        while e:
            if e & 1:
                out = (out * base) % self._p
            base = (base * base) % self._p
            e >>= 1
        return out

    def reduce_sum(self, a: np.ndarray, axis: int) -> np.ndarray:
        a = np.asarray(a, dtype=np.uint64)
        return a.sum(axis=axis, dtype=np.uint64) % self._p

    def reduceat(self, a: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """Per-segment modular sums (segments must fit uint64 headroom)."""
        a = np.asarray(a, dtype=np.uint64)
        return np.add.reduceat(a, indices) % self._p


def vector_backend(
    field: Field, *, table_free_min: int | None = None
) -> VectorBackend:
    """The vectorized backend for ``field``.

    Raises ``ValueError`` when the field has no vectorized substrate
    (``GF(2^k)`` beyond the carryless kernel width, huge primes, exotic
    fields); callers treat that as "use the scalar reference path".
    ``table_free_min`` overrides the GF(2^k) gather-to-carryless
    crossover threshold (testing/measurement hook).
    """
    if isinstance(field, GF2k):
        return VectorGF2k(field, table_free_min=table_free_min)
    if isinstance(field, PrimeField):
        return VectorPrimeField(field)
    raise ValueError(
        f"no vectorized backend for {getattr(field, 'short_name', field)!r}"
    )


class TableCache:
    """Cross-epoch cache of Vandermonde / Lagrange-at-zero tables.

    Every protocol execution builds a fresh VSS session, but the tables
    only depend on ``(field, evaluation points, degree)`` — caching them
    process-wide means epoch 2 deals at full speed immediately.

    Keys embed the :class:`Field` *object* (its ``__hash__``/``__eq__``
    cover the concrete type and every defining parameter, e.g.
    ``(k, modulus)`` for ``GF2k``), never a name/order repr: two
    ``GF(2^4)`` instances over different irreducibles, or a
    ``PrimeField(19)`` next to a ``GF2k`` whose modulus encodes as 19,
    must not share entries (regression-tested).

    Entries are immutable once inserted (numpy tables are marked
    read-only) and lookups are lock-guarded, so concurrent sessions on
    the asyncio runtime can share the cache; eviction is LRU with a
    generous bound — point sets are per-scheme, not per-execution.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self._entries: "OrderedDict[tuple, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def _get(self, key: tuple, build: Callable[[], Any]) -> Any:
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self.hits += 1
                self._entries.move_to_end(key)
                return value
        value = build()
        with self._lock:
            self.misses += 1
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def vandermonde(
        self, backend: VectorBackend, points: Sequence[int], degree: int
    ) -> np.ndarray:
        """Cached read-only Vandermonde table for one scheme geometry."""
        key = (
            backend.field,
            "vandermonde",
            tuple(int(p) for p in points),
            int(degree),
        )

        def build() -> np.ndarray:
            table = backend.vandermonde(list(points), degree)
            table.setflags(write=False)
            return table

        return self._get(key, build)

    def lagrange_at_zero(
        self, field: Field, xs: Sequence[int]
    ) -> list[int]:
        """Cached Lagrange-at-zero coefficients (raw encodings)."""
        key = (field, "lagrange0", tuple(int(x) for x in xs))

        def build() -> list[int]:
            from .polynomial import lagrange_coefficients

            return [
                c.value
                for c in lagrange_coefficients(
                    field, [int(x) for x in xs], 0
                )
            ]

        return self._get(key, build)


#: Process-wide table cache (see [concurrency] allowed_globals in
#: taint-spec.toml: entries are immutable after insertion, lookups are
#: lock-guarded, and a lost race only recomputes an equal value).
TABLES = TableCache()
