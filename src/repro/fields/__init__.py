"""Finite-field arithmetic for the anonymous-channel protocol stack.

The paper computes over ``F = GF(2^kappa)`` (:class:`GF2k`); prime
fields (:class:`PrimeField`) are provided as an alternative substrate.
"""

from .base import VECTOR_BACKEND_MODES, Field, FieldElement
from .gf2k import GF2k, gf2k
from .irreducible import (
    gf2_degree,
    gf2_divmod,
    gf2_gcd,
    gf2_mod,
    gf2_mul,
    gf2_mulmod,
    gf2_powmod,
    irreducible_polynomial,
    is_irreducible,
    poly_to_string,
)
from .polynomial import (
    Polynomial,
    interpolate_at,
    lagrange_coefficients,
    lagrange_interpolate,
)
from .primefield import PrimeField, is_prime, next_prime

__all__ = [
    "Field",
    "FieldElement",
    "VECTOR_BACKEND_MODES",
    "GF2k",
    "gf2k",
    "PrimeField",
    "is_prime",
    "next_prime",
    "Polynomial",
    "lagrange_interpolate",
    "interpolate_at",
    "lagrange_coefficients",
    "irreducible_polynomial",
    "is_irreducible",
    "poly_to_string",
    "gf2_mul",
    "gf2_mod",
    "gf2_mulmod",
    "gf2_powmod",
    "gf2_divmod",
    "gf2_gcd",
    "gf2_degree",
]
