"""repro: reference implementation of "Fast and Unconditionally Secure
Anonymous Channel" (Garay, Givens, Ostrovsky, Raykov; PODC 2014).

The package is layered bottom-up:

- :mod:`repro.fields` -- finite fields GF(2^k) / GF(p), polynomials.
- :mod:`repro.sharing` -- Shamir / bivariate sharing, Reed-Solomon
  decoding, the Rabin-Ben-Or information checking protocol.
- :mod:`repro.network` -- synchronous network simulator with private
  channels, broadcast, and a rushing active adversary.
- :mod:`repro.vss` -- linear verifiable secret sharing behind one
  interface (perfect BGW, statistical RB89, ideal-functionality model).
- :mod:`repro.core` -- the paper's contribution: protocol ``AnonChan``.
- :mod:`repro.baselines` -- Chaum DC-nets, PW96 traps, Zhang'11 shuffle
  model, vABH03 k-anonymous darts.
- :mod:`repro.pseudosig` -- PW96 pseudosignatures over the channel.
- :mod:`repro.byzantine` -- authenticated agreement (Dolev-Strong) that
  simulates broadcast from pseudosignatures.
- :mod:`repro.analysis` -- tail bounds, round-complexity calculators,
  and error budgets reproducing the paper's quantitative claims.
"""

__version__ = "1.0.0"
