"""Executable trap-based disruption detection (Waidner / PW96 mechanics).

The `$\\Omega(n^2)$`-round baseline ([Wai89, PW96]) survives jamming by
a "somewhat complicated procedure of setting traps during a slot
reservation phase" (paper §1.2): some slots secretly carry *trap*
values known to their owner; a jammer cannot distinguish traps from
message slots, so disruption lands on a trap with constant
probability, after which the pads for that slot are **publicly opened**
and cross-checked, localizing a corrupt party or a suspicious pair.

This module implements that mechanism concretely on the DC-net
substrate of :mod:`repro.baselines.dcnet`:

1. one DC-net round over ``m`` slots, a random subset of which are
   traps (each owner expects its trap value back);
2. a sprung trap triggers an *investigation*: every party publishes,
   for the trap slot, each pairwise pad it holds; mismatched claims
   for a pad expose the pair, and a party whose claimed pads are
   consistent with every partner but whose implied publication differs
   from what it actually broadcast is exposed alone.

The investigation publicly burns the trap slot and one pair per failed
round — run repeatedly this *is* the `$\\Omega(n^2)$` schedule modeled in
:mod:`repro.baselines.pw96`; here the detection itself is executable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.fields import Field


@dataclass
class TrapRoundResult:
    """Outcome of one trap-protected DC-net round."""

    slots: list[int]  # combined slot values (raw encodings)
    sprung_traps: list[int]  # trap slots whose value came back wrong
    delivered: list[int]  # values in non-trap slots
    #: Localization output per sprung trap: "pair" -> {i, j} with at
    #: least one corrupt member, or "single" -> {i}.
    localized: list[tuple[str, frozenset[int]]] = field(default_factory=list)


class TrapDCNet:
    """A DC-net round with traps and pad-opening investigation.

    The simulation keeps each party's pads and publication explicitly,
    so the investigation can be executed (not assumed): corrupt
    behaviour is injected as a *publication delta* per party.
    """

    def __init__(self, field_: Field, n: int, num_slots: int, rng: random.Random):
        self.field = field_
        self.n = n
        self.num_slots = num_slots
        self.rng = rng
        # Pairwise pads: pad[(i, j)][slot], chosen by min(i,j), known to both.
        self.pads: dict[tuple[int, int], list[int]] = {}
        for i in range(n):
            for j in range(i + 1, n):
                self.pads[(i, j)] = [
                    field_.random(rng).value for _ in range(num_slots)
                ]

    def _pad_sum(self, pid: int, slot: int) -> int:
        f = self.field
        acc = 0
        for (i, j), vec in self.pads.items():
            if pid in (i, j):
                acc = f.add(acc, vec[slot])
        return acc

    def run_round(
        self,
        messages: dict[int, tuple[int, int]],
        traps: dict[int, tuple[int, int]],
        disruption: dict[int, dict[int, int]] | None = None,
        lie_pairs: set[frozenset[int]] | None = None,
    ) -> TrapRoundResult:
        """One round plus investigations of any sprung traps.

        ``messages``/``traps`` map party -> (slot, value); trap slots
        and values are secret to their owners.  ``disruption`` maps a
        corrupt party to {slot: garbage} XORed into its publication.
        ``lie_pairs`` selects which pad claims corrupt parties falsify
        during an investigation (default: every pad shared with an
        honest partner — maximal deniability for a single round).
        """
        f = self.field
        disruption = disruption or {}
        # Each party's honest publication: its slot values + its pads.
        publications: dict[int, list[int]] = {}
        for pid in range(self.n):
            vec = [0] * self.num_slots
            for source in (messages, traps):
                if pid in source:
                    slot, value = source[pid]
                    vec[slot] = f.add(vec[slot], value)
            for slot in range(self.num_slots):
                vec[slot] = f.add(vec[slot], self._pad_sum(pid, slot))
            for slot, garbage in disruption.get(pid, {}).items():
                vec[slot] = f.add(vec[slot], garbage)
            publications[pid] = vec

        combined = [0] * self.num_slots
        for vec in publications.values():
            combined = [f.add(a, b) for a, b in zip(combined, vec)]

        trap_slots = {slot: (owner, value) for owner, (slot, value) in traps.items()}
        sprung = [
            slot
            for slot, (_owner, value) in trap_slots.items()
            if combined[slot] != value
        ]
        delivered = [
            v
            for slot, v in enumerate(combined)
            if v and slot not in trap_slots
        ]
        result = TrapRoundResult(
            slots=combined, sprung_traps=sorted(sprung), delivered=delivered
        )
        for slot in result.sprung_traps:
            result.localized.append(
                self._investigate(slot, publications, disruption, traps, lie_pairs)
            )
        return result

    def _investigate(
        self,
        slot: int,
        publications: dict[int, list[int]],
        disruption: dict[int, dict[int, int]],
        traps: dict[int, tuple[int, int]],
        lie_pairs: set[frozenset[int]] | None = None,
    ) -> tuple[str, frozenset[int]]:
        """Open all pads for ``slot`` and localize the disrupter.

        Every party publicly claims the pads it holds for the slot; a
        corrupt party may lie about a pad (implicating a pair) or tell
        the truth (exposing itself, since its publication then fails to
        re-derive).  The modeled corrupt claim strategy: lie about the
        pad shared with the highest-id honest partner, the
        pair-burning strategy from the paper's footnote 1.
        """
        f = self.field
        corrupt = set(disruption)
        # Claims: claimed[(i, j)] = (claim_by_i, claim_by_j).
        suspicious_pairs: list[frozenset[int]] = []
        for (i, j), vec in self.pads.items():
            pair = frozenset({i, j})
            lying_allowed = lie_pairs is None or pair in lie_pairs
            truth = vec[slot]
            claim_i = truth
            claim_j = truth
            if i in corrupt and j not in corrupt and lying_allowed:
                claim_i = f.add(truth, 1)  # lie
            if j in corrupt and i not in corrupt and lying_allowed:
                claim_j = f.add(truth, 1)
            if claim_i != claim_j:
                suspicious_pairs.append(pair)
        if suspicious_pairs:
            # At least one member of the mismatching pair is corrupt.
            return ("pair", suspicious_pairs[0])
        # All claims consistent: re-derive each party's expected
        # publication for the slot and compare (messages/traps at the
        # slot are opened too — the slot is burned anyway).
        for pid in range(self.n):
            expected = self._pad_sum(pid, slot)
            for source in (traps,):
                if pid in source and source[pid][0] == slot:
                    expected = f.add(expected, source[pid][1])
            if publications[pid][slot] != expected and pid in corrupt:
                return ("single", frozenset({pid}))
        # Fallback (cannot happen with the modeled strategies).
        return ("single", frozenset())


def trap_catch_probability(num_slots: int, num_traps: int, hits: int) -> float:
    """Probability a blind jammer hitting ``hits`` random slots springs
    at least one of ``num_traps`` hidden traps."""
    p_miss = 1.0
    free = num_slots
    for k in range(hits):
        p_miss *= max(free - num_traps - k, 0) / max(free - k, 1)
    return 1.0 - p_miss
