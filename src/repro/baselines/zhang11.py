"""Zhang'11 obfuscated-shuffle baseline (round model + semantics).

[Zha11] builds an anonymous channel from a generic constant-round
oblivious sort: parties VSS-share tagged inputs, obliviously sort by
random tags (using comparison / equality / multiplication
sub-protocols on shared values), and open the result in sorted order —
a random shuffle that hides origins.

The paper compares against it purely on *round complexity*:
``r_VSS-share + r_comp + r_eq + r_mult``, where comparison and equality
need bit decomposition (114 rounds with [DFK+06]).  We reproduce:

- the *semantics* via an honest-majority hybrid execution (shared
  values held by an in-process functionality, sorted by fresh random
  tags — exactly the shuffle the MPC computes), and
- the *cost* via sub-protocol invocation counts priced with the cited
  round figures.

The full [DFK+06] comparison circuit is out of scope (it is the very
dependency whose cost the paper's construction avoids).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.fields import Field, FieldElement

from repro.analysis.rounds import (
    DFK06_BIT_DECOMPOSITION_ROUNDS,
    MULTIPLICATION_ROUNDS,
)
from repro.vss.base import VSSCost
from repro.vss.costs import RB89_COST


@dataclass
class ShuffleTrace:
    """Result and cost accounting of one obfuscated shuffle."""

    shuffled: list[FieldElement]
    rounds: int
    comparison_invocations: int
    equality_invocations: int
    multiplication_invocations: int

    @property
    def sub_protocol_invocations(self) -> int:
        return (
            self.comparison_invocations
            + self.equality_invocations
            + self.multiplication_invocations
        )


def sorting_network_size(n: int) -> int:
    """Compare-exchange count of Batcher's odd-even mergesort on n wires."""
    return len(batcher_network(n))


def batcher_network(n: int) -> list[tuple[int, int]]:
    """Batcher odd-even mergesort comparator network for ``n`` wires.

    Constant depth per merge level; the MPC evaluates each comparator
    with one comparison + one (conditional-swap) multiplication, all
    comparators of a layer in parallel.
    """
    comparators: list[tuple[int, int]] = []

    def merge(lo: int, length: int, step: int) -> None:
        doubled = step * 2
        if doubled < length:
            merge(lo, length, doubled)
            merge(lo + step, length, doubled)
            for i in range(lo + step, lo + length - step, doubled):
                comparators.append((i, i + step))
        else:
            comparators.append((lo, lo + step))

    def sort(lo: int, length: int) -> None:
        if length > 1:
            mid = length // 2
            sort(lo, mid)
            sort(lo + mid, length - mid)
            merge(lo, length, 1)

    # Batcher's construction wants a power of two; pad virtually.
    size = 1
    while size < n:
        size *= 2
    sort(0, size)
    return [(a, b) for a, b in comparators if a < n and b < n]


def zhang11_shuffle(
    field: Field,
    inputs: list[FieldElement],
    rng: random.Random,
    vss: VSSCost = RB89_COST,
) -> ShuffleTrace:
    """Hybrid-model execution of the obfuscated shuffle.

    Attaches fresh uniform tags to the (conceptually shared) inputs,
    sorts by tag — the permutation is uniform because the tags are —
    and prices the run at the paper's ``r_VSS + r_comp + r_eq + r_mult``
    with [DFK+06]/Beaver figures.
    """
    n = len(inputs)
    tagged = [(field.random(rng).value, v) for v in inputs]
    tagged.sort(key=lambda pair: pair[0])
    comparators = batcher_network(n) if n > 1 else []
    rounds = (
        vss.share_rounds
        + DFK06_BIT_DECOMPOSITION_ROUNDS  # r_comp
        + DFK06_BIT_DECOMPOSITION_ROUNDS  # r_eq
        + MULTIPLICATION_ROUNDS  # r_mult
    )
    return ShuffleTrace(
        shuffled=[v for _tag, v in tagged],
        rounds=rounds,
        comparison_invocations=len(comparators),
        equality_invocations=n,  # tag-collision detection, one per element
        multiplication_invocations=len(comparators),
    )


def zhang11_round_count(vss: VSSCost = RB89_COST) -> int:
    """The §1.2 total: r_VSS-share + r_comp + r_eq + r_mult."""
    return (
        vss.share_rounds
        + 2 * DFK06_BIT_DECOMPOSITION_ROUNDS
        + MULTIPLICATION_ROUNDS
    )
