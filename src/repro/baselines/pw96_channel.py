"""A runnable PW96-style channel: trap rounds + fault localization loop.

Combines the executable trap mechanics (:mod:`repro.baselines.traps`)
with the pair-burning elimination game (:mod:`repro.baselines.pw96`)
into an end-to-end anonymous channel in the PW96 style: repeat trap-
protected DC-net rounds; every sprung trap publicly burns the localized
pair (or eliminates both players, with the [HMP00] option); the run
ends when a round delivers all pending messages undisturbed.

This is the baseline the paper's round comparison is about: measured
round counts under a persistent jammer exhibit the `$\\Omega(n^2)$`
worst case concretely (experiment E1's PW96 row, now executable).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field

from repro.fields import Field

from .traps import TrapDCNet


@dataclass
class PW96ChannelTrace:
    """Outcome of one full repeat-until-delivered execution."""

    rounds: int
    investigations: int
    delivered: Counter
    burned_pairs: list[frozenset[int]] = field(default_factory=list)
    eliminated_players: list[int] = field(default_factory=list)
    gave_up: bool = False


class PersistentJammer:
    """Adversary strategy: jam every round while it can do so deniably.

    A corrupt party jams only while it still has an unburned pair with
    some active partner (otherwise the next localization identifies it
    outright) — the pair-burning schedule from the paper's footnote 1.
    """

    def pick_jammer(
        self,
        corrupt_active: set[int],
        all_active: set[int],
        burned: set[frozenset[int]],
    ) -> tuple[int, frozenset[int]] | None:
        """Return (jammer, pair to lie about) or None to stop jamming."""
        for c in sorted(corrupt_active):
            for other in sorted(all_active):
                pair = frozenset({c, other})
                if other != c and pair not in burned:
                    return c, pair
        return None


def run_pw96_channel(
    field_: Field,
    n: int,
    corrupt: set[int],
    messages: dict[int, int],
    rng: random.Random,
    num_slots: int | None = None,
    traps_per_round: int | None = None,
    player_elimination: bool = False,
    max_rounds: int = 10_000,
) -> PW96ChannelTrace:
    """Run the channel to delivery under a persistent jammer.

    ``messages`` maps senders to non-zero values.  Each round uses
    fresh pads, random slot choices, and ``traps_per_round`` hidden
    traps; a sprung trap's investigation burns the localized pair
    (or removes both players entirely with ``player_elimination``).
    """
    if num_slots is None:
        num_slots = max(4 * n, 8)
    if traps_per_round is None:
        traps_per_round = max(n // 2, 1)
    jammer_strategy = PersistentJammer()
    pending = dict(messages)
    delivered: Counter = Counter()
    burned: set[frozenset[int]] = set()
    trace = PW96ChannelTrace(rounds=0, investigations=0, delivered=delivered)
    active = set(range(n))
    corrupt_active = set(corrupt) & active

    while pending and trace.rounds < max_rounds:
        trace.rounds += 1
        net = TrapDCNet(field_, n, num_slots, rng)
        slot_pool = list(range(num_slots))
        rng.shuffle(slot_pool)
        # Trap owners: rotate among active parties; message senders pick
        # their own random slots from the remaining pool.
        trap_owners = sorted(active)[:traps_per_round]
        traps = {
            owner: (slot_pool.pop(), 1 + rng.randrange(field_.order - 1))
            for owner in trap_owners
        }
        round_msgs = {}
        for sender, value in pending.items():
            if sender in active and slot_pool:
                round_msgs[sender] = (slot_pool.pop(), value)

        choice = jammer_strategy.pick_jammer(corrupt_active, active, burned)
        disruption = {}
        lie_pairs: set[frozenset[int]] = set()
        if choice is not None:
            jammer, lie_pair = choice
            disruption[jammer] = {
                slot: 1 + rng.randrange(field_.order - 1)
                for slot in range(num_slots)
            }
            lie_pairs = {lie_pair}

        result = net.run_round(
            round_msgs, traps, disruption, lie_pairs=lie_pairs
        )

        if result.sprung_traps:
            # One public investigation per failed run (the PW96 game's
            # unit of progress); further sprung traps in the same round
            # yield the same localization and are skipped.
            trace.investigations += 1
            kind, who = result.localized[0]
            if who:
                if kind == "pair":
                    if who not in burned:
                        burned.add(who)
                        trace.burned_pairs.append(who)
                    if player_elimination:
                        for pid in who:
                            active.discard(pid)
                            corrupt_active.discard(pid)
                            trace.eliminated_players.append(pid)
                else:  # single
                    for pid in who:
                        active.discard(pid)
                        corrupt_active.discard(pid)
                        trace.eliminated_players.append(pid)
            continue  # the round's data is discarded after investigation

        # Undisturbed round: collect whatever survived slot collisions.
        got = Counter(result.delivered)
        for sender, (slot, value) in list(round_msgs.items()):
            if got[value] > 0:
                got[value] -= 1
                delivered[value] += 1
                del pending[sender]

    trace.gave_up = bool(pending)
    return trace
