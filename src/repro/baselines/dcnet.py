"""Chaum's basic DC-net (the paper's seminal predecessor, [Cha88]).

Each pair of parties shares a random pad; every party publishes its
slot vector XORed with all its pads.  The pads cancel in the sum, which
therefore equals the XOR of all published slot vectors — the messages
appear, but nobody can tell whose they are.

Two classic weaknesses motivate the paper:

- **Collisions**: two senders picking the same slot destroy each other
  (in characteristic 2 the sum is garbage).
- **Jamming**: an actively malicious party can XOR garbage into every
  slot, untraceably, wiping out all messages.  Overcoming this without
  giving up speed is exactly the paper's contribution.

Implemented as a real protocol on the simulated network: one pad
agreement round (private channels) + one publication round (broadcast).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.fields import Field, FieldElement
from repro.network import (
    ExecutionResult,
    Program,
    RoundOutput,
    run_protocol,
)


@dataclass
class DCNetResult:
    """One party's view of the DC-net output: the combined slot vector."""

    slots: list[FieldElement]

    def messages(self) -> list[FieldElement]:
        """Non-zero slots (message values; garbage on collisions)."""
        return [v for v in self.slots if v]


def dcnet_party_program(
    pid: int,
    n: int,
    field: Field,
    num_slots: int,
    message: FieldElement | None,
    slot: int | None,
    rng: random.Random,
) -> Program:
    """One party's code: agree pads, publish masked slots, sum.

    ``message``/``slot`` are ``None`` for non-senders.  Pad agreement:
    the lower-id party of each pair picks the pad vector and sends it.
    """
    if slot is not None and not 0 <= slot < num_slots:
        raise ValueError(f"slot {slot} out of range [0, {num_slots})")

    # Round 1: pad agreement (lower id chooses).
    my_pads = {
        j: [field.random(rng).value for _ in range(num_slots)]
        for j in range(pid + 1, n)
    }
    inbox = yield RoundOutput(private=dict(my_pads))
    pads: dict[int, list[int]] = dict(my_pads)
    for j in range(pid):
        received = inbox.private.get(j)
        if isinstance(received, list) and len(received) == num_slots:
            pads[j] = received
        else:
            pads[j] = [0] * num_slots  # missing pad: default zero

    # Round 2: publish slot vector XOR all pads.
    masked = [0] * num_slots
    if message is not None and slot is not None:
        masked[slot] = message.value
    for vec in pads.values():
        masked = [field.add(a, b) for a, b in zip(masked, vec)]
    inbox = yield RoundOutput(broadcast=masked)

    # Sum all publications: pads cancel pairwise.
    totals = [0] * num_slots
    for sender, vec in inbox.broadcast.items():
        if isinstance(vec, list) and len(vec) == num_slots:
            totals = [field.add(a, b) for a, b in zip(totals, vec)]
    return DCNetResult(slots=[FieldElement(field, v) for v in totals])


def run_dcnet(
    field: Field,
    n: int,
    senders: dict[int, tuple[FieldElement, int]],
    num_slots: int,
    seed: int = 0,
    adversary=None,
) -> ExecutionResult:
    """Run one DC-net round with the given ``{pid: (message, slot)}``."""
    programs = {}
    for pid in range(n):
        message, slot = senders.get(pid, (None, None))
        programs[pid] = dcnet_party_program(
            pid, n, field, num_slots, message, slot,
            random.Random((seed << 10) | pid),
        )
    return run_protocol(programs, adversary=adversary)


def jamming_tamper(field: Field, num_slots: int, rng: random.Random):
    """A tamper function turning a party into an untraceable jammer.

    Use with :class:`repro.network.TamperingAdversary`: in the
    publication round the jammer adds random garbage to every slot.  No
    honest party can attribute the disruption — the motivating weakness
    the paper's cut-and-choose proof eliminates.
    """

    def tamper(pid, view, out):
        if out.broadcast is None:
            return out
        garbled = [
            field.add(v, field.random(rng).value) for v in out.broadcast
        ]
        return RoundOutput(private=out.private, broadcast=garbled)

    return tamper
