"""Baseline anonymous-channel constructions the paper compares against."""

from .dcnet import DCNetResult, dcnet_party_program, jamming_tamper, run_dcnet
from .gj04 import (
    GJ04RepetitionTrace,
    GJ04Run,
    collision_free_probability,
    run_gj04_once,
)
from .gj04 import measure_reliability as gj04_measure_reliability
from .gj04 import run_with_repetition as gj04_run_with_repetition
from .pw96_channel import (
    PersistentJammer,
    PW96ChannelTrace,
    run_pw96_channel,
)
from .pw96 import (
    DisruptionStrategy,
    MaximalDisruption,
    NoDisruption,
    PW96Trace,
    all_pairs_with_corrupt,
    run_pw96,
    worst_case_runs,
)
from .traps import TrapDCNet, TrapRoundResult, trap_catch_probability
from .vabh03 import (
    RepetitionTrace,
    VABH03Run,
    half_reliability_parameters,
    measure_reliability,
    run_vabh03_once,
    run_with_repetition,
)
from .zhang11 import (
    ShuffleTrace,
    batcher_network,
    sorting_network_size,
    zhang11_round_count,
    zhang11_shuffle,
)

__all__ = [
    "run_dcnet",
    "dcnet_party_program",
    "jamming_tamper",
    "DCNetResult",
    "run_pw96",
    "run_gj04_once",
    "gj04_measure_reliability",
    "gj04_run_with_repetition",
    "collision_free_probability",
    "GJ04Run",
    "GJ04RepetitionTrace",
    "TrapDCNet",
    "TrapRoundResult",
    "trap_catch_probability",
    "run_pw96_channel",
    "PW96ChannelTrace",
    "PersistentJammer",
    "worst_case_runs",
    "all_pairs_with_corrupt",
    "PW96Trace",
    "DisruptionStrategy",
    "MaximalDisruption",
    "NoDisruption",
    "run_vabh03_once",
    "measure_reliability",
    "half_reliability_parameters",
    "run_with_repetition",
    "VABH03Run",
    "RepetitionTrace",
    "zhang11_shuffle",
    "zhang11_round_count",
    "batcher_network",
    "sorting_network_size",
    "ShuffleTrace",
]
