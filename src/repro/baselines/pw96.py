"""PW96 trap-protocol round model (fault detection and localization).

The Pfitzmann–Waidner anonymous channel [PW96] survives active
disruption by *fault localization*: a disrupted run is publicly
investigated and yields either a single corrupt player or a *pair* of
players at least one of whom is corrupt; that player/pair is excluded
from future runs.  Footnote 1 of the paper: since there are
``Omega(n^2)`` pairs containing a corrupt player, the adversary can
force ``Omega(n^2)`` sequential runs; player-elimination techniques
[HMP00] could reduce this to ``Omega(n)``.

This module reproduces that *round behaviour* faithfully as a game
between the localization rule and an adversary strategy — the piece of
PW96 the paper actually compares against.  (The full PW96 protocol
internals — trap bits, slot reservation — are out of scope; the paper
compares only round counts.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations


@dataclass
class PW96Trace:
    """Outcome of one adversarial PW96 execution."""

    runs: int
    rounds: int
    broadcast_rounds: int
    eliminated_pairs: list[frozenset[int]] = field(default_factory=list)
    eliminated_players: list[int] = field(default_factory=list)
    delivered: bool = True


class DisruptionStrategy:
    """Adversary interface: pick the next disruption, or give up."""

    def next_disruption(
        self,
        corrupt_active: set[int],
        honest_active: set[int],
        burned_pairs: set[frozenset[int]],
    ) -> frozenset[int] | None:
        """Return the pair (or singleton) the localization will output.

        ``None`` means the adversary stops disrupting (the next run
        succeeds).  A returned pair must contain a corrupt player and
        not be burned already.
        """
        raise NotImplementedError


class MaximalDisruption(DisruptionStrategy):
    """Burn every available (corrupt, any) pair — the Omega(n^2) bound."""

    def next_disruption(self, corrupt_active, honest_active, burned_pairs):
        for c in sorted(corrupt_active):
            for other in sorted(corrupt_active | honest_active):
                if other == c:
                    continue
                pair = frozenset({c, other})
                if pair not in burned_pairs:
                    return pair
        return None


class NoDisruption(DisruptionStrategy):
    """Honest-case baseline: the first run succeeds."""

    def next_disruption(self, corrupt_active, honest_active, burned_pairs):
        return None


def run_pw96(
    n: int,
    corrupt: set[int],
    strategy: DisruptionStrategy,
    rounds_per_run: int = 4,
    player_elimination: bool = False,
) -> PW96Trace:
    """Play the fault-localization game to completion.

    With ``player_elimination`` (the [HMP00] improvement mentioned in
    footnote 1), a localized pair is *removed from the player set*
    entirely, bounding failures by ``t`` instead of ``Omega(n^2)``.
    """
    if not corrupt <= set(range(n)):
        raise ValueError("corrupt set out of range")
    corrupt_active = set(corrupt)
    honest_active = set(range(n)) - corrupt
    burned: set[frozenset[int]] = set()
    trace = PW96Trace(runs=0, rounds=0, broadcast_rounds=0)

    while True:
        trace.runs += 1
        trace.rounds += rounds_per_run
        disruption = strategy.next_disruption(
            corrupt_active, honest_active, burned
        )
        if disruption is None:
            # Undisrupted run: messages delivered, protocol over.
            return trace
        if not disruption & corrupt_active:
            raise ValueError(
                "localization soundness: a disrupted run always implicates "
                "a corrupt player"
            )
        trace.broadcast_rounds += 1  # the public investigation
        burned.add(disruption)
        trace.eliminated_pairs.append(disruption)
        if player_elimination:
            for pid in disruption:
                corrupt_active.discard(pid)
                honest_active.discard(pid)
                trace.eliminated_players.append(pid)
        else:
            # A corrupt player every one of whose pairs is burned can no
            # longer disrupt undetected; it is publicly identified.
            for c in list(corrupt_active):
                possible = {
                    frozenset({c, o})
                    for o in (corrupt_active | honest_active)
                    if o != c
                }
                if possible <= burned:
                    corrupt_active.discard(c)
                    trace.eliminated_players.append(c)


def worst_case_runs(n: int, t: int) -> int:
    """Pairs containing a corrupt player: t(n-t) + C(t,2), i.e. Omega(n^2)."""
    return t * (n - t) + t * (t - 1) // 2


def all_pairs_with_corrupt(n: int, corrupt: set[int]) -> set[frozenset[int]]:
    """Enumerate the pairs the adversary can burn (for tests)."""
    return {
        frozenset(p)
        for p in combinations(range(n), 2)
        if set(p) & corrupt
    }
