"""GJ04 ("Dining Cryptographers Revisited") baseline model (paper §1.2).

Golle–Juels build a computationally secure DC-net from bilinear maps:
after key establishment, senders publish in a **single broadcast
round** ("non-interactivity"), with cheaters detected w.h.p.  The
paper's two §1.2 criticisms, which this model reproduces:

1. **Collisions are not considered** — even all-honest executions lose
   messages when two senders pick the same slot (and there is no
   in-protocol redundancy), so per-run reliability decays with n.
2. **Repetition is malleable** — the suggested fix, re-running until
   delivery, reveals outcomes between runs, letting the adversary
   inject *spurious values dependent on honest messages* — "in
   addition to being unreliable the construction becomes malleable."

The bilinear-map pairing layer itself is out of scope (it is a
computational-setting tool orthogonal to every claim compared here);
the model keeps GJ04's *structure*: one broadcast per attempt, sound
cheater detection, no collision handling.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

#: The protocol's selling point, quoted by the paper.
BROADCAST_ROUNDS_PER_ATTEMPT = 1


@dataclass
class GJ04Run:
    """One non-interactive publication round."""

    sent: Counter
    delivered: Counter
    broadcast_rounds: int = BROADCAST_ROUNDS_PER_ATTEMPT

    def reliable(self) -> bool:
        return all(self.delivered[m] >= c for m, c in self.sent.items())


def run_gj04_once(
    messages: list[int],
    slots: int,
    rng: random.Random,
    injected: list[int] | None = None,
) -> GJ04Run:
    """One GJ04-style round: each message lands in one random slot.

    A slot with more than one occupant is garbage — GJ04 provides no
    redundancy or collision recovery.
    """
    if slots < 1:
        raise ValueError("need at least one slot")
    everyone = list(messages) + list(injected or [])
    placement = [(rng.randrange(slots), m) for m in everyone]
    hits = Counter(slot for slot, _ in placement)
    delivered: Counter = Counter()
    for slot, m in placement:
        if hits[slot] == 1:
            delivered[m] += 1
    return GJ04Run(sent=Counter(messages), delivered=delivered)


def collision_free_probability(n: int, slots: int) -> float:
    """Probability an all-honest run delivers everything (birthday)."""
    p = 1.0
    for i in range(n):
        p *= (slots - i) / slots
    return max(p, 0.0)


def measure_reliability(
    n: int, slots: int, trials: int, seed: int = 0
) -> float:
    """Fraction of all-honest runs delivering every message."""
    rng = random.Random(seed)
    ok = 0
    for _ in range(trials):
        if run_gj04_once(list(range(1, n + 1)), slots, rng).reliable():
            ok += 1
    return ok / trials


@dataclass
class GJ04RepetitionTrace:
    """Repeat-until-delivered with an outcome-echoing adversary."""

    attempts: int
    broadcast_rounds: int
    delivered: Counter
    echoes: int

    def malleable(self) -> bool:
        return self.echoes > 0


def run_with_repetition(
    messages: list[int],
    slots: int,
    rng: random.Random,
    max_attempts: int = 64,
) -> GJ04RepetitionTrace:
    """The paper's criticism made concrete: spurious dependent values.

    After each public attempt, the adversary injects a copy of a
    previously revealed honest value into the next attempt.
    """
    pending = Counter(messages)
    delivered_total: Counter = Counter()
    revealed: list[int] = []
    echoes = 0
    attempts = 0
    while pending and attempts < max_attempts:
        attempts += 1
        injected = [rng.choice(revealed)] if revealed else []
        run = run_gj04_once(
            list(pending.elements()), slots, rng, injected=injected
        )
        for value, count in run.delivered.items():
            take = min(count, pending[value])
            if take:
                pending[value] -= take
                delivered_total[value] += take
                revealed.extend([value] * take)
                count -= take
            if count > 0 and value in injected:
                delivered_total[value] += count
                echoes += count
        pending = +pending
    return GJ04RepetitionTrace(
        attempts=attempts,
        broadcast_rounds=attempts * BROADCAST_ROUNDS_PER_ATTEMPT,
        delivered=delivered_total,
        echoes=echoes,
    )
