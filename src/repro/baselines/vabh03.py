"""vABH03 k-anonymous dart throwing (the paper's closest relative).

von Ahn, Bortz and Hopper [vABH03] also follow the dart-throwing
method, but their parameter regime guarantees Reliability (their
"Robustness") with probability **1/2 only** — a message survives iff at
least one of its copies lands in a slot nobody else touched.  Achieving
``(1 - eps)``-reliability by plain repetition is what the paper's §1.2
criticizes: each repetition reveals the previous outcome, letting the
adversary inject fresh, outcome-dependent values — *malleability*.

This module reproduces both behaviours at the dart-throwing level:
:func:`run_vabh03_once` measures per-run reliability for their style of
parameters, and :func:`run_with_repetition` exhibits the malleability
of the repeat-until-delivered fix (an adversary whose injections echo
previously revealed honest values).
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass


@dataclass
class VABH03Run:
    """One run: who sent what, what the receiver decoded."""

    sent: Counter
    delivered: Counter

    def reliable(self) -> bool:
        """All honest messages delivered?"""
        return all(self.delivered[m] >= c for m, c in self.sent.items())


def run_vabh03_once(
    messages: list[int],
    slots: int,
    copies: int,
    rng: random.Random,
    injected: list[int] | None = None,
) -> VABH03Run:
    """One dart-throwing round in the vABH03 style.

    Each message lands ``copies`` darts in a vector of ``slots``; a slot
    hit by more than one dart is garbage (collision); a message is
    decoded iff at least one of its darts is alone in its slot.
    ``injected`` models adversarial messages thrown the same way.
    """
    if copies < 1 or slots < 1:
        raise ValueError("need at least one copy and one slot")
    all_messages = list(messages) + list(injected or [])
    placements: list[tuple[int, int]] = []  # (slot, message index)
    for idx, _message in enumerate(all_messages):
        for slot in rng.choices(range(slots), k=copies):
            placements.append((slot, idx))
    hits = Counter(slot for slot, _ in placements)
    delivered: Counter = Counter()
    decoded_indices = set()
    for slot, idx in placements:
        if hits[slot] == 1 and idx not in decoded_indices:
            decoded_indices.add(idx)
            delivered[all_messages[idx]] += 1
    return VABH03Run(sent=Counter(messages), delivered=delivered)


def half_reliability_parameters(n: int) -> tuple[int, int]:
    """(slots, copies) giving per-run reliability near 1/2.

    With one copy per message and ``slots = ceil(n / (2 ln 2))`` the
    probability that *all* n messages land alone decays to about 1/2
    for moderate n — the regime the paper attributes to [vABH03].
    """
    import math

    slots = max(n, math.ceil(n * n / (2 * math.log(2))))
    return slots, 1


def measure_reliability(
    n: int, slots: int, copies: int, trials: int, seed: int = 0
) -> float:
    """Fraction of runs in which every honest message is delivered."""
    rng = random.Random(seed)
    ok = 0
    for _ in range(trials):
        run = run_vabh03_once(list(range(1, n + 1)), slots, copies, rng)
        if run.reliable():
            ok += 1
    return ok / trials


@dataclass
class RepetitionTrace:
    """Repeat-until-delivered execution with an adaptive injector."""

    repetitions: int
    delivered: Counter
    injected_values: list[int]
    echoes: int  # injections equal to a previously revealed honest value

    def malleable(self) -> bool:
        """Did the adversary successfully echo revealed honest values?"""
        return self.echoes > 0


def run_with_repetition(
    messages: list[int],
    slots: int,
    copies: int,
    rng: random.Random,
    max_repetitions: int = 64,
) -> RepetitionTrace:
    """Repeat until all messages delivered; adversary echoes revelations.

    After each failed repetition the outcome is public (that is how the
    senders know to retry); the modeled adversary injects, into every
    later repetition, a copy of some honest value revealed earlier —
    the paper's malleability objection made concrete: the final output
    multiset ``Y`` contains adversarial values *correlated with X*.
    """
    pending = Counter(messages)
    delivered_total: Counter = Counter()
    revealed: list[int] = []
    injected_values: list[int] = []
    echoes = 0
    reps = 0
    while pending and reps < max_repetitions:
        reps += 1
        injected = []
        if revealed:
            echo = rng.choice(revealed)
            injected.append(echo)
            injected_values.append(echo)
        run = run_vabh03_once(
            list(pending.elements()), slots, copies, rng, injected=injected
        )
        for value, count in run.delivered.items():
            if pending[value] > 0:
                taken = min(count, pending[value])
                pending[value] -= taken
                delivered_total[value] += taken
                revealed.extend([value] * taken)
                count -= taken
            if count > 0 and value in injected:
                delivered_total[value] += count
                if value in revealed:
                    echoes += count
        pending = +pending  # drop zero entries
    return RepetitionTrace(
        repetitions=reps,
        delivered=delivered_total,
        injected_values=injected_values,
        echoes=echoes,
    )
