"""Dolev–Strong authenticated broadcast [DS83].

This is the protocol the paper's Section 4 plugs pseudosignatures into:
after a setup phase with a physical broadcast channel, the parties can
*simulate* broadcast over point-to-point links only, for any ``t``
covered by the signature scheme (``t < n/2`` with our
pseudosignature setup), using only the secure pairwise channels.

Protocol (sender ``s``, ``t + 1`` rounds, point-to-point only):

- Round 1: ``s`` signs its value and sends it to everyone.
- Round ``r``: a party that newly *extracted* a value carried by a
  chain of ``r - 1`` valid signatures from distinct parties (the
  sender's first) appends its own signature and relays to everyone.
- After round ``t + 1``: output the single extracted value, or the
  default if zero or several values were extracted.

A chain with ``r`` signatures was transferred ``r`` times, which is why
``O(t)``-transferability of pseudosignatures suffices (paper §4).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Hashable

from repro.network import (
    ExecutionResult,
    Program,
    RoundOutput,
    run_protocol,
)

#: Output when the sender equivocated or stayed silent.
DEFAULT_VALUE = 0


class SignatureScheme(ABC):
    """What Dolev–Strong needs from signatures.

    ``level`` is the position in the transfer chain at which the
    verifier checks — plain (ideal) signatures ignore it; pseudosignature
    verification degrades with it.
    """

    @abstractmethod
    def sign(self, signer: int, message: Hashable) -> Any: ...

    @abstractmethod
    def verify(
        self, signer: int, message: Hashable, signature: Any,
        verifier: int, level: int,
    ) -> bool: ...


class IdealSignatures(SignatureScheme):
    """Unforgeable registry-backed signatures (baseline substrate).

    Only messages actually signed through :meth:`sign` verify; the
    adversaries modeled here never forge (which is exactly the guarantee
    real pseudosignatures provide up to ``2^-Omega(kappa)``).
    """

    def __init__(self):
        self._signed: set[tuple[int, Hashable]] = set()

    def sign(self, signer: int, message: Hashable) -> Any:
        self._signed.add((signer, message))
        return ("sig", signer, message)

    def verify(self, signer, message, signature, verifier, level) -> bool:
        return (
            isinstance(signature, tuple)
            and len(signature) == 3
            and signature[0] == "sig"
            and signature[1] == signer
            and signature[2] == message
            and (signer, message) in self._signed
        )


class PseudosignatureAdapter(SignatureScheme):
    """Back Dolev–Strong with per-party PW96 pseudosignature setups.

    Each party owns one pseudosignature instance (it is the signer);
    every other party holds verification keys from the (ideal or real)
    anonymous-channel setup.  Values are hashed into the MAC field.
    """

    def __init__(self, n: int, blocks: int, max_transfers: int, rng: random.Random):
        from repro.pseudosig import PseudosignatureScheme

        self.n = n
        self.schemes = {}
        self.signer_setups = {}
        self.verifier_views = {}
        for pid in range(n):
            scheme = PseudosignatureScheme(
                n=n, signer=pid, blocks=blocks, max_transfers=max_transfers
            )
            setup, views = scheme.ideal_setup(rng)
            self.schemes[pid] = scheme
            self.signer_setups[pid] = setup
            self.verifier_views[pid] = views

    @classmethod
    def from_real_setups(
        cls,
        n: int,
        blocks: int,
        max_transfers: int,
        params,
        vss,
        mac_field=None,
        seed: int = 0,
    ) -> "PseudosignatureAdapter":
        """Build the adapter with *real* AnonChan-based key setups.

        Runs ``n * blocks`` complete anonymous-channel executions (one
        per signer per block) — the full §4 pipeline with no ideal
        shortcut.  Expensive; intended for small end-to-end
        demonstrations.
        """
        from repro.fields import gf2k
        from repro.pseudosig import PseudosignatureScheme, setup_with_anonchan

        if mac_field is None:
            mac_field = gf2k(16)
        adapter = cls.__new__(cls)
        adapter.n = n
        adapter.schemes = {}
        adapter.signer_setups = {}
        adapter.verifier_views = {}
        for pid in range(n):
            scheme = PseudosignatureScheme(
                n=n,
                signer=pid,
                blocks=blocks,
                max_transfers=max_transfers,
                mac_field=mac_field,
            )
            setup, views, _metrics = setup_with_anonchan(
                scheme, params, vss, seed=(seed << 4) | pid
            )
            adapter.schemes[pid] = scheme
            adapter.signer_setups[pid] = setup
            adapter.verifier_views[pid] = views
        return adapter

    def _encode(self, message: Hashable):
        """Deterministic (process-independent) hash into the MAC field."""
        import zlib

        field = self.schemes[0].mac_field
        digest = zlib.crc32(repr(message).encode())
        return field(digest & (field.order - 1))

    def sign(self, signer: int, message: Hashable) -> Any:
        scheme = self.schemes[signer]
        return scheme.sign(self.signer_setups[signer], self._encode(message))

    def verify(self, signer, message, signature, verifier, level) -> bool:
        scheme = self.schemes.get(signer)
        if scheme is None:
            return False
        if verifier == signer:
            return True  # a party vouches for its own signatures
        views = self.verifier_views[signer]
        if verifier not in views:
            return False
        if getattr(signature, "message", None) != self._encode(message):
            return False
        level = min(max(level, 1), scheme.max_transfers)
        return scheme.verify(views[verifier], signature, level)


def dolev_strong_program(
    pid: int,
    n: int,
    t: int,
    sender: int,
    value: Hashable | None,
    signatures: SignatureScheme,
) -> Program:
    """One party's Dolev–Strong code (point-to-point only)."""
    others = [j for j in range(n) if j != pid]
    extracted: set[Hashable] = set()
    my_signed: set[Hashable] = set()
    outbox: list[tuple[Hashable, list[tuple[int, Any]]]] = []

    if pid == sender:
        if value is None:
            raise ValueError("the sender needs an input value")
        extracted.add(value)
        my_signed.add(value)
        outbox.append((value, [(sender, signatures.sign(sender, value))]))

    for round_index in range(1, t + 2):
        if outbox:
            payload = list(outbox)
            outbox = []
            inbox = yield RoundOutput(private={j: payload for j in others})
        else:
            inbox = yield RoundOutput.silent()

        for _src, payload in inbox.private.items():
            if not isinstance(payload, list):
                continue
            for item in payload:
                chain = _valid_chain(
                    item, sender, signatures, verifier=pid,
                    min_length=round_index, own_signed=my_signed,
                )
                if chain is None:
                    continue
                val, sigs = chain
                if val in extracted:
                    continue
                extracted.add(val)
                if len(extracted) <= 2 and pid != sender:
                    # Relay with our signature appended (relaying more
                    # than two values is pointless: everyone already
                    # knows the sender equivocated).
                    signed_by = {s for s, _ in sigs}
                    if pid not in signed_by:
                        my_signed.add(val)
                        outbox.append(
                            (val, sigs + [(pid, signatures.sign(pid, val))])
                        )

    if len(extracted) == 1:
        return next(iter(extracted))
    return DEFAULT_VALUE


def _valid_chain(
    item: Any,
    sender: int,
    signatures: SignatureScheme,
    verifier: int,
    min_length: int,
    own_signed: set[Hashable],
) -> tuple[Hashable, list[tuple[int, Any]]] | None:
    """Validate a relayed (value, signature chain) message.

    A chain claiming the verifier's *own* signature on a value it never
    signed is a forgery attempt and is rejected outright.
    """
    if not (isinstance(item, tuple) and len(item) == 2):
        return None
    value, sigs = item
    if not isinstance(sigs, list) or len(sigs) < min_length:
        return None
    try:
        signers = [s for s, _ in sigs]
    except (TypeError, ValueError):
        return None
    if len(set(signers)) != len(signers) or signers[0] != sender:
        return None
    for level, (signer_pid, sig) in enumerate(sigs, start=1):
        if signer_pid == verifier:
            if value not in own_signed:
                return None
            continue  # our own signature on a value we did sign
        if not signatures.verify(signer_pid, value, sig, verifier, level):
            return None
    return value, list(sigs)


def run_dolev_strong(
    n: int,
    t: int,
    sender: int,
    value: Hashable,
    signatures: SignatureScheme | None = None,
    adversary=None,
) -> ExecutionResult:
    """Run one broadcast; honest parties' outputs are their decisions."""
    if signatures is None:
        signatures = IdealSignatures()
    programs = {
        pid: dolev_strong_program(
            pid, n, t, sender, value if pid == sender else None, signatures
        )
        for pid in range(n)
    }
    return run_protocol(programs, adversary=adversary)
