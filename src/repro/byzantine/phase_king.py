"""Unauthenticated Byzantine consensus baseline (phase-king).

The paper's motivation for pseudosignatures: without authentication,
broadcast/consensus cannot be simulated at all once ``t >= n/3``
[LSP82], and practical unauthenticated protocols give up even more.
We implement the textbook two-round phase-king algorithm (Attiya–Welch,
Algorithm 15), which is correct for ``t < n/4`` — chosen for its exact,
well-documented specification.  Contrasting its resilience with
Dolev–Strong over pseudosignatures (``t < n/2`` after a constant-round
setup) is experiment E6's point.
"""

from __future__ import annotations


from repro.network import ExecutionResult, Program, RoundOutput, run_protocol

DEFAULT = 0


def phase_king_program(pid: int, n: int, t: int, value: int) -> Program:
    """Binary consensus; ``t + 1`` phases of two rounds each."""
    if 4 * t >= n:
        raise ValueError(f"phase-king requires t < n/4, got n={n}, t={t}")
    pref = value
    others = [j for j in range(n) if j != pid]
    for phase in range(1, t + 2):
        # Round 1: universal exchange.
        inbox = yield RoundOutput(private={j: pref for j in others})
        votes = [pref] + [
            v if isinstance(v, int) else DEFAULT
            for v in (inbox.private.get(j, DEFAULT) for j in others)
        ]
        counts: dict[int, int] = {}
        for v in votes:
            counts[v] = counts.get(v, 0) + 1
        maj = max(sorted(counts), key=lambda v: counts[v])
        mult = counts[maj]

        # Round 2: the phase king circulates its majority.
        king = phase - 1  # party ids 0..t serve as kings
        if pid == king:
            inbox = yield RoundOutput(private={j: maj for j in others})
            king_maj = maj
        else:
            inbox = yield RoundOutput.silent()
            received = inbox.private.get(king, DEFAULT)
            king_maj = received if isinstance(received, int) else DEFAULT

        pref = maj if mult > n // 2 + t else king_maj
    return pref


def run_phase_king(
    n: int, t: int, values: dict[int, int], adversary=None
) -> ExecutionResult:
    """Run one consensus instance over point-to-point channels only."""
    programs = {
        pid: phase_king_program(pid, n, t, values.get(pid, DEFAULT))
        for pid in range(n)
    }
    return run_protocol(programs, adversary=adversary)
