"""Simulating broadcast after a pseudosignature setup (paper §4).

The end-to-end application: a setup phase (with physical broadcast)
generates pseudosignature material for every party via the anonymous
channel; afterwards, any number of broadcasts can be simulated on the
point-to-point network alone by running authenticated Byzantine
agreement (Dolev–Strong).  The setup's cost is what the paper improves:
constant rounds and two physical-broadcast rounds (with GGOR13 VSS)
instead of PW96's ``Omega(n^2)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .dolev_strong import PseudosignatureAdapter, run_dolev_strong


@dataclass
class SetupCost:
    """Accounting of the setup phase (for E6)."""

    rounds: int
    broadcast_rounds: int
    anonchan_invocations: int


class SimulatedBroadcastChannel:
    """Broadcast-as-a-service on a point-to-point network.

    After :meth:`setup`, :meth:`broadcast` runs one Dolev–Strong
    instance using the pre-established pseudosignatures — no physical
    broadcast channel involved.
    """

    def __init__(self, n: int, t: int, blocks: int | None = None):
        if 2 * t >= n:
            raise ValueError("pseudosignature setup requires t < n/2")
        self.n = n
        self.t = t
        # Dolev-Strong chains carry up to t+1 signatures, so the
        # pseudosignatures must survive t+1 transfers (paper §4:
        # O(t)-transferability suffices).
        self.max_transfers = t + 1
        self.blocks = blocks if blocks is not None else 4 * (t + 2)
        self.adapter: PseudosignatureAdapter | None = None
        self.setup_cost: SetupCost | None = None

    def setup(self, rng: random.Random, vss_cost=None) -> SetupCost:
        """Generate every party's pseudosignature material.

        The adapter's key material stands for ``n * blocks`` parallel
        AnonChan invocations; since parallel composition preserves
        rounds, the whole setup costs *one* AnonChan execution's rounds
        (``r_VSS-share + 5``) and its VSS's broadcast rounds.
        """
        from repro.analysis.rounds import ANONCHAN_FIXED_OVERHEAD
        from repro.vss.costs import GGOR13_COST

        if vss_cost is None:
            vss_cost = GGOR13_COST
        self.adapter = PseudosignatureAdapter(
            n=self.n,
            blocks=self.blocks,
            max_transfers=self.max_transfers,
            rng=rng,
        )
        self.setup_cost = SetupCost(
            rounds=vss_cost.share_rounds + ANONCHAN_FIXED_OVERHEAD,
            broadcast_rounds=vss_cost.share_broadcast_rounds,
            anonchan_invocations=self.n * self.blocks,
        )
        return self.setup_cost

    def broadcast(self, sender: int, value, adversary=None):
        """One simulated broadcast (pure point-to-point execution)."""
        if self.adapter is None:
            raise RuntimeError("call setup() before broadcast()")
        return run_dolev_strong(
            self.n,
            self.t,
            sender,
            value,
            signatures=self.adapter,
            adversary=adversary,
        )
