"""Byzantine agreement: the paper's Section 4 application layer."""

from .broadcast_sim import SetupCost, SimulatedBroadcastChannel
from .dolev_strong import (
    DEFAULT_VALUE,
    IdealSignatures,
    PseudosignatureAdapter,
    SignatureScheme,
    dolev_strong_program,
    run_dolev_strong,
)
from .phase_king import phase_king_program, run_phase_king

__all__ = [
    "run_dolev_strong",
    "dolev_strong_program",
    "SignatureScheme",
    "IdealSignatures",
    "PseudosignatureAdapter",
    "DEFAULT_VALUE",
    "run_phase_king",
    "phase_king_program",
    "SimulatedBroadcastChannel",
    "SetupCost",
]
