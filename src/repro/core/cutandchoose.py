"""Cut-and-choose sparseness proof (step 3 of Figure 1).

For each prover ``P_i`` and each check ``j``, challenge bit ``b_j``
selects one of two openings:

- ``b_j = 0``: open the permutation ``pi_j``; then reconstruct
  ``u = pi_j(v) - w_j`` coordinate-wise and verify it is the zero
  vector.  (``u``'s coordinates are *linear combinations* of committed
  values with public coefficients once ``pi_j`` is public, so no new
  sharing is needed — this is where VSS linearity earns its keep.)
- ``b_j = 1``: open ``w_j``'s claimed non-zero index list; then
  reconstruct the alleged zero coordinates of ``w_j`` (must all be
  zero) and the consecutive differences of its alleged non-zero
  entries (must all be zero, proving the entries are equal).

This module computes which batch offsets/combinations to open and
validates the opened values; the protocol driver in
:mod:`repro.core.anonchan` wires it to actual VSS reconstructions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.fields import FieldElement
from repro.vss import ShareView

from .darts import Permutation
from .layout import DealerLayout


@dataclass(frozen=True)
class Stage2Plan:
    """Derived openings for one (prover, check) after stage 1 succeeded.

    ``views`` are the linear-combination share views to reconstruct;
    the check passes iff every reconstructed value is zero.
    """

    views: list[ShareView]


def stage1_slice(layout: DealerLayout, j: int, bit: int) -> tuple[int, int]:
    """Contiguous batch range ``[lo, hi)`` opened first for check ``j``.

    Both stage-1 openings (the permutation for bit 0, the index list
    for bit 1) occupy contiguous offsets in the dealer layout, so the
    protocol can slice the batch instead of gathering per-offset.
    """
    if bit == 0:
        lo = layout.perm(j, 0)
        return lo, lo + layout.ell
    lo = layout.idx(j, 0)
    return lo, lo + layout.d


def stage1_offsets(layout: DealerLayout, j: int, bit: int) -> list[int]:
    """Batch offsets opened first for check ``j`` under challenge ``bit``."""
    return list(range(*stage1_slice(layout, j, bit)))


def validate_permutation_opening(
    values: Sequence[FieldElement],
) -> Permutation | None:
    """Decode an opened permutation; ``None`` disqualifies the prover."""
    return Permutation.from_field_elements(values)


def validate_index_list_opening(
    values: Sequence[FieldElement], ell: int, d: int
) -> list[int] | None:
    """Decode an opened index list; ``None`` disqualifies the prover.

    Valid = exactly ``d`` distinct indices within ``[0, ell)``.
    """
    indices = [int(v) for v in values]
    if len(indices) != d or len(set(indices)) != d:
        return None
    if any(not 0 <= k < ell for k in indices):
        return None
    return indices


def stage2_plan_bit0(
    layout: DealerLayout,
    j: int,
    perm: Permutation,
    batch_views: Sequence[ShareView],
) -> Stage2Plan:
    """Views of ``u = pi_j(v) - w_j`` (both halves of every coordinate).

    ``u[k] = v[pi_j(k)] - w_j[k]``; the difference is computed via the
    generic ``scale(-1)`` so the code stays field-agnostic, but in a
    characteristic-2 field ``-1 == 1`` and the scaling is skipped —
    these plans cover ``2 l`` view combinations per (prover, check), so
    the no-op copies were measurable.
    """
    negate = _negate_fn(layout)
    views = []
    for k in range(layout.ell):
        src = perm(k)
        views.append(
            batch_views[layout.vec_x(src)]
            + negate(batch_views[layout.w_x(j, k)])
        )
        views.append(
            batch_views[layout.vec_a(src)]
            + negate(batch_views[layout.w_a(j, k)])
        )
    return Stage2Plan(views=views)


def _negate_fn(layout: DealerLayout):
    """View negation for the layout's field (identity in char 2)."""
    field = layout.params.field
    minus_one = field(field.neg(field.encode(1)))
    if minus_one.value == field.encode(1):
        return lambda view: view
    return lambda view: view.scale(minus_one)


def stage2_plan_bit1(
    layout: DealerLayout,
    j: int,
    index_list: Sequence[int],
    batch_views: Sequence[ShareView],
) -> Stage2Plan:
    """Views of w_j's alleged zero coordinates and entry differences.

    Order: for each non-listed k ascending, (x half, tag half); then for
    consecutive listed pairs, the differences of both halves.
    """
    negate = _negate_fn(layout)
    listed = set(index_list)
    views: list[ShareView] = []
    for k in range(layout.ell):
        if k in listed:
            continue
        views.append(batch_views[layout.w_x(j, k)])
        views.append(batch_views[layout.w_a(j, k)])
    for prev, cur in zip(index_list, list(index_list)[1:]):
        views.append(
            batch_views[layout.w_x(j, cur)]
            + negate(batch_views[layout.w_x(j, prev)])
        )
        views.append(
            batch_views[layout.w_a(j, cur)]
            + negate(batch_views[layout.w_a(j, prev)])
        )
    return Stage2Plan(views=views)


def stage2_offsets_bit0(
    layout: DealerLayout, j: int, perm: Permutation
) -> tuple[np.ndarray, np.ndarray]:
    """Offset arrays for the bit-0 differences ``u = pi_j(v) - w_j``.

    Returns parallel ``(minuend, subtrahend)`` offset arrays of length
    ``2 l``, interleaved exactly like :func:`stage2_plan_bit0`'s views:
    ``(x half, tag half)`` per coordinate.  Feeding them to the VSS
    layer's ``diff_offsets_batch`` yields view-for-view the same result
    as the scalar plan (the differential harness asserts this).
    """
    ell = layout.ell
    src = np.asarray(perm.mapping, dtype=np.int64)
    ks = np.arange(ell, dtype=np.int64)
    offs_a = np.empty(2 * ell, dtype=np.int64)
    offs_b = np.empty(2 * ell, dtype=np.int64)
    offs_a[0::2] = src  # vec_x(pi_j(k))
    offs_a[1::2] = ell + src  # vec_a(pi_j(k))
    w_x0 = layout.w_x(j, 0)
    offs_b[0::2] = w_x0 + ks  # w_x(j, k)
    offs_b[1::2] = w_x0 + ell + ks  # w_a(j, k)
    return offs_a, offs_b


def stage2_offsets_bit1(
    layout: DealerLayout, j: int, index_list: Sequence[int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Offset arrays for the bit-1 openings of ``w_j``.

    Returns ``(passthrough, minuend, subtrahend)``: ``passthrough``
    holds the ``2 (l - d)`` offsets of the alleged-zero coordinates
    (opened as-is), the other two the ``2 (d - 1)`` difference pairs of
    consecutive listed entries — in :func:`stage2_plan_bit1`'s order.
    """
    ell = layout.ell
    w_x0 = layout.w_x(j, 0)
    idx = np.asarray(list(index_list), dtype=np.int64)
    listed = np.zeros(ell, dtype=bool)
    listed[idx] = True
    ks = np.flatnonzero(~listed)
    passthrough = np.empty(2 * ks.size, dtype=np.int64)
    passthrough[0::2] = w_x0 + ks
    passthrough[1::2] = w_x0 + ell + ks
    cur, prev = idx[1:], idx[:-1]
    offs_a = np.empty(2 * cur.size, dtype=np.int64)
    offs_b = np.empty(2 * cur.size, dtype=np.int64)
    offs_a[0::2] = w_x0 + cur
    offs_a[1::2] = w_x0 + ell + cur
    offs_b[0::2] = w_x0 + prev
    offs_b[1::2] = w_x0 + ell + prev
    return passthrough, offs_a, offs_b


def stage2_passes(values: Sequence[FieldElement]) -> bool:
    """Both branches succeed iff every reconstructed value is zero."""
    return all(not v for v in values)


def challenge_bits(r: FieldElement, num_checks: int) -> list[int]:
    """Interpret the jointly reconstructed ``r`` as challenge bits.

    Figure 1, step 2: ``r`` is read as a bit string; we take the low
    ``num_checks`` bits of its GF(2^kappa) encoding.
    """
    value = r.value
    return [(value >> j) & 1 for j in range(num_checks)]
