"""The paper's contribution: protocol AnonChan and its building blocks."""

from .anonchan import AnonChan, AnonChanOutput, run_anonchan
from .channel import AnonymousChannel, TransmissionReport
from .parallel_channels import run_parallel_channels
from .cutandchoose import (
    challenge_bits,
    stage1_offsets,
    stage2_passes,
    stage2_plan_bit0,
    stage2_plan_bit1,
    validate_index_list_opening,
    validate_permutation_opening,
)
from .darts import Permutation, SparseVector, fresh_tag, make_dart_vector
from .layout import DealerLayout, ProverMaterial, ReceiverLayout, honest_material
from .params import (
    AnonChanParams,
    paper_parameters,
    reliability_failure_bound,
    scaled_parameters,
)
from .receiver import (
    extract_output,
    honest_input_multiset,
    non_malleability_shape_holds,
    reliability_holds,
    vector_from_opened,
)

__all__ = [
    "AnonChan",
    "AnonChanOutput",
    "run_anonchan",
    "AnonymousChannel",
    "TransmissionReport",
    "run_parallel_channels",
    "AnonChanParams",
    "paper_parameters",
    "scaled_parameters",
    "reliability_failure_bound",
    "Permutation",
    "SparseVector",
    "make_dart_vector",
    "fresh_tag",
    "DealerLayout",
    "ReceiverLayout",
    "ProverMaterial",
    "honest_material",
    "challenge_bits",
    "stage1_offsets",
    "stage2_plan_bit0",
    "stage2_plan_bit1",
    "stage2_passes",
    "validate_permutation_opening",
    "validate_index_list_opening",
    "extract_output",
    "vector_from_opened",
    "honest_input_multiset",
    "reliability_holds",
    "non_malleability_shape_holds",
]
