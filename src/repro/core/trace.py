"""Round-schedule inspection for AnonChan.

:func:`round_schedule` computes, for a parameter set and VSS cost
profile, what happens in every synchronous round of one execution —
the artifact behind the paper's "constant number of rounds can easily
be verified by inspection" (§3).  Used by documentation, the CLI, and
tests that pin the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vss.base import VSSCost

from .params import AnonChanParams


@dataclass(frozen=True)
class RoundDescription:
    """One synchronous round of the protocol."""

    index: int
    phase: str
    uses_broadcast: bool
    description: str


def round_schedule(
    params: AnonChanParams, vss_cost: VSSCost
) -> list[RoundDescription]:
    """The complete round-by-round schedule of one AnonChan execution."""
    rounds: list[RoundDescription] = []
    share_total = (
        2 * params.ell + params.num_checks * (3 * params.ell + params.d) + 1
    )
    for r in range(vss_cost.share_rounds):
        rounds.append(
            RoundDescription(
                index=len(rounds),
                phase="step 1: VSS-Share",
                uses_broadcast=r < vss_cost.share_broadcast_rounds,
                description=(
                    f"round {r + 1}/{vss_cost.share_rounds} of the parallel "
                    f"sharing phase ({share_total} values per dealer, "
                    f"{params.n * params.ell} receiver-permutation values)"
                ),
            )
        )
    rounds.append(
        RoundDescription(
            index=len(rounds),
            phase="step 2: challenge",
            uses_broadcast=False,
            description="open r = sum of all challenge contributions "
            f"(read as {params.num_checks} bits)",
        )
    )
    rounds.append(
        RoundDescription(
            index=len(rounds),
            phase="step 3a: cut-and-choose openings",
            uses_broadcast=False,
            description="open permutations (bit 0) / index lists (bit 1) "
            f"for all {params.n} provers x {params.num_checks} checks",
        )
    )
    rounds.append(
        RoundDescription(
            index=len(rounds),
            phase="step 3b: cut-and-choose verification",
            uses_broadcast=False,
            description="open the derived zero-combinations "
            "(pi_j(v) - w_j, alleged zeros, entry differences)",
        )
    )
    rounds.append(
        RoundDescription(
            index=len(rounds),
            phase="step 4a: receiver permutations",
            uses_broadcast=False,
            description=f"open the receiver's {params.n} permutations g_i",
        )
    )
    rounds.append(
        RoundDescription(
            index=len(rounds),
            phase="step 4b: private transfer",
            uses_broadcast=False,
            description="each party sends its shares of "
            "v = sum over PASS of g_i(v^(i)) privately to P*; P* "
            "simulates VSS-Rec internally and thresholds at "
            f">= {params.threshold_count} occurrences",
        )
    )
    return rounds


def total_rounds(params: AnonChanParams, vss_cost: VSSCost) -> int:
    """Rounds of one execution: r_VSS-share + 5."""
    return vss_cost.share_rounds + 5


def total_broadcast_rounds(params: AnonChanParams, vss_cost: VSSCost) -> int:
    """Broadcast rounds: exactly the VSS sharing phase's."""
    return vss_cost.share_broadcast_rounds


def format_schedule(params: AnonChanParams, vss_cost: VSSCost) -> str:
    """Human-readable schedule table."""
    lines = [
        f"AnonChan schedule: n={params.n}, t={params.t}, "
        f"l={params.ell}, d={params.d}, checks={params.num_checks}",
        f"total: {total_rounds(params, vss_cost)} rounds, "
        f"{total_broadcast_rounds(params, vss_cost)} broadcast rounds",
        "",
    ]
    for r in round_schedule(params, vss_cost):
        marker = "B" if r.uses_broadcast else " "
        lines.append(f"  [{r.index:>2}] {marker} {r.phase:<36} {r.description}")
    return "\n".join(lines)
