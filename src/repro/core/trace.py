"""Round-schedule inspection for AnonChan.

:func:`round_schedule` computes, for a parameter set and VSS cost
profile, what happens in every synchronous round of one execution —
the artifact behind the paper's "constant number of rounds can easily
be verified by inspection" (§3).  Used by documentation, the CLI, and
tests that pin the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vss.base import VSSCost

from .params import AnonChanParams


@dataclass(frozen=True)
class RoundDescription:
    """One synchronous round of the protocol."""

    index: int
    phase: str
    uses_broadcast: bool
    description: str


def round_schedule(
    params: AnonChanParams, vss_cost: VSSCost
) -> list[RoundDescription]:
    """The complete round-by-round schedule of one AnonChan execution."""
    rounds: list[RoundDescription] = []
    share_total = (
        2 * params.ell + params.num_checks * (3 * params.ell + params.d) + 1
    )
    for r in range(vss_cost.share_rounds):
        rounds.append(
            RoundDescription(
                index=len(rounds),
                phase="step 1: VSS-Share",
                uses_broadcast=r < vss_cost.share_broadcast_rounds,
                description=(
                    f"round {r + 1}/{vss_cost.share_rounds} of the parallel "
                    f"sharing phase ({share_total} values per dealer, "
                    f"{params.n * params.ell} receiver-permutation values)"
                ),
            )
        )
    rounds.append(
        RoundDescription(
            index=len(rounds),
            phase="step 2: challenge",
            uses_broadcast=False,
            description="open r = sum of all challenge contributions "
            f"(read as {params.num_checks} bits)",
        )
    )
    rounds.append(
        RoundDescription(
            index=len(rounds),
            phase="step 3a: cut-and-choose openings",
            uses_broadcast=False,
            description="open permutations (bit 0) / index lists (bit 1) "
            f"for all {params.n} provers x {params.num_checks} checks",
        )
    )
    rounds.append(
        RoundDescription(
            index=len(rounds),
            phase="step 3b: cut-and-choose verification",
            uses_broadcast=False,
            description="open the derived zero-combinations "
            "(pi_j(v) - w_j, alleged zeros, entry differences)",
        )
    )
    rounds.append(
        RoundDescription(
            index=len(rounds),
            phase="step 4a: receiver permutations",
            uses_broadcast=False,
            description=f"open the receiver's {params.n} permutations g_i",
        )
    )
    rounds.append(
        RoundDescription(
            index=len(rounds),
            phase="step 4b: private transfer",
            uses_broadcast=False,
            description="each party sends its shares of "
            "v = sum over PASS of g_i(v^(i)) privately to P*; P* "
            "simulates VSS-Rec internally and thresholds at "
            f">= {params.threshold_count} occurrences",
        )
    )
    return rounds


def comm_bounds(params: AnonChanParams, vss_cost: VSSCost) -> dict:
    """Analytic per-phase bandwidth upper bounds for one execution.

    The predictor derives, from the parameter set alone, a worst-case
    wire volume (field elements / atoms) and private-message count per
    protocol phase in the ideal-VSS hybrid model the simulator runs.
    The key quantities:

    - a public opening of ``V`` values has every party send its list of
      per-value reveal payloads to the other ``n - 1`` parties; one
      payload ``(pid, terms, value)`` carries at most ``2 + 2n`` atoms
      (a combined view accumulates at most one term per dealer);
    - the sharing phase of the hybrid carries traffic only in its
      broadcast rounds (each dealer announces its dealing labels: at
      most two label-keyed entries of at most 3 atoms each, times the
      broadcast fan-out);
    - step 4b sends ``2*ell`` payloads privately from each non-receiver
      to the receiver.

    Observed volumes are checked against these bounds dynamically by
    :class:`repro.obs.comm.CommReport` (the run embeds this dict in the
    ``run_start`` event as ``predicted_comm``).
    """
    n = params.n
    fanout = n - 1
    payload = 2 + 2 * n  # (pid, <=n (serial, coeff) terms, value)

    def opening(values: int) -> tuple[int, int]:
        """(max_elements, max_messages) of one public opening round."""
        return n * fanout * values * payload, n * fanout

    stage1_values = n * params.num_checks * max(params.ell, params.d)
    stage2_values = n * params.num_checks * 2 * params.ell
    phases = [
        {
            "phase": "step 1: VSS-Share",
            "max_elements": vss_cost.share_broadcast_rounds * 6 * n * fanout,
            "max_messages": 0,
        },
        {
            "phase": "step 2: challenge",
            "max_elements": opening(1)[0],
            "max_messages": opening(1)[1],
        },
        {
            "phase": "step 3a: cut-and-choose openings",
            "max_elements": opening(stage1_values)[0],
            "max_messages": opening(stage1_values)[1],
        },
        {
            "phase": "step 3b: cut-and-choose verification",
            "max_elements": opening(stage2_values)[0],
            "max_messages": opening(stage2_values)[1],
        },
        {
            "phase": "step 4a: receiver permutations",
            "max_elements": opening(n * params.ell)[0],
            "max_messages": opening(n * params.ell)[1],
        },
        {
            "phase": "step 4b: private transfer",
            "max_elements": fanout * 2 * params.ell * payload,
            "max_messages": fanout,
        },
    ]
    return {
        "version": 1,
        "broadcast_rounds": vss_cost.share_broadcast_rounds,
        "per_value_payload": payload,
        "phases": phases,
    }


def total_rounds(params: AnonChanParams, vss_cost: VSSCost) -> int:
    """Rounds of one execution: r_VSS-share + 5."""
    return vss_cost.share_rounds + 5


def total_broadcast_rounds(params: AnonChanParams, vss_cost: VSSCost) -> int:
    """Broadcast rounds: exactly the VSS sharing phase's."""
    return vss_cost.share_broadcast_rounds


def format_schedule(params: AnonChanParams, vss_cost: VSSCost) -> str:
    """Human-readable schedule table."""
    lines = [
        f"AnonChan schedule: n={params.n}, t={params.t}, "
        f"l={params.ell}, d={params.d}, checks={params.num_checks}",
        f"total: {total_rounds(params, vss_cost)} rounds, "
        f"{total_broadcast_rounds(params, vss_cost)} broadcast rounds",
        "",
    ]
    for r in round_schedule(params, vss_cost):
        marker = "B" if r.uses_broadcast else " "
        lines.append(f"  [{r.index:>2}] {marker} {r.phase:<36} {r.description}")
    return "\n".join(lines)
