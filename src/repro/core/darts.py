"""Dart vectors and permutations — the "throwing darts" substrate.

A sender's dart vector ``v`` lives in ``(F x F)^l``: each coordinate is
a *pair* (message component, tag component), and exactly ``d``
coordinates carry the sender's tagged message ``(x, a)``.  Vectors are
stored sparsely (only non-zero coordinates), since ``d << l``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dc_field
from typing import Sequence

from repro.fields import Field, FieldElement


class Permutation:
    """A permutation of ``[l] = {0, ..., l-1}``.

    ``mapping[k]`` is the image of ``k``; the paper's convention for
    permuting a vector is ``w[k] = v[pi(k)]`` (see Figure 1), realized
    by :meth:`apply`.
    """

    __slots__ = ("mapping",)

    def __init__(self, mapping: Sequence[int]):
        m = list(mapping)
        if sorted(m) != list(range(len(m))):
            raise ValueError("not a permutation of [0, l)")
        self.mapping = m

    @classmethod
    def identity(cls, length: int) -> "Permutation":
        return cls(list(range(length)))

    @classmethod
    def random(cls, length: int, rng: random.Random) -> "Permutation":
        m = list(range(length))
        rng.shuffle(m)
        return cls(m)

    def __len__(self) -> int:
        return len(self.mapping)

    def __call__(self, k: int) -> int:
        return self.mapping[k]

    def inverse(self) -> "Permutation":
        inv = [0] * len(self.mapping)
        for k, image in enumerate(self.mapping):
            inv[image] = k
        return Permutation(inv)

    def compose(self, other: "Permutation") -> "Permutation":
        """The permutation ``self o other``: ``k -> self(other(k))``."""
        if len(other) != len(self):
            raise ValueError("length mismatch")
        return Permutation([self.mapping[other.mapping[k]] for k in range(len(self))])

    def apply(self, vector: "SparseVector") -> "SparseVector":
        """The vector ``w`` with ``w[k] = v[self(k)]``."""
        inv = self.inverse()
        return SparseVector(
            vector.field,
            len(self),
            {inv(k): pair for k, pair in vector.entries.items()},
        )

    def to_field_elements(self, field: Field) -> list[FieldElement]:
        """Encode for VSS sharing: image indices as field elements."""
        return [field(v) for v in self.mapping]

    @classmethod
    def from_field_elements(
        cls, values: Sequence[FieldElement | int]
    ) -> "Permutation | None":
        """Decode a reconstructed permutation; ``None`` if invalid."""
        try:
            m = [int(v) for v in values]
        except (TypeError, ValueError):
            return None
        if sorted(m) != list(range(len(m))):
            return None
        return cls(m)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Permutation) and self.mapping == other.mapping

    def __repr__(self) -> str:
        return f"Permutation({self.mapping!r})"


@dataclass
class SparseVector:
    """A vector in ``(F x F)^l`` stored by its non-zero coordinates.

    ``entries[k] = (x_raw, a_raw)`` holds raw field encodings of the
    message and tag halves of coordinate ``k``; absent coordinates are
    ``(0, 0)``.
    """

    field: Field
    length: int
    entries: dict[int, tuple[int, int]] = dc_field(default_factory=dict)

    def __post_init__(self):
        for k, pair in list(self.entries.items()):
            if not 0 <= k < self.length:
                # The failing index is a secret dart position: name the
                # bound, not the value (exception text reaches logs).
                raise ValueError(f"entry index out of range [0, {self.length})")
            if pair == (0, 0):
                del self.entries[k]

    # -- queries ----------------------------------------------------------
    def nonzero_indices(self) -> list[int]:
        return sorted(self.entries)

    def pair_at(self, k: int) -> tuple[int, int]:
        return self.entries.get(k, (0, 0))

    def is_proper(self, d: int) -> bool:
        """The paper's properness: d-sparse with all non-zero entries equal."""
        if len(self.entries) != d:
            return False
        values = set(self.entries.values())
        return len(values) == 1

    # -- algebra -------------------------------------------------------------
    def __add__(self, other: "SparseVector") -> "SparseVector":
        if other.length != self.length or other.field != self.field:
            raise ValueError("vector shape/field mismatch")
        f = self.field
        out = dict(self.entries)
        for k, (x, a) in other.entries.items():
            ox, oa = out.get(k, (0, 0))
            pair = (f.add(ox, x), f.add(oa, a))
            if pair == (0, 0):
                out.pop(k, None)
            else:
                out[k] = pair
        return SparseVector(f, self.length, out)

    def __sub__(self, other: "SparseVector") -> "SparseVector":
        # Characteristic-2 fields make this the same as addition, but we
        # stay generic via field.sub.
        if other.length != self.length or other.field != self.field:
            raise ValueError("vector shape/field mismatch")
        f = self.field
        out = dict(self.entries)
        for k, (x, a) in other.entries.items():
            ox, oa = out.get(k, (0, 0))
            pair = (f.sub(ox, x), f.sub(oa, a))
            if pair == (0, 0):
                out.pop(k, None)
            else:
                out[k] = pair
        return SparseVector(f, self.length, out)

    def is_zero(self) -> bool:
        return not self.entries

    # -- (de)serialization for VSS sharing ------------------------------------
    def component(self, which: int) -> list[int]:
        """Dense raw encodings of one half: 0 = message (x), 1 = tag (a)."""
        out = [0] * self.length
        for k, pair in self.entries.items():
            out[k] = pair[which]
        return out

    @classmethod
    def from_components(
        cls, field: Field, xs: Sequence[int], tags: Sequence[int]
    ) -> "SparseVector":
        if len(xs) != len(tags):
            raise ValueError("component length mismatch")
        entries = {
            k: (x, a)
            for k, (x, a) in enumerate(zip(xs, tags))
            if (x, a) != (0, 0)
        }
        return cls(field, len(xs), entries)


def make_dart_vector(
    field: Field,
    ell: int,
    d: int,
    message: FieldElement,
    tag: FieldElement,
    rng: random.Random,
) -> SparseVector:
    """An honest sender's dart vector: d random coordinates set to (x, a)."""
    if not 0 < d <= ell:
        raise ValueError(f"require 0 < d <= ell, got d={d}, ell={ell}")
    indices = rng.sample(range(ell), d)
    pair = (message.value, tag.value)
    if pair == (0, 0):
        raise ValueError("the tagged message must be non-zero")
    return SparseVector(field, ell, {k: pair for k in indices})


def fresh_tag(field: Field, rng: random.Random) -> FieldElement:
    """A random non-zero kappa-bit tag (Figure 1, first bullet)."""
    return field.random_nonzero(rng)
