"""Protocol AnonChan (Figure 1 of the paper).

A constant-round, unconditionally secure many-to-one anonymous channel
for ``t < n/2``, built black-box on a linear VSS scheme:

1. Every party VSS-shares (in one parallel sharing phase) its tagged
   dart vector ``v``, the re-randomized copies ``w_j``, the linking
   permutations, the copies' non-zero index lists, and a random
   challenge contribution; the receiver additionally shares one random
   permutation ``g_i`` per party.
2. The challenge ``r`` (sum of all contributions) is opened and read as
   bits.
3. Cut-and-choose (two reconstruction steps): challenge bit 0 opens the
   permutation and the difference ``pi_j(v) - w_j``; bit 1 opens the
   index list, the alleged zeros and the entry differences.  Failures
   disqualify the prover.
4. The receiver's permutations are opened; each party locally combines
   its shares of ``v = sum over PASS of g_i(v^(i))`` (VSS linearity)
   and sends them *privately* to ``P*``, who simulates VSS-Rec
   internally, thresholds at ``d/2`` occurrences, strips tags and
   outputs the multiset ``Y``.

The protocol adds **no broadcast rounds beyond those of the VSS**: all
openings use the private-channel robust reconstruction of the VSS layer
and step 4 is private by design.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field as dc_field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.fields import FieldElement
from repro.network import (
    Adversary,
    ExecutionResult,
    PassiveAdversary,
    Program,
    RoundOutput,
    parallel,
    run_protocol,
)
from repro.obs import NULL_TRACER, OpProfiler, Tracer, profiled
from repro.vss import (
    DEALER_DISQUALIFIED,
    VSSScheme,
    combine_views,
)

from .cutandchoose import (
    challenge_bits,
    stage1_slice,
    stage2_offsets_bit0,
    stage2_offsets_bit1,
    stage2_passes,
    validate_index_list_opening,
    validate_permutation_opening,
)
from .darts import Permutation, SparseVector
from .layout import (
    DealerLayout,
    ProverMaterial,
    ReceiverLayout,
    honest_material,
    step4_offsets,
)
from .params import AnonChanParams
from .receiver import (
    collect_step4_columns,
    extract_output,
    pair_opened_coordinates,
    vector_from_opened,
)
from .trace import (
    comm_bounds,
    round_schedule,
    total_broadcast_rounds,
    total_rounds,
)


@dataclass
class AnonChanOutput:
    """A party's result of one AnonChan execution.

    ``output`` (the multiset ``Y``) is populated only at the receiver;
    the bookkeeping fields let tests and experiments inspect agreement
    on disqualifications and the challenge.
    """

    pid: int
    receiver: int
    vss_qualified: frozenset[int]
    passed: frozenset[int]
    challenge: FieldElement
    output: Counter | None = None
    final_vector: SparseVector | None = None
    diagnostics: dict = dc_field(default_factory=dict)


class AnonChan:
    """One configured instance of the anonymous channel protocol."""

    def __init__(
        self, params: AnonChanParams, vss: VSSScheme, receiver: int = 0
    ):
        if vss.n != params.n or vss.t != params.t:
            raise ValueError("VSS scheme party set does not match parameters")
        if vss.field != params.field:
            raise ValueError("VSS scheme field does not match parameters")
        if not 0 <= receiver < params.n:
            raise ValueError(f"receiver {receiver} out of range")
        self.params = params
        self.vss = vss
        self.receiver = receiver
        self.layout = DealerLayout(params)
        self.receiver_layout = ReceiverLayout(params)

    # ------------------------------------------------------------------
    def party_program(
        self,
        pid: int,
        session,
        message: FieldElement | None,
        rng: random.Random,
        material: ProverMaterial | None = None,
        receiver_perms: Sequence[Permutation] | None = None,
        tracer: Tracer | None = None,
    ) -> Program:
        """Party ``pid``'s complete protocol code.

        ``material`` overrides the honest step-1 commitment (used by
        attack strategies); ``receiver_perms`` overrides the receiver's
        ``g_i`` (used by the permutation-ablation experiment).
        ``tracer`` attaches observability spans; exactly one party per
        execution should carry it (the spans describe the shared
        synchronous schedule, not per-party state), and the span names
        deliberately equal the phase labels of
        :func:`repro.core.trace.round_schedule` so observed rounds can
        be diffed against the static prediction.
        """
        params = self.params
        layout = self.layout
        rlayout = self.receiver_layout
        field = params.field
        n = params.n
        tr = tracer if tracer is not None else NULL_TRACER

        # ---- step 1: parallel VSS sharing --------------------------------
        if material is None:
            if message is None:
                raise ValueError(f"party {pid} needs a message to send")
            material = honest_material(params, message, rng)
        secrets = layout.build_secrets(material)

        with tr.span("step 1: VSS-Share", dealers=n, values=layout.total):
            subprograms: dict[Any, Program] = {
                ("deal", i): session.share_program(
                    pid,
                    i,
                    secrets if pid == i else None,
                    rng,
                    count=layout.total,
                )
                for i in range(n)
            }
            if pid == self.receiver:
                if receiver_perms is None:
                    receiver_perms = [
                        Permutation.random(params.ell, rng) for _ in range(n)
                    ]
                recv_secrets = rlayout.build_secrets(list(receiver_perms))
            else:
                recv_secrets = None
            subprograms["recv"] = session.share_program(
                pid, self.receiver, recv_secrets, rng, count=rlayout.total
            )
            batches = yield from parallel(subprograms)

        dealer_batches = {i: batches[("deal", i)] for i in range(n)}
        recv_batch = batches["recv"]
        vss_qualified = {
            i for i in range(n) if dealer_batches[i] is not DEALER_DISQUALIFIED
        }
        tr.annotate("vss-qualified", parties=sorted(vss_qualified))

        # ---- step 2: open the joint challenge ------------------------------
        with tr.span("step 2: challenge"):
            if vss_qualified:
                r_view = combine_views(
                    [
                        dealer_batches[i][layout.challenge()]
                        for i in sorted(vss_qualified)
                    ]
                )
                opened = yield from session.open_program(pid, [r_view])
                challenge = opened[0]
            else:
                yield RoundOutput.silent()
                challenge = field.zero()
        bits = challenge_bits(challenge, params.num_checks)

        # ---- step 3, stage 1: open permutations / index lists --------------
        stage1_views = []
        stage1_slices: list[tuple[int, int, int, int]] = []  # (i, j, lo, hi)
        cursor = 0
        for i in sorted(vss_qualified):
            for j in range(params.num_checks):
                # Stage-1 openings are contiguous in the dealer layout,
                # so slice the batch instead of gathering per offset.
                lo, hi = stage1_slice(layout, j, bits[j])
                views = dealer_batches[i].views[lo:hi]
                stage1_views.extend(views)
                stage1_slices.append((i, j, cursor, cursor + len(views)))
                cursor += len(views)
        with tr.span("step 3a: cut-and-choose openings", opened=cursor):
            stage1_values = yield from session.open_program(pid, stage1_views)

        passed = set(vss_qualified)
        decoded: dict[tuple[int, int], Any] = {}
        for i, j, lo, hi in stage1_slices:
            values = stage1_values[lo:hi]
            if bits[j] == 0:
                perm = validate_permutation_opening(values)
                if perm is None:
                    passed.discard(i)
                decoded[(i, j)] = perm
            else:
                idx = validate_index_list_opening(values, params.ell, params.d)
                if idx is None:
                    passed.discard(i)
                decoded[(i, j)] = idx

        # ---- step 3, stage 2: open the derived zero-combinations ------------
        # All kappa copy-checks of one prover run as a single batched
        # view-difference through the VSS layer (diff_offsets_batch):
        # per check, bit 0 contributes the 2l differences pi_j(v) - w_j
        # and bit 1 the alleged-zero passthrough offsets plus the
        # 2(d-1) consecutive-entry differences.  The blocks are spliced
        # back in the scalar plan order, so the opened-value stream (and
        # hence the trace and every disqualification decision) is
        # identical to the per-view path.
        stage2_views = []
        stage2_slices = []
        cursor = 0
        for i in sorted(passed):
            batch = dealer_batches[i]
            blocks: list[tuple[str, Any]] = []
            diff_a: list[np.ndarray] = []
            diff_b: list[np.ndarray] = []
            spans: list[tuple[int, int]] = []  # (j, view count)
            for j in range(params.num_checks):
                if bits[j] == 0:
                    offs_a, offs_b = stage2_offsets_bit0(
                        layout, j, decoded[(i, j)]
                    )
                    blocks.append(("diff", len(offs_a)))
                    diff_a.append(offs_a)
                    diff_b.append(offs_b)
                    spans.append((j, len(offs_a)))
                else:
                    passthrough, offs_a, offs_b = stage2_offsets_bit1(
                        layout, j, decoded[(i, j)]
                    )
                    blocks.append(("pass", passthrough))
                    blocks.append(("diff", len(offs_a)))
                    diff_a.append(offs_a)
                    diff_b.append(offs_b)
                    spans.append((j, len(passthrough) + len(offs_a)))
            diffs = (
                session.diff_offsets_batch(
                    batch, np.concatenate(diff_a), np.concatenate(diff_b)
                )
                if diff_a
                else []
            )
            done = 0
            for kind, payload in blocks:
                if kind == "pass":
                    stage2_views.extend(
                        batch.views[int(o)] for o in payload
                    )
                else:
                    stage2_views.extend(diffs[done : done + payload])
                    done += payload
            for j, length in spans:
                stage2_slices.append((i, j, cursor, cursor + length))
                cursor += length
        with tr.span("step 3b: cut-and-choose verification", opened=cursor):
            stage2_values = yield from session.open_program(pid, stage2_views)
        for i, j, lo, hi in stage2_slices:
            if not stage2_passes(stage2_values[lo:hi]):
                passed.discard(i)
        tr.annotate("cut-and-choose-passed", parties=sorted(passed))

        # ---- step 4: open g, combine, send privately to the receiver --------
        with tr.span("step 4a: receiver permutations"):
            if recv_batch is not DEALER_DISQUALIFIED:
                # g(i, k) = i * ell + k: the receiver batch is exactly
                # the n permutations in order, so open it as one slice.
                g_views = recv_batch.views[: rlayout.total]
                g_values = yield from session.open_program(pid, g_views)
                g_perms = []
                for i in range(n):
                    perm = validate_permutation_opening(
                        g_values[i * params.ell : (i + 1) * params.ell]
                    )
                    # A malformed g_i (only possible if the receiver cheats,
                    # in which case no guarantee involving it applies) falls
                    # back to the identity so the protocol still terminates.
                    g_perms.append(
                        perm
                        if perm is not None
                        else Permutation.identity(params.ell)
                    )
            else:
                yield RoundOutput.silent()
                g_perms = [Permutation.identity(params.ell) for _ in range(n)]

        pass_sorted = sorted(passed)
        payloads = []
        step4_views: list = []
        if pass_sorted:
            # The receiver sum over all l coordinates (both halves) in
            # one batched cross-dealer combination: view k*2 is
            # sum over PASS of vec_x(g_i(k)), view k*2+1 the tag half.
            step4_views = session.sum_offsets_batch(
                [dealer_batches[i] for i in pass_sorted],
                [step4_offsets(layout, g_perms[i]) for i in pass_sorted],
            )
            payloads = session.reveal_payloads_batch(pid, step4_views)

        if pid == self.receiver:
            with tr.span("step 4b: private transfer"):
                inbox = yield RoundOutput.silent()
            if pass_sorted:
                collected: dict[int, list] = {pid: payloads}
                collected.update(
                    collect_step4_columns(
                        inbox.private, len(payloads), pid, n
                    )
                )
                # Batched "internally simulate VSS-Rec": both halves of
                # all l coordinates are verified and recombined in one
                # call (the VSS layer's numpy fast path); corrupted
                # coordinates come back as None and zero out that
                # coordinate only.
                opened = session.reconstruct_private_batch(
                    collected,
                    count=len(payloads),
                    verifier=pid,
                    views=step4_views,
                )
                xs, tags, failed = pair_opened_coordinates(
                    field, opened, params.ell
                )
            else:
                # No prover survived cut-and-choose: nothing was dealt
                # into the final vector, so there is nothing to
                # reconstruct — any column arriving now is unsolicited.
                xs = [field.zero() for _ in range(params.ell)]
                tags = [field.zero() for _ in range(params.ell)]
                failed = 0
            final_vector = vector_from_opened(field, xs, tags)
            output = extract_output(params, final_vector)
            tr.annotate("receiver-output", failed_coordinates=failed)
            return AnonChanOutput(
                pid=pid,
                receiver=self.receiver,
                vss_qualified=frozenset(vss_qualified),
                passed=frozenset(passed),
                challenge=challenge,
                output=output,
                final_vector=final_vector,
                diagnostics={"failed_coordinates": failed},
            )

        with tr.span("step 4b: private transfer"):
            yield RoundOutput(private={self.receiver: payloads})
        return AnonChanOutput(
            pid=pid,
            receiver=self.receiver,
            vss_qualified=frozenset(vss_qualified),
            passed=frozenset(passed),
            challenge=challenge,
        )


def run_anonchan(
    params: AnonChanParams,
    vss: VSSScheme,
    messages: Mapping[int, FieldElement],
    receiver: int = 0,
    seed: int = 0,
    adversary_factory=None,
    corrupt_materials: Mapping[int, ProverMaterial] | None = None,
    receiver_perms: Sequence[Permutation] | None = None,
    count_elements: bool = True,
    tracer: Tracer | None = None,
    profiler: "OpProfiler | None" = None,
    transport: Any = None,
) -> ExecutionResult:
    """Convenience runner for one AnonChan execution.

    ``corrupt_materials`` maps party ids to malicious step-1 material;
    those parties are modeled as corrupted (they otherwise follow the
    protocol, the standard shape of AnonChan-level attacks).
    ``adversary_factory(protocol, session) -> Adversary`` supports
    arbitrary attacks.  ``tracer`` observes the execution: the runner
    emits ``run_start`` (with the statically predicted schedule) and
    ``run_end`` events, attaches the tracer's spans to the
    lowest-numbered *honest* party, and passes it to the simulator for
    per-round accounting.  ``profiler`` counts compute ops for the
    execution (installed globally and on the protocol field for the
    run's duration); its records are folded into the trace as ``prof``
    events right before ``run_end``.  ``transport`` selects the
    execution engine (a :class:`~repro.network.runtime.Transport`
    instance, a registered name, or ``None`` for the default); traces
    are transport-agnostic by design, so equivalent runs compare
    byte-identical across transports.
    """
    protocol = AnonChan(params, vss, receiver=receiver)
    session = vss.new_session(random.Random(seed ^ 0x5EED))
    if params.sharing_backend != "auto":
        # An explicit params-level backend choice overrides the VSS
        # session's default; "auto" defers to the scheme's own policy.
        configure_backend = getattr(session, "configure_backend", None)
        if configure_backend is not None:
            configure_backend(params.sharing_backend)

    def prog(pid: int, material=None, tracer: Tracer | None = None) -> Program:
        return protocol.party_program(
            pid,
            session,
            messages.get(pid),
            random.Random((seed << 16) | pid),
            material=material,
            receiver_perms=receiver_perms if pid == receiver else None,
            tracer=tracer,
        )

    adversary: Adversary | None = None
    if corrupt_materials:
        adversary = PassiveAdversary(
            set(corrupt_materials),
            {
                pid: prog(pid, material=mat)
                for pid, mat in corrupt_materials.items()
            },
        )
    elif adversary_factory is not None:
        adversary = adversary_factory(protocol, session)

    corrupted = adversary.corrupted if adversary is not None else frozenset()
    trace_owner: int | None = None
    if tracer is not None:
        honest = set(range(params.n)) - corrupted
        trace_owner = min(honest) if honest else None
        predicted = [
            {"index": r.index, "phase": r.phase,
             "uses_broadcast": r.uses_broadcast}
            for r in round_schedule(params, vss.cost)
        ]
        # Local bindings keep the (public) VSS cost constants clear of
        # RL004's secret-token heuristic inside the emission call.
        sharing_rounds = vss.cost.share_rounds
        sharing_broadcast_rounds = vss.cost.share_broadcast_rounds
        tracer.run_start(
            protocol="AnonChan",
            n=params.n,
            t=params.t,
            ell=params.ell,
            d=params.d,
            num_checks=params.num_checks,
            kappa=params.kappa,
            receiver=receiver,
            seed=seed,
            vss=vss.name,
            sharing_rounds=sharing_rounds,
            sharing_broadcast_rounds=sharing_broadcast_rounds,
            corrupted=sorted(corrupted),
            trace_owner=trace_owner,
            predicted_schedule=predicted,
            predicted_rounds=total_rounds(params, vss.cost),
            predicted_broadcast_rounds=total_broadcast_rounds(
                params, vss.cost
            ),
            predicted_comm=comm_bounds(params, vss.cost),
        )

    programs = {
        pid: prog(pid, tracer=tracer if pid == trace_owner else None)
        for pid in range(params.n)
    }

    if profiler is not None:
        if profiler.tracer is None:
            # Phase attribution needs the run's tracer; wire it up when
            # the caller did not do so explicitly.
            profiler.tracer = tracer
        with profiled(profiler, params.field):
            result = run_protocol(
                programs,
                adversary=adversary,
                count_elements=count_elements,
                tracer=tracer,
                transport=transport,
            )
        if tracer is not None:
            tracer.record_profile(profiler.records())
    else:
        result = run_protocol(
            programs,
            adversary=adversary,
            count_elements=count_elements,
            tracer=tracer,
            transport=transport,
        )
    if tracer is not None:
        tracer.run_end(
            rounds=result.metrics.rounds,
            broadcast_rounds=result.metrics.broadcast_rounds,
            broadcasts_sent=result.metrics.broadcasts_sent,
            private_messages=result.metrics.private_messages,
            field_elements_sent=result.metrics.field_elements_sent,
            makespan_ms=result.metrics.makespan_ms,
        )
    return result
