"""Receiver-side output extraction (end of step 4, Figure 1).

``P*`` reconstructs the summed, permuted dart vector ``v``, collects the
set ``T`` of non-zero pairs appearing at least ``d/2`` times, strips the
tags and outputs the multiset ``Y``.
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.fields import Field, FieldElement

from .darts import SparseVector
from .params import AnonChanParams


def extract_output(
    params: AnonChanParams, vector: SparseVector
) -> Counter:
    """The multiset ``Y`` of messages carried by the final vector.

    A pair ``(x, a) != (0, 0)`` enters ``T`` iff it appears at least
    ``ceil(d/2)`` times; each element of ``T`` contributes its message
    half ``x`` to ``Y`` once (distinct random tags keep distinct honest
    transmissions of equal messages apart, so equal messages still
    appear with the right multiplicity).
    """
    pair_counts: Counter = Counter(vector.entries.values())
    y: Counter = Counter()
    for (x, _a), count in pair_counts.items():
        if count >= params.threshold_count:
            y[x] += 1
    return y


def vector_from_opened(
    field: Field, xs: Sequence[FieldElement], tags: Sequence[FieldElement]
) -> SparseVector:
    """Assemble the receiver's reconstructed dense halves into a vector."""
    return SparseVector.from_components(
        field, [v.value for v in xs], [v.value for v in tags]
    )


def honest_input_multiset(messages: Sequence[FieldElement]) -> Counter:
    """The multiset X of honest senders' messages (for property checks)."""
    return Counter(m.value for m in messages)


def reliability_holds(x: Counter, y: Counter) -> bool:
    """The Reliability property: ``X`` is a sub-multiset of ``Y``."""
    return all(y[value] >= count for value, count in x.items())


def non_malleability_shape_holds(n: int, x: Counter, y: Counter) -> bool:
    """The checkable half of Non-Malleability: ``|Y| <= n`` and X ⊆ Y.

    (Independence of ``Y \\ X`` from ``X`` is distributional and is
    exercised statistically in the experiment suite.)
    """
    return sum(y.values()) <= n and reliability_holds(x, y)
