"""Receiver-side output extraction (end of step 4, Figure 1).

``P*`` reconstructs the summed, permuted dart vector ``v``, collects the
set ``T`` of non-zero pairs appearing at least ``d/2`` times, strips the
tags and outputs the multiset ``Y``.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Mapping, Sequence

from repro.fields import Field, FieldElement

from .darts import SparseVector
from .params import AnonChanParams


def collect_step4_columns(
    private: Mapping[int, Any], expected_len: int, receiver: int, n: int
) -> dict[int, list]:
    """Filter the receiver's step-4 inbox down to plausible share columns.

    A column is accepted only from a *known* party — an integer sender
    id in ``[0, n)`` other than the receiver itself — and only when the
    payload is a list of exactly ``expected_len`` reveal entries.  The
    sender-id filter matters once delivery leaves the ideal simulator:
    an id outside the party set must never become a row of the
    reconstruction input, where it would masquerade as a share from a
    nonexistent evaluation point.
    """
    collected: dict[int, list] = {}
    for sender, payload in private.items():
        if not isinstance(sender, int) or not (0 <= sender < n):
            continue
        if sender == receiver:
            continue
        if isinstance(payload, list) and len(payload) == expected_len:
            collected[sender] = payload
    return collected


def pair_opened_coordinates(
    field: Field, opened: Sequence[FieldElement | None], ell: int
) -> tuple[list[FieldElement], list[FieldElement], int]:
    """Split the opened step-4 batch into ``(xs, tags, failed)``.

    The batch interleaves the two halves of each coordinate:
    ``opened[2k]`` is ``x_k`` and ``opened[2k + 1]`` its tag.  A batch
    whose length is not exactly ``2 * ell`` is malformed — the VSS
    layer reports corrupted coordinates as ``None``, never by
    truncation — and raises instead of silently zeroing a trailing
    coordinate.  Each half is guarded independently; a coordinate with
    either half corrupted is zeroed (and counted) as a pair.
    """
    if len(opened) != 2 * ell:
        raise ValueError(
            f"malformed step-4 batch: expected {2 * ell} opened values "
            f"for ell={ell}, got {len(opened)}"
        )
    xs: list[FieldElement] = []
    tags: list[FieldElement] = []
    failed = 0
    for k in range(ell):
        x_val = opened[2 * k]
        tag_val = opened[2 * k + 1]
        if x_val is None or tag_val is None:
            xs.append(field.zero())
            tags.append(field.zero())
            failed += 1
        else:
            xs.append(x_val)
            tags.append(tag_val)
    return xs, tags, failed


def extract_output(
    params: AnonChanParams, vector: SparseVector
) -> Counter:
    """The multiset ``Y`` of messages carried by the final vector.

    A pair ``(x, a) != (0, 0)`` enters ``T`` iff it appears at least
    ``ceil(d/2)`` times; each element of ``T`` contributes its message
    half ``x`` to ``Y`` once (distinct random tags keep distinct honest
    transmissions of equal messages apart, so equal messages still
    appear with the right multiplicity).
    """
    pair_counts: Counter = Counter(vector.entries.values())
    y: Counter = Counter()
    for (x, _a), count in pair_counts.items():
        if count >= params.threshold_count:
            y[x] += 1
    return y


def vector_from_opened(
    field: Field, xs: Sequence[FieldElement], tags: Sequence[FieldElement]
) -> SparseVector:
    """Assemble the receiver's reconstructed dense halves into a vector."""
    return SparseVector.from_components(
        field, [v.value for v in xs], [v.value for v in tags]
    )


def honest_input_multiset(messages: Sequence[FieldElement]) -> Counter:
    """The multiset X of honest senders' messages (for property checks)."""
    return Counter(m.value for m in messages)


def reliability_holds(x: Counter, y: Counter) -> bool:
    """The Reliability property: ``X`` is a sub-multiset of ``Y``."""
    return all(y[value] >= count for value, count in x.items())


def non_malleability_shape_holds(n: int, x: Counter, y: Counter) -> bool:
    """The checkable half of Non-Malleability: ``|Y| <= n`` and X ⊆ Y.

    (Independence of ``Y \\ X`` from ``X`` is distributional and is
    exercised statistically in the experiment suite.)
    """
    return sum(y.values()) <= n and reliability_holds(x, y)
