"""AnonChan-level attack strategies.

The interesting attacks against AnonChan are *input-stage* attacks: a
corrupted prover commits to malformed step-1 material and hopes to
survive the cut-and-choose proof.  Each builder below returns a
:class:`~repro.core.layout.ProverMaterial` realizing one strategy;
:func:`~repro.core.anonchan.run_anonchan` plugs them into otherwise
protocol-following corrupted parties.

Strategy catalogue (experiment E4/E5):

- :func:`guessing_cheater_material` — the *optimal* cheater against the
  proof: commits an improper ``v`` and, for each check ``j``, guesses
  the challenge bit, preparing ``w_j`` to pass that branch only.  It
  survives iff every guess is right: probability exactly
  ``2^-num_checks`` (Claim 1's bound, tight).
- :func:`jamming_material` — a dense random vector (the classic DC-net
  jammer): destroys all honest messages *if* it enters the sum.
- :func:`targeted_material` — a *proper* vector at adversary-chosen
  indices: passes the proof by design; with the receiver permutations
  ``g_i`` its placement is re-randomized (E9 shows what breaks
  without them).
- :func:`zero_material` — the all-zero vector: passes the proof (both
  branches open only zeros) and contributes nothing; included to pin
  down the boundary of what "improper" means operationally.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.fields import FieldElement

from .darts import Permutation, SparseVector, fresh_tag
from .layout import ProverMaterial
from .params import AnonChanParams


def _material_from_vector(
    params: AnonChanParams,
    vector: SparseVector,
    rng: random.Random,
    bit_guesses: Sequence[int] | None = None,
    proper_decoy: SparseVector | None = None,
) -> ProverMaterial:
    """Assemble step-1 material around an arbitrary committed vector.

    Without ``bit_guesses`` the copies are honest permutations of
    ``vector`` (the prover "hopes for challenge bit 0 everywhere").
    With guesses, check ``j`` is prepared to pass branch
    ``bit_guesses[j]`` only: branch 0 via a consistent permutation of
    ``vector``, branch 1 via a proper decoy vector with a truthful
    index list.
    """
    field = params.field
    # Drawn before the per-check material so that two strategies built
    # from the same seed contribute the same challenge share (tests and
    # experiments rely on this to pin the challenge bits).
    challenge_share = field.random(rng)
    perms, ws, idx_lists = [], [], []
    for j in range(params.num_checks):
        perm = Permutation.random(params.ell, rng)
        guess = 0 if bit_guesses is None else bit_guesses[j]
        if guess == 0:
            w = perm.apply(vector)
            idx = w.nonzero_indices()
            # The index list must be *syntactically* valid (d entries);
            # pad/trim deterministically — it is only opened on bit 1,
            # which this strategy bets against.
            idx = _pad_index_list(idx, params, rng)
        else:
            w = proper_decoy if proper_decoy is not None else _proper_decoy(params, rng)
            w = Permutation.random(params.ell, rng).apply(w)
            idx = w.nonzero_indices()
        perms.append(perm)
        ws.append(w)
        idx_lists.append(idx)
    return ProverMaterial(
        vector=vector,
        perms=perms,
        ws=ws,
        index_lists=idx_lists,
        challenge_share=challenge_share,
    )


def _pad_index_list(
    idx: list[int], params: AnonChanParams, rng: random.Random
) -> list[int]:
    """Force an index list to the mandatory length d (distinct, sorted)."""
    chosen = set(idx[: params.d])
    pool = iter(range(params.ell))
    while len(chosen) < params.d:
        candidate = next(pool)
        chosen.add(candidate)
    return sorted(chosen)[: params.d]


def _proper_decoy(params: AnonChanParams, rng: random.Random) -> SparseVector:
    """A fresh proper vector (for the bit-1 branch of a guessing cheater)."""
    field = params.field
    pair = (field.random_nonzero(rng).value, fresh_tag(field, rng).value)
    indices = rng.sample(range(params.ell), params.d)
    return SparseVector(field, params.ell, {k: pair for k in indices})


# -- concrete strategies ----------------------------------------------------


def improper_vector(
    params: AnonChanParams,
    messages: Sequence[FieldElement],
    rng: random.Random,
) -> SparseVector:
    """A d-sparse vector carrying *several distinct* tagged messages.

    This is the canonical improper commitment: if it survived, the
    cheater would inject more than one message (breaking ``|Y| <= n``).
    """
    field = params.field
    if len(messages) < 2:
        raise ValueError("an improper vector needs at least two messages")
    indices = rng.sample(range(params.ell), params.d)
    entries = {}
    for pos, k in enumerate(indices):
        msg = messages[pos % len(messages)]
        entries[k] = (msg.value, fresh_tag(field, rng).value)
    return SparseVector(field, params.ell, entries)


def guessing_cheater_material(
    params: AnonChanParams,
    messages: Sequence[FieldElement],
    rng: random.Random,
    bit_guesses: Sequence[int] | None = None,
) -> ProverMaterial:
    """The optimal improper-vector cheater (survives w.p. 2^-num_checks).

    ``bit_guesses`` defaults to uniformly random guesses.
    """
    if bit_guesses is None:
        bit_guesses = [rng.randrange(2) for _ in range(params.num_checks)]
    vector = improper_vector(params, messages, rng)
    return _material_from_vector(params, vector, rng, bit_guesses=bit_guesses)


def jamming_material(
    params: AnonChanParams, rng: random.Random, density: float = 1.0
) -> ProverMaterial:
    """A dense random vector (DC-net jamming).

    Prepared to pass the bit-0 branch only (the copies are consistent
    permutations); every bit-1 check catches it, so it survives w.p.
    ``2^-num_checks``.
    """
    field = params.field
    ell = params.ell
    count = max(params.d + 1, int(ell * density))
    indices = rng.sample(range(ell), min(count, ell))
    entries = {
        k: (field.random(rng).value, field.random(rng).value) for k in indices
    }
    vector = SparseVector(field, ell, entries)
    return _material_from_vector(params, vector, rng)


def targeted_material(
    params: AnonChanParams,
    message: FieldElement,
    indices: Sequence[int],
    rng: random.Random,
    tag: FieldElement | None = None,
) -> ProverMaterial:
    """A *proper* vector at adversary-chosen indices (passes the proof).

    Used by the E9 ablation: without the receiver's permutations
    ``g_i``, these indices survive into the final sum exactly where the
    adversary put them.
    """
    field = params.field
    if len(set(indices)) != params.d:
        raise ValueError(f"need exactly d={params.d} distinct indices")
    if tag is None:
        tag = fresh_tag(field, rng)
    pair = (message.value, tag.value)
    vector = SparseVector(params.field, params.ell, {k: pair for k in indices})
    return _material_from_vector(params, vector, rng)


def zero_material(params: AnonChanParams, rng: random.Random) -> ProverMaterial:
    """The all-zero vector: passes both branches, contributes nothing."""
    vector = SparseVector(params.field, params.ell, {})
    field = params.field
    perms = [Permutation.random(params.ell, rng) for _ in range(params.num_checks)]
    ws = [p.apply(vector) for p in perms]
    idx_lists = [sorted(rng.sample(range(params.ell), params.d)) for _ in ws]
    return ProverMaterial(
        vector=vector,
        perms=perms,
        ws=ws,
        index_lists=idx_lists,
        challenge_share=field.random(rng),
    )


def dependent_input_material(
    params: AnonChanParams,
    copy_of: FieldElement,
    rng: random.Random,
) -> ProverMaterial:
    """A proper vector replaying a *known* message value with a fresh tag.

    Models the malleability probe: the adversary may always send a
    message equal to a value it knows, but (by VSS independence of
    inputs) never one correlated with an *unknown* honest input; the
    non-malleability experiment checks the latter statistically.
    """
    field = params.field
    indices = rng.sample(range(params.ell), params.d)
    pair = (copy_of.value, fresh_tag(field, rng).value)
    vector = SparseVector(field, params.ell, {k: pair for k in indices})
    return _material_from_vector(params, vector, rng)
