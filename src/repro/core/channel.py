"""High-level facade: the anonymous channel as a one-call service.

:class:`AnonymousChannel` bundles parameter selection, VSS choice and
execution into the API a downstream user wants::

    from repro.core import AnonymousChannel

    chan = AnonymousChannel(n=5)
    report = chan.send({0: 10, 1: 20, 2: 20, 3: 30, 4: 40})
    report.delivered       # Counter({20: 2, 10: 1, 30: 1, 40: 1})
    report.rounds          # r_VSS-share + 5
    report.broadcast_rounds  # 2 with the default GGOR13 profile

The lower-level pieces (:class:`~repro.core.anonchan.AnonChan`,
:mod:`repro.vss`) stay available for experiments that need them.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.obs import Tracer
from repro.vss import GGOR13_COST, BGWVSS, IdealVSS, VSSScheme

from .adversaries import (
    guessing_cheater_material,
    jamming_material,
    zero_material,
)
from .anonchan import run_anonchan
from .layout import ProverMaterial
from .params import AnonChanParams, scaled_parameters


@dataclass
class TransmissionReport:
    """Outcome of one anonymous transmission."""

    delivered: Counter
    disqualified: frozenset[int]
    rounds: int
    broadcast_rounds: int
    messages_sent: int
    field_elements: int

    def received(self, value: int) -> int:
        """How many copies of ``value`` the receiver got."""
        return self.delivered.get(value, 0)


class AnonymousChannel:
    """A configured many-to-one anonymous channel, ready to send.

    Parameters
    ----------
    n:
        Number of parties.
    t:
        Corruption bound; defaults to the maximum ``ceil(n/2) - 1``.
    receiver:
        The designated receiver ``P*`` (default: party 0).
    vss:
        ``"ideal-ggor13"`` (default: ideal functionality with the
        GGOR13 cost profile — 2 broadcast rounds), ``"ideal"`` (minimal
        profile), ``"bgw"`` (fully executable perfect VSS; requires
        ``t < n/3``), or any :class:`~repro.vss.VSSScheme` instance.
    params:
        Explicit :class:`AnonChanParams`; default: scaled parameters
        sized for interactive use.
    """

    def __init__(
        self,
        n: int,
        t: int | None = None,
        receiver: int = 0,
        vss: str | VSSScheme = "ideal-ggor13",
        params: AnonChanParams | None = None,
    ):
        if params is None:
            params = scaled_parameters(n=n, t=t, d=8, num_checks=6, kappa=16)
        self.params = params
        self.receiver = receiver
        if isinstance(vss, VSSScheme):
            self.vss = vss
        elif vss == "ideal-ggor13":
            self.vss = IdealVSS(
                params.field, params.n, params.t, cost=GGOR13_COST
            )
        elif vss == "ideal":
            self.vss = IdealVSS(params.field, params.n, params.t)
        elif vss == "bgw":
            self.vss = BGWVSS(params.field, params.n, params.t)
        else:
            raise ValueError(f"unknown VSS selector {vss!r}")

    def send(
        self,
        messages: Mapping[int, int],
        seed: int = 0,
        corrupt_materials: Mapping[int, ProverMaterial] | None = None,
        tracer: Tracer | None = None,
    ) -> TransmissionReport:
        """Run one channel execution and return the receiver's view.

        ``messages`` maps every party id to its (non-zero) message,
        given as plain ints; ``corrupt_materials`` optionally replaces
        some parties' step-1 commitments with attack strategies from
        :mod:`repro.core.adversaries`; ``tracer`` (a
        :class:`repro.obs.Tracer`) records the span/round event stream
        of the execution.
        """
        params = self.params
        field = params.field
        if set(messages) != set(range(params.n)):
            raise ValueError(
                f"need a message for every party 0..{params.n - 1}"
            )
        encoded = {pid: field(value) for pid, value in messages.items()}
        for pid, element in encoded.items():
            if not element and (
                corrupt_materials is None or pid not in corrupt_materials
            ):
                raise ValueError(
                    f"party {pid}'s message encodes to zero; the protocol "
                    "requires non-zero messages"
                )
        result = run_anonchan(
            params,
            self.vss,
            encoded,
            receiver=self.receiver,
            seed=seed,
            corrupt_materials=corrupt_materials,
            tracer=tracer,
        )
        out = result.outputs.get(self.receiver)
        if out is None or out.output is None:
            raise RuntimeError("receiver produced no output")
        return TransmissionReport(
            delivered=Counter(out.output),
            disqualified=frozenset(range(params.n)) - out.passed,
            rounds=result.metrics.rounds,
            broadcast_rounds=result.metrics.broadcast_rounds,
            messages_sent=result.metrics.private_messages,
            field_elements=result.metrics.field_elements_sent,
        )

    # -- canned attacks (convenience for demos and tests) -----------------
    def jamming_attack(self, pid: int, seed: int = 0) -> dict[int, ProverMaterial]:
        """Corrupt ``pid`` with the dense-vector jamming strategy."""
        return {pid: jamming_material(self.params, random.Random(seed))}

    def ballot_stuffing_attack(
        self, pid: int, values: list[int], seed: int = 0
    ) -> dict[int, ProverMaterial]:
        """Corrupt ``pid`` with a multi-message improper vector."""
        field = self.params.field
        return {
            pid: guessing_cheater_material(
                self.params, [field(v) for v in values], random.Random(seed)
            )
        }

    def abstain(self, pid: int, seed: int = 0) -> dict[int, ProverMaterial]:
        """Corrupt ``pid`` with the harmless all-zero vector."""
        return {pid: zero_material(self.params, random.Random(seed))}
