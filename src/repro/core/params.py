"""Parameter selection for protocol AnonChan.

The proof of Theorem 1 (via Claim 2) chooses, for error parameter
``kappa >= 2n``::

    C = 1 / (4 n^2),    d = n^4 kappa,    l = 4 n^6 kappa

so that ``n^2 (d^2/l + C d) = d/2`` (fewer than d/2 total collisions
w.h.p.) and ``C^2 d = kappa/16`` (the tail is ``2^-Omega(kappa)``).
These formulas are provided verbatim by :func:`paper_parameters`.

They are asymptotic: already for n = 5, kappa = 10 they give l =
625,000 coordinate pairs, each VSS-shared ~kappa times — far beyond
in-process simulation (and never executed by the authors either; the
paper has no implementation).  :func:`scaled_parameters` solves the
same two structural constraints at laptop scale:

- **collision budget** — the expected number of collisions hitting any
  one honest sender's d darts is at most ``(n-1) d^2 / l``; we require
  a margin factor so at least d/2 darts survive w.h.p. (this is the
  per-party specialization of Claim 2's total-collision budget), and
- **cut-and-choose soundness** — ``num_checks`` challenge bits give a
  cheater survival probability of ``2^-num_checks`` (Claim 1).

Every experiment reports which parameterization it ran.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fields import VECTOR_BACKEND_MODES, GF2k, gf2k


@dataclass(frozen=True)
class AnonChanParams:
    """Concrete parameters of one AnonChan instance.

    Attributes
    ----------
    n:
        Number of parties.
    t:
        Corruption bound, ``t < n/2``.
    kappa:
        Field degree: computations happen in ``GF(2^kappa)``; tags are
        ``kappa``-bit.  The paper requires ``kappa >= 2n`` (so the
        challenge has enough bits and tag collisions are negligible).
    ell:
        Dart-vector length (paper: ``4 n^6 kappa``).
    d:
        Sparseness — number of darts per sender (paper: ``n^4 kappa``).
    num_checks:
        Number of re-randomized copies ``w_j`` per prover == number of
        challenge bits consumed (paper: ``kappa``).
    sharing_backend:
        Batch-kernel policy of the sharing/VSS layer: ``"auto"``
        (default) uses the numpy kernels for large batches when the
        field supports them, ``"vectorized"`` requires them,
        ``"scalar"`` forces the pure-Python reference path.  Purely an
        execution-speed knob — every backend produces identical
        protocol behavior (asserted by tests).
    """

    n: int
    t: int
    kappa: int
    ell: int
    d: int
    num_checks: int
    sharing_backend: str = "auto"

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ValueError("need at least two parties")
        if self.t < 0 or 2 * self.t >= self.n:
            raise ValueError(f"require t < n/2, got n={self.n}, t={self.t}")
        if not 0 < self.d <= self.ell:
            raise ValueError(f"require 0 < d <= ell, got d={self.d}, ell={self.ell}")
        if self.num_checks < 1:
            raise ValueError("need at least one cut-and-choose check")
        if self.kappa < self.num_checks:
            raise ValueError(
                "challenge needs kappa >= num_checks bits "
                f"(kappa={self.kappa}, num_checks={self.num_checks})"
            )
        if (1 << self.kappa) <= max(self.n, self.ell):
            raise ValueError("field too small for party count / vector length")
        if self.sharing_backend not in VECTOR_BACKEND_MODES:
            raise ValueError(
                f"unknown sharing backend {self.sharing_backend!r}, "
                f"expected one of {VECTOR_BACKEND_MODES}"
            )

    @property
    def field(self) -> GF2k:
        """The protocol field ``GF(2^kappa)``."""
        return gf2k(self.kappa)

    @property
    def threshold_count(self) -> int:
        """Minimum occurrences for a pair to enter T: ``ceil(d/2)``."""
        return (self.d + 1) // 2

    @property
    def values_per_dealer(self) -> int:
        """VSS sharings per dealer (coordinates count x- and tag-halves)."""
        return 2 * self.ell + self.num_checks * (3 * self.ell + self.d) + 1

    @property
    def values_receiver(self) -> int:
        """Extra VSS sharings by the receiver (its n permutations)."""
        return self.n * self.ell

    def meets_paper_constraints(self) -> bool:
        """Whether Claim 2's *total*-collision constraint holds.

        Checks ``n^2 (d^2/l + C d) <= d/2`` with the paper's
        ``C = 1/(4 n^2)``; the scaled parameters intentionally satisfy
        only the per-party collision budget, so they return ``False``.
        """
        c = 1.0 / (4 * self.n**2)
        return self.n**2 * (self.d**2 / self.ell + c * self.d) <= self.d / 2

    def expected_collisions_per_party(self) -> float:
        """E[darts of one sender hit by any other sender]: (n-1) d^2 / l."""
        return (self.n - 1) * self.d**2 / self.ell

    def cheater_survival_bound(self) -> float:
        """Claim 1 bound: an improper vector survives w.p. 2^-num_checks."""
        return 2.0 ** (-self.num_checks)


def paper_parameters(
    n: int,
    t: int | None = None,
    kappa: int | None = None,
    sharing_backend: str = "auto",
) -> AnonChanParams:
    """The exact parameters from the proof of Theorem 1.

    ``kappa`` defaults to the paper's minimum ``2n``, *raised if needed*
    so that ``2^kappa > l``: the protocol shares permutations and index
    lists over ``[l]`` as field elements, which the paper's minimal
    ``kappa = 2n`` cannot encode for small ``n`` (``l = 4 n^6 kappa``
    exceeds ``2^{2n}`` up to ``n ~ 24``).  This only ever *increases*
    the error parameter, so every stated guarantee still holds.
    ``t`` defaults to the maximum tolerable ``ceil(n/2) - 1``.
    """
    if t is None:
        t = (n - 1) // 2
    if kappa is None:
        kappa = 2 * n
        while (1 << kappa) <= 4 * n**6 * kappa:
            kappa += 1
    return AnonChanParams(
        n=n,
        t=t,
        kappa=kappa,
        ell=4 * n**6 * kappa,
        d=n**4 * kappa,
        num_checks=kappa,
        sharing_backend=sharing_backend,
    )


def scaled_parameters(
    n: int,
    t: int | None = None,
    d: int = 8,
    num_checks: int = 6,
    kappa: int = 16,
    margin: int = 8,
    sharing_backend: str = "auto",
) -> AnonChanParams:
    """Laptop-scale parameters preserving the guarantees' structure.

    ``l`` is chosen as ``margin * (n-1) * d`` so the expected number of
    collisions hitting one sender's darts is ``d / margin`` — far below
    the ``d/2`` budget — mirroring the paper's choice which makes the
    same expectation ``d/(4 n^2) + (small)``.
    """
    if t is None:
        t = (n - 1) // 2
    ell = max(margin * max(n - 1, 1) * d, d + 1)
    return AnonChanParams(
        n=n,
        t=t,
        kappa=kappa,
        ell=ell,
        d=d,
        num_checks=num_checks,
        sharing_backend=sharing_backend,
    )


def reliability_failure_bound(params: AnonChanParams) -> float:
    """Union-style upper bound on the reliability error.

    Sums (a) the per-party probability that more than d/2 darts are hit,
    bounded by the hypergeometric tail of Claim 2 applied per party, and
    (b) tag-collision probability ``n^2 / 2^kappa``.
    """
    from repro.analysis.hypergeometric import collision_tail_bound

    per_party = collision_tail_bound(
        n=params.n, d=params.d, ell=params.ell, budget=params.d / 2
    )
    tag_collisions = params.n**2 / (2**params.kappa)
    return min(1.0, params.n * per_party + tag_collisions)
