"""Parallel composition of AnonChan instances (paper §2 and §4).

The security definition requires the channel's properties "under
parallel composition", and the pseudosignature setup runs "many
sessions in parallel" with every party acting as receiver.  Because
party code is generator *programs* and rounds are multiplexed by
:func:`repro.network.parallel`, running ``k`` full AnonChan instances
concurrently costs exactly the rounds of **one** instance — this module
wires that up and :mod:`tests.core.test_parallel_channels` measures it.
"""

from __future__ import annotations

import random
import zlib
from typing import Mapping

from repro.fields import FieldElement
from repro.network import ExecutionResult, parallel, run_protocol
from repro.vss import VSSScheme

from .anonchan import AnonChan
from .params import AnonChanParams


def run_parallel_channels(
    params: AnonChanParams,
    vss: VSSScheme,
    sessions: Mapping[object, tuple[int, Mapping[int, FieldElement]]],
    seed: int = 0,
    adversary=None,
    count_elements: bool = True,
) -> ExecutionResult:
    """Run several complete AnonChan instances in the same rounds.

    ``sessions`` maps a session label to ``(receiver, messages)``; each
    session is an independent channel execution (fresh tags, fresh
    darts, its own receiver).  All instances share one VSS session
    object — exactly like the paper's single parallel VSS-Share phase —
    and the total round count equals a single instance's.

    Each honest party's output is a dict: label -> AnonChanOutput.
    """
    if not sessions:
        raise ValueError("need at least one session")
    protocols = {
        label: AnonChan(params, vss, receiver=receiver)
        for label, (receiver, _msgs) in sessions.items()
    }
    vss_session = vss.new_session(random.Random(seed ^ 0xC0FFEE))

    def party(pid: int):
        return parallel(
            {
                label: protocols[label].party_program(
                    pid,
                    vss_session,
                    sessions[label][1].get(pid),
                    random.Random(
                        (seed << 20)
                        ^ zlib.crc32(repr(label).encode())
                        ^ (pid << 40)
                    ),
                )
                for label in sessions
            }
        )

    programs = {pid: party(pid) for pid in range(params.n)}
    return run_protocol(
        programs, adversary=adversary, count_elements=count_elements
    )
