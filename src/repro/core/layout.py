"""Flat layout of each dealer's VSS batch in protocol AnonChan.

Step 1 of the protocol has each prover VSS-share, in parallel: every
coordinate of ``v`` and of the ``w_j``'s (two field elements each — the
message half and the tag half), each permutation ``pi_j``, each
``w_j``'s list of non-zero indices, and one random challenge
contribution ``r``.  Batching them as *one* flat vector of secrets per
dealer keeps the whole of step 1 to a single parallel VSS-Share phase.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.fields import FieldElement

from .darts import Permutation, SparseVector, fresh_tag, make_dart_vector
from .params import AnonChanParams


@dataclass
class ProverMaterial:
    """Everything a prover commits to in step 1.

    ``ws[j]`` is ``v`` permuted by ``perms[j]`` for an honest prover;
    cheating strategies may populate these fields differently (that is
    exactly what the cut-and-choose proof is designed to catch).
    """

    vector: SparseVector
    perms: list[Permutation]
    ws: list[SparseVector]
    index_lists: list[list[int]]
    challenge_share: FieldElement

    def validate_shape(self, params: AnonChanParams) -> None:
        """Check the material has the protocol-mandated shape."""
        if self.vector.length != params.ell:
            raise ValueError("vector length mismatch")
        for seq in (self.perms, self.ws, self.index_lists):
            if len(seq) != params.num_checks:
                raise ValueError("need one w/perm/index-list per check")
        for w in self.ws:
            if w.length != params.ell:
                raise ValueError("w length mismatch")
        for idx in self.index_lists:
            if len(idx) != params.d:
                raise ValueError("index lists must have length d")


def honest_material(
    params: AnonChanParams, message: FieldElement, rng: random.Random
) -> ProverMaterial:
    """Figure 1, step 1, honest prover: random tag, darts, permuted copies."""
    field = params.field
    tag = fresh_tag(field, rng)
    vector = make_dart_vector(field, params.ell, params.d, message, tag, rng)
    perms = [
        Permutation.random(params.ell, rng) for _ in range(params.num_checks)
    ]
    ws = [p.apply(vector) for p in perms]
    index_lists = [w.nonzero_indices() for w in ws]
    return ProverMaterial(
        vector=vector,
        perms=perms,
        ws=ws,
        index_lists=index_lists,
        challenge_share=field.random(rng),
    )


class DealerLayout:
    """Offsets of every shared value within a dealer's flat batch."""

    def __init__(self, params: AnonChanParams):
        self.params = params
        self.ell = params.ell
        self.d = params.d
        self.num_checks = params.num_checks
        self._per_check = 3 * self.ell + self.d
        self.total = 2 * self.ell + params.num_checks * self._per_check + 1

    # -- offset accessors ---------------------------------------------------
    def vec_x(self, k: int) -> int:
        """Message half of coordinate k of v."""
        return k

    def vec_a(self, k: int) -> int:
        """Tag half of coordinate k of v."""
        return self.ell + k

    def _check_base(self, j: int) -> int:
        return 2 * self.ell + j * self._per_check

    def w_x(self, j: int, k: int) -> int:
        """Message half of coordinate k of w_j."""
        return self._check_base(j) + k

    def w_a(self, j: int, k: int) -> int:
        """Tag half of coordinate k of w_j."""
        return self._check_base(j) + self.ell + k

    def perm(self, j: int, k: int) -> int:
        """Image pi_j(k), encoded as a field element."""
        return self._check_base(j) + 2 * self.ell + k

    def idx(self, j: int, m: int) -> int:
        """m-th entry of w_j's non-zero index list (ascending)."""
        return self._check_base(j) + 3 * self.ell + m

    def challenge(self) -> int:
        """The dealer's random challenge contribution r^(i)."""
        return self.total - 1

    # -- serialization ------------------------------------------------------
    def build_secrets(self, material: ProverMaterial) -> list[FieldElement]:
        """Flatten prover material into the batch of secrets to share."""
        material.validate_shape(self.params)
        field = self.params.field
        out = [0] * self.total
        for k, x in enumerate(material.vector.component(0)):
            out[self.vec_x(k)] = x
        for k, a in enumerate(material.vector.component(1)):
            out[self.vec_a(k)] = a
        for j in range(self.num_checks):
            for k, x in enumerate(material.ws[j].component(0)):
                out[self.w_x(j, k)] = x
            for k, a in enumerate(material.ws[j].component(1)):
                out[self.w_a(j, k)] = a
            for k, image in enumerate(material.perms[j].mapping):
                out[self.perm(j, k)] = image
            for m, index in enumerate(material.index_lists[j]):
                out[self.idx(j, m)] = index
        out[self.challenge()] = material.challenge_share.value
        return [field(v) for v in out]


def step4_offsets(layout: DealerLayout, perm: Permutation) -> np.ndarray:
    """Offsets of one prover's permuted vector for the step-4 sum.

    Interleaved ``(vec_x(g(k)), vec_a(g(k)))`` per coordinate ``k`` —
    the per-prover offset column of the receiver sum
    ``v = sum over PASS of g_i(v^(i))``, consumed by the VSS layer's
    ``sum_offsets_batch``.
    """
    src = np.asarray(perm.mapping, dtype=np.int64)
    out = np.empty(2 * src.size, dtype=np.int64)
    out[0::2] = src  # vec_x(g(k))
    out[1::2] = layout.ell + src  # vec_a(g(k))
    return out


class ReceiverLayout:
    """Offsets of the receiver's extra batch: its n permutations g_i."""

    def __init__(self, params: AnonChanParams):
        self.params = params
        self.ell = params.ell
        self.total = params.n * params.ell

    def g(self, i: int, k: int) -> int:
        """Image g_i(k), encoded as a field element."""
        return i * self.ell + k

    def build_secrets(self, perms: list[Permutation]) -> list[FieldElement]:
        if len(perms) != self.params.n:
            raise ValueError("need one permutation per party")
        field = self.params.field
        out = []
        for p in perms:
            if len(p) != self.ell:
                raise ValueError("permutation length mismatch")
            out.extend(field(v) for v in p.mapping)
        return out
