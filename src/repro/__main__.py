"""Command-line interface: ``python -m repro <command>``.

Commands
--------
demo
    Run one anonymous transmission (optionally with a jammer) and print
    the receiver's multiset.
schedule
    Print the round-by-round schedule for a parameter set/VSS profile.
rounds
    Print the round-complexity comparison table (experiment E1).
params
    Show paper-exact vs scaled parameters for a given n.
trace-run
    Run one instrumented execution (see :mod:`repro.obs`), print the
    run report, and optionally export the JSONL event stream.
profile-run
    Like trace-run, but with the compute-layer op profiler attached
    (see :mod:`repro.obs.profiler`): the exported trace carries schema-v2
    ``prof`` events and ``--flamegraph`` writes collapsed-stack lines.
report
    Validate and render a previously exported JSONL trace; ``--comm``
    adds the per-link communication report (see :mod:`repro.obs.comm`),
    ``--timing`` the virtual-time report — makespan, stragglers,
    critical path, predicted-vs-observed diff (:mod:`repro.obs.timing`).
timeline
    Export a schema-v4 trace as a Chrome trace-event JSON timeline,
    loadable in Perfetto / ``chrome://tracing``
    (see :mod:`repro.obs.timeline`).
obs-check
    Run the anomaly watchdog over an exported trace: stalled rounds,
    disqualification storms, comm hotspots, causal-order violations,
    and — on v4 traces — timing-causality violations, slow rounds, and
    critical-path domination (see :mod:`repro.obs.anomaly`); exits 1 on
    any finding.  ``--timing`` additionally *requires* virtual-time
    stamps, so a pre-v4 trace fails instead of passing vacuously.
dashboard
    Render the self-contained HTML telemetry dashboard from campaign
    reports, telemetry stores, BENCH history, and traces
    (see :mod:`repro.obs.dashboard`).
flamegraph
    Convert an exported trace's ``prof`` events to collapsed-stack
    lines for standard flamegraph renderers.
bench-check
    Compare current ``BENCH_*.json`` payloads against committed
    baselines and exit non-zero on perf regressions
    (see :mod:`repro.obs.bench`).
conformance
    Run a protocol-conformance campaign: seed-swept adversarial
    configurations checked against the paper's invariants, with
    automatic shrinking of violations (see :mod:`repro.testkit`).
lint
    Run the protocol-aware static analyzer (see :mod:`repro.lint`).
flowcheck
    ``lint --flow``: the whole-program secret-taint, call-graph
    layering, and concurrency-readiness passes (see
    :mod:`repro.lint.flow`).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core import AnonymousChannel

    chan = AnonymousChannel(n=args.n)
    messages = {i: 100 + i for i in range(args.n)}
    corrupt = chan.jamming_attack(args.n - 1, seed=7) if args.jam else None
    report = chan.send(messages, seed=args.seed, corrupt_materials=corrupt)
    print(f"n={args.n}, t={chan.params.t}, receiver=P0"
          + (", jammer=P" + str(args.n - 1) if args.jam else ""))
    print(f"rounds: {report.rounds}   broadcast rounds: {report.broadcast_rounds}")
    if report.disqualified:
        print(f"disqualified: {sorted(report.disqualified)}")
    print("receiver's multiset Y:")
    for value, count in sorted(report.delivered.items()):
        print(f"  {value}  x{count}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.core import scaled_parameters
    from repro.core.trace import format_schedule
    from repro.vss import PROFILES

    profile = PROFILES[args.vss]
    params = scaled_parameters(n=args.n)
    print(format_schedule(params, profile.cost))
    return 0


def _cmd_rounds(args: argparse.Namespace) -> int:
    from repro.analysis import comparison_table

    print(f"{'n':>4}  {'protocol':<22} {'rounds':>7}  notes")
    for n in (5, 9, 13, 21, 31):
        for est in comparison_table(n):
            print(f"{n:>4}  {est.protocol:<22} {est.rounds:>7}  {est.note}")
    return 0


def _cmd_params(args: argparse.Namespace) -> int:
    from repro.core import paper_parameters, scaled_parameters

    paper = paper_parameters(args.n)
    scaled = scaled_parameters(args.n)
    print(f"{'':<14}{'paper-exact':>16} {'scaled':>10}")
    for name in ("kappa", "d", "ell", "num_checks"):
        print(f"{name:<14}{getattr(paper, name):>16,} "
              f"{getattr(scaled, name):>10,}")
    print(f"{'VSS sharings':<14}"
          f"{paper.values_per_dealer * paper.n + paper.values_receiver:>16,} "
          f"{scaled.values_per_dealer * scaled.n + scaled.values_receiver:>10,}")
    return 0


def _cmd_trace_run(args: argparse.Namespace) -> int:
    from repro.core import run_anonchan, scaled_parameters
    from repro.core.adversaries import jamming_material
    from repro.obs import RunReport, Tracer, write_jsonl
    from repro.vss import PROFILES, IdealVSS

    import random

    params = scaled_parameters(n=args.n)
    profile = PROFILES[args.vss]
    vss = IdealVSS(params.field, params.n, params.t, cost=profile.cost)
    messages = {i: params.field(100 + i) for i in range(args.n)}
    corrupt = None
    if args.jam:
        corrupt = {
            args.n - 1: jamming_material(params, random.Random(args.seed))
        }
    transport = args.transport
    if args.latency_ms or args.jitter_ms:
        if args.transport == "lockstep":
            print("trace-run: --latency-ms/--jitter-ms need the async "
                  "transport (drop --transport lockstep)", file=sys.stderr)
            return 2
        from repro.network.runtime import InMemoryAsyncTransport
        from repro.network.runtime.models import FixedLatency, UniformLatency

        latency = (
            UniformLatency(base_ms=args.latency_ms, jitter_ms=args.jitter_ms)
            if args.jitter_ms
            else FixedLatency(base_ms=args.latency_ms)
        )
        transport = InMemoryAsyncTransport(latency=latency, seed=args.seed)
    tracer = Tracer()
    run_anonchan(
        params,
        vss,
        messages,
        seed=args.seed,
        corrupt_materials=corrupt,
        tracer=tracer,
        transport=transport,
    )
    report = RunReport.from_events(tracer.events)
    if args.out:
        count = write_jsonl(tracer.events, args.out)
        print(f"wrote {count} events to {args.out}", file=sys.stderr)
    if args.json:
        print(report.to_json())
    else:
        print(report.render_text())
    return 0 if report.matches_prediction else 1


def _cmd_profile_run(args: argparse.Namespace) -> int:
    from repro.core import run_anonchan, scaled_parameters
    from repro.core.adversaries import jamming_material
    from repro.obs import (
        OpProfiler,
        RunReport,
        Tracer,
        write_flamegraph,
        write_jsonl,
    )
    from repro.vss import PROFILES, IdealVSS

    import random

    params = scaled_parameters(n=args.n)
    profile = PROFILES[args.vss]
    vss = IdealVSS(params.field, params.n, params.t, cost=profile.cost)
    messages = {i: params.field(100 + i) for i in range(args.n)}
    corrupt = None
    if args.jam:
        corrupt = {
            args.n - 1: jamming_material(params, random.Random(args.seed))
        }
    tracer = Tracer()
    profiler = OpProfiler(tracer)
    run_anonchan(
        params,
        vss,
        messages,
        seed=args.seed,
        corrupt_materials=corrupt,
        tracer=tracer,
        profiler=profiler,
    )
    report = RunReport.from_events(tracer.events)
    if args.out:
        count = write_jsonl(tracer.events, args.out)
        print(f"wrote {count} events to {args.out}", file=sys.stderr)
    if args.flamegraph:
        count = write_flamegraph(profiler.records(), args.flamegraph)
        print(
            f"wrote {count} collapsed-stack lines to {args.flamegraph}",
            file=sys.stderr,
        )
    if args.json:
        print(report.to_json())
    else:
        print(report.render_text())
    return 0 if report.matches_prediction else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs import CommReport, RunReport, read_jsonl, validate_file

    errors = validate_file(args.trace)
    if errors:
        for error in errors:
            print(f"{args.trace}: {error}", file=sys.stderr)
        print(f"{args.trace}: {len(errors)} schema violation(s)",
              file=sys.stderr)
        return 1
    if args.validate:
        print(f"{args.trace}: schema ok")
        return 0
    events = read_jsonl(args.trace)
    report = RunReport.from_events(events)
    ok = report.matches_prediction
    if args.json:
        print(report.to_json())
    else:
        print(report.render_text())
    if args.comm:
        comm = CommReport.from_events(events)
        ok = ok and comm.matches_prediction
        if args.json:
            print(comm.to_json())
        else:
            print()
            print(comm.render_text())
    if args.timing:
        import json

        from repro.obs import TimingReport

        timing = TimingReport.from_events(events, tolerance=args.tolerance)
        if timing.predicted_makespan_ms is not None:
            ok = ok and timing.makespan_ok
        if args.json:
            print(json.dumps(timing.to_dict(), indent=2))
        else:
            print()
            print(timing.render_text())
    return 0 if ok else 1


def _cmd_timeline(args: argparse.Namespace) -> int:
    from repro.obs import TimingReport, read_jsonl, validate_file, write_chrome_trace

    errors = validate_file(args.trace)
    if errors:
        for error in errors:
            print(f"{args.trace}: {error}", file=sys.stderr)
        print(f"{args.trace}: {len(errors)} schema violation(s)",
              file=sys.stderr)
        return 2
    events = read_jsonl(args.trace)
    if not TimingReport.from_events(events).has_timing:
        print(
            f"{args.trace}: no virtual-time stamps (schema v4 required; "
            "re-export with `python -m repro trace-run --out ...`)",
            file=sys.stderr,
        )
        return 1
    count = write_chrome_trace(events, args.out)
    print(
        f"timeline: wrote {count} trace events to {args.out} "
        "(open in https://ui.perfetto.dev or chrome://tracing)",
        file=sys.stderr,
    )
    return 0


def _cmd_obs_check(args: argparse.Namespace) -> int:
    from repro.obs import read_jsonl, scan_events, validate_file

    try:
        errors = validate_file(args.trace)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"{args.trace}: {exc}", file=sys.stderr)
        return 2
    if errors:
        for error in errors:
            print(f"{args.trace}: {error}", file=sys.stderr)
        print(f"{args.trace}: {len(errors)} schema violation(s)",
              file=sys.stderr)
        return 2
    events = read_jsonl(args.trace)
    findings = scan_events(events)
    if args.timing:
        from repro.obs import TimingReport

        if not TimingReport.from_events(events).has_timing:
            print(
                f"obs-check: {args.trace} carries no virtual-time stamps "
                "(--timing requires a schema-v4 trace)",
                file=sys.stderr,
            )
            return 1
    if args.json:
        import json

        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
    if findings:
        print(f"obs-check: {len(findings)} anomaly(ies) in {args.trace}",
              file=sys.stderr)
        return 1
    print(f"obs-check: {args.trace} is clean", file=sys.stderr)
    return 0


def _cmd_dashboard(args: argparse.Namespace) -> int:
    import json

    from repro.obs import CommReport, read_jsonl, render_dashboard
    from repro.obs.bench import load_history

    campaign = None
    if args.campaign:
        try:
            with open(args.campaign, "r", encoding="utf-8") as fh:
                campaign = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"dashboard: {args.campaign}: {exc}", file=sys.stderr)
            return 2
    telemetry = None
    if args.telemetry:
        from repro.testkit.telemetry import TelemetryStore

        telemetry = TelemetryStore(args.telemetry).load()
    bench_history = load_history(args.bench_history) if args.bench_history else None
    comm = timing = None
    if args.trace:
        from repro.obs import TimingReport

        try:
            events = read_jsonl(args.trace)
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"dashboard: {args.trace}: {exc}", file=sys.stderr)
            return 2
        comm = CommReport.from_events(events).to_dict()
        timing = TimingReport.from_events(events).to_dict()
    page = render_dashboard(
        campaign=campaign,
        telemetry=telemetry,
        bench_history=bench_history,
        comm=comm,
        timing=timing,
        title=args.title,
    )
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(page)
    print(f"dashboard: wrote {args.out} ({len(page)} bytes)", file=sys.stderr)
    return 0


def _cmd_flamegraph(args: argparse.Namespace) -> int:
    from repro.obs import flamegraph_lines, read_jsonl, records_from_events

    try:
        events = read_jsonl(args.trace)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"{args.trace}: {exc}", file=sys.stderr)
        return 2
    records = records_from_events(events)
    if not records:
        print(
            f"{args.trace}: no prof events (profile with "
            "`python -m repro profile-run --out ...`)",
            file=sys.stderr,
        )
        return 1
    lines = flamegraph_lines(records)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        print(f"wrote {len(lines)} collapsed-stack lines to {args.out}",
              file=sys.stderr)
    else:
        try:
            print("\n".join(lines))
        except BrokenPipeError:  # downstream `| head` closed the pipe
            return 0
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    import glob
    from pathlib import Path

    from repro.obs.bench import compare_payloads, load_bench

    files = args.files or sorted(glob.glob("BENCH_*.json"))
    if not files:
        print("bench-check: no BENCH_*.json files found", file=sys.stderr)
        return 2
    baseline_root = Path(args.baseline)
    failed = structural = compared = 0
    for current_path in files:
        name = Path(current_path).name
        baseline_path = (
            baseline_root / name if baseline_root.is_dir() else baseline_root
        )
        if not baseline_path.exists():
            print(f"{name}: no baseline at {baseline_path}, skipping",
                  file=sys.stderr)
            continue
        try:
            comparison = compare_payloads(
                load_bench(baseline_path),
                load_bench(current_path),
                threshold=args.threshold,
            )
        except (OSError, ValueError) as exc:
            print(f"{name}: {exc}", file=sys.stderr)
            structural += 1
            continue
        compared += 1
        print(comparison.render_table())
        regressions = comparison.regressions
        if regressions:
            failed += 1
            for delta in regressions:
                print(
                    f"  REGRESSION {comparison.experiment}/{delta.metric}: "
                    f"{delta.baseline:g} -> {delta.current:g} "
                    f"({delta.rel_delta:+.1%}, threshold "
                    f"±{args.threshold:.0%})"
                )
        print()
    if structural:
        return 2
    if compared == 0:
        print("bench-check: nothing compared (no baselines found)",
              file=sys.stderr)
        return 0
    if failed:
        verdict = f"bench-check: {failed}/{compared} experiment(s) regressed"
        if args.warn_only:
            print(verdict + " (warn-only mode, not failing)", file=sys.stderr)
            return 0
        print(verdict, file=sys.stderr)
        return 1
    print(f"bench-check: {compared} experiment(s) within thresholds",
          file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    from repro import __version__

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # Forward everything verbatim (argparse.REMAINDER would choke on
        # a leading option such as `repro lint --list-rules`).
        from repro.lint.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "flowcheck":
        # Shorthand for `lint --flow`: the whole-program secret-flow,
        # layering, and concurrency-readiness passes.
        from repro.lint.cli import main as lint_main

        return lint_main(["--flow", *argv[1:]])

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast and unconditionally secure anonymous channel "
        "(PODC 2014) — reproduction CLI",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command")

    p = sub.add_parser("demo", help="run one anonymous transmission")
    p.add_argument("-n", type=int, default=5, help="number of parties")
    p.add_argument("--jam", action="store_true", help="corrupt one party as a jammer")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_demo)

    p = sub.add_parser("schedule", help="print the round schedule")
    p.add_argument("-n", type=int, default=5)
    p.add_argument("--vss", default="GGOR13",
                   choices=["RB89", "Rab94", "GGOR13", "BGW-impl", "RB89-impl"])
    p.set_defaults(fn=_cmd_schedule)

    p = sub.add_parser("rounds", help="round-complexity comparison (E1)")
    p.set_defaults(fn=_cmd_rounds)

    p = sub.add_parser("params", help="paper-exact vs scaled parameters")
    p.add_argument("-n", type=int, default=5)
    p.set_defaults(fn=_cmd_params)

    p = sub.add_parser(
        "trace-run",
        help="run one instrumented execution and print the run report",
    )
    p.add_argument("-n", type=int, default=5, help="number of parties")
    p.add_argument("--vss", default="GGOR13",
                   choices=["RB89", "Rab94", "GGOR13", "BGW-impl", "RB89-impl"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jam", action="store_true",
                   help="corrupt one party as a jammer")
    p.add_argument("--out", metavar="PATH",
                   help="also export the event stream as JSONL")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON instead of text")
    p.add_argument("--transport", default=None,
                   choices=["lockstep", "async"],
                   help="execution engine (default: lockstep, or "
                   "REPRO_DEFAULT_TRANSPORT); traces are transport-"
                   "agnostic, so either engine yields the same stream")
    p.add_argument("--latency-ms", type=float, default=0.0, metavar="MS",
                   help="per-message base link latency; implies the async "
                   "transport and stamps v4 virtual times on the trace")
    p.add_argument("--jitter-ms", type=float, default=0.0, metavar="MS",
                   help="uniform per-message jitter on top of --latency-ms")
    p.set_defaults(fn=_cmd_trace_run)

    p = sub.add_parser(
        "profile-run",
        help="trace-run with the compute-layer op profiler attached",
    )
    p.add_argument("-n", type=int, default=5, help="number of parties")
    p.add_argument("--vss", default="GGOR13",
                   choices=["RB89", "Rab94", "GGOR13", "BGW-impl", "RB89-impl"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jam", action="store_true",
                   help="corrupt one party as a jammer")
    p.add_argument("--out", metavar="PATH",
                   help="export the schema-v2 event stream as JSONL")
    p.add_argument("--flamegraph", metavar="PATH",
                   help="write collapsed-stack lines (component;op;phase)")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON instead of text")
    p.set_defaults(fn=_cmd_profile_run)

    p = sub.add_parser(
        "report",
        help="validate and render an exported JSONL trace",
    )
    p.add_argument("trace", help="JSONL trace file (from trace-run --out)")
    p.add_argument("--validate", action="store_true",
                   help="schema-check only, print nothing else")
    p.add_argument("--comm", action="store_true",
                   help="also print the per-link communication report "
                   "(exit non-zero if it diverges from the bounds)")
    p.add_argument("--timing", action="store_true",
                   help="also print the virtual-time report: makespan, "
                   "stragglers, critical path, predicted-vs-observed diff "
                   "(exit non-zero if the makespan diverges)")
    p.add_argument("--tolerance", type=float, default=0.25,
                   help="relative makespan divergence tolerance for "
                   "--timing (default 0.25)")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON instead of text")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "timeline",
        help="export a v4 trace as a Chrome/Perfetto trace-event timeline",
    )
    p.add_argument("trace", help="JSONL trace file (from trace-run --out)")
    p.add_argument("--out", metavar="PATH", default="timeline.json",
                   help="output trace-event JSON (default: timeline.json)")
    p.set_defaults(fn=_cmd_timeline)

    p = sub.add_parser(
        "obs-check",
        help="run the anomaly watchdog over a trace; exit 1 on findings",
    )
    p.add_argument("trace", help="JSONL trace file (from trace-run --out)")
    p.add_argument("--timing", action="store_true",
                   help="require v4 virtual-time stamps (fail on pre-v4 "
                   "traces instead of passing the timing checks vacuously)")
    p.add_argument("--json", action="store_true",
                   help="print findings as JSON instead of text")
    p.set_defaults(fn=_cmd_obs_check)

    p = sub.add_parser(
        "dashboard",
        help="render the self-contained HTML telemetry dashboard",
    )
    p.add_argument("--campaign", metavar="PATH",
                   help="conformance campaign report (JSON, from "
                   "`conformance --report`)")
    p.add_argument("--telemetry", metavar="PATH",
                   help="per-trial telemetry store (JSONL, from "
                   "`conformance --telemetry`)")
    p.add_argument("--bench-history", metavar="PATH",
                   help="BENCH history store (JSONL, from "
                   "repro.obs.bench.append_history)")
    p.add_argument("--trace", metavar="PATH",
                   help="schema-v3+ trace for the comm heatmap (and, on "
                   "v4 traces, the timing panel)")
    p.add_argument("--out", metavar="PATH", default="dashboard.html",
                   help="output HTML file (default: dashboard.html)")
    p.add_argument("--title", default="repro observability dashboard",
                   help="page title")
    p.set_defaults(fn=_cmd_dashboard)

    p = sub.add_parser(
        "flamegraph",
        help="convert a trace's prof events to collapsed-stack lines",
    )
    p.add_argument("trace", help="JSONL trace file (from profile-run --out)")
    p.add_argument("--out", metavar="PATH",
                   help="write lines here instead of stdout")
    p.set_defaults(fn=_cmd_flamegraph)

    p = sub.add_parser(
        "bench-check",
        help="compare BENCH_*.json against baselines; non-zero on regression",
    )
    p.add_argument("files", nargs="*",
                   help="current BENCH_*.json files (default: ./BENCH_*.json)")
    p.add_argument("--baseline", default=".bench-baseline", metavar="DIR",
                   help="baseline dir (or single file) to compare against")
    p.add_argument("--threshold", type=float, default=0.20,
                   help="relative regression threshold (default 0.20)")
    p.add_argument("--warn-only", action="store_true",
                   help="report regressions but exit 0")
    p.set_defaults(fn=_cmd_bench_check)

    p = sub.add_parser(
        "conformance",
        help="run a protocol-conformance campaign (repro.testkit)",
    )
    from repro.testkit.cli import cmd_conformance, configure_parser

    configure_parser(p)
    p.set_defaults(fn=cmd_conformance)

    sub.add_parser(
        "lint",
        help="run the protocol-aware static analyzer (repro.lint)",
        add_help=False,
    )
    sub.add_parser(
        "flowcheck",
        help="run the whole-program flow passes (lint --flow)",
        add_help=False,
    )

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_usage(sys.stderr)
        print("repro: error: a subcommand is required "
              "(see `python -m repro --help`)", file=sys.stderr)
        return 2
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
