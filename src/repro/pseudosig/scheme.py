"""PW96 pseudosignatures over a many-to-one anonymous channel (§4).

Setup: the parties invoke the anonymous channel ``B`` times in parallel
toward the signer ``P*``; per invocation each party sends one fresh
random MAC key.  ``P*`` thus holds ``B`` *signature blocks*, each an
anonymous multiset of keys — it cannot tell whose keys are whose, which
is the entire trick.

Sign: ``P*`` MACs the message under every key of every block
("minisignatures").

Verify: verifier number ``v`` in a transfer chain accepts iff at least
``threshold(v)`` blocks contain a minisignature matching *its own* key
for that block — with thresholds decreasing in ``v`` (paper §4: each
new verifier is more tolerant).  A cheating signer who leaves some keys
unsigned cannot target a specific verifier, because key ownership is
hidden by the channel's Anonymity; the decreasing thresholds absorb the
boundary effects, giving transferability up to the configured depth.

Two setup paths are provided:

- :meth:`PseudosignatureScheme.ideal_setup` — an ideal anonymous
  channel (per-block shuffle), used by unit tests and by the Byzantine
  agreement layer.
- :func:`setup_with_anonchan` — the real thing: ``B`` AnonChan
  executions with ``P*`` as receiver (constant rounds each; the paper's
  point is that this replaces PW96's ``Omega(n^2)``-round setup).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.fields import FieldElement, GF2k, gf2k

from .mac import MACKey, mac_sign, pack_key, unpack_key


@dataclass
class SignerSetup:
    """P*'s view after setup: per block, an anonymous list of keys."""

    blocks: list[list[MACKey]]


@dataclass
class VerifierSetup:
    """A party's view after setup: its own key for each block."""

    pid: int
    keys: list[MACKey]


@dataclass(frozen=True)
class Pseudosignature:
    """P*'s pseudosignature: per block, one minisignature per block key."""

    message: FieldElement
    minisigs: tuple[tuple[FieldElement, ...], ...]


@dataclass(frozen=True)
class BytesPseudosignature:
    """A pseudosignature on an arbitrary byte string.

    Demonstrates the paper's *domain independence* (§1.2, §4): the same
    anonymous-channel setup signs messages from domains unknown at setup
    time, via the polynomial-evaluation MAC — unlike the SHZI02/BTHR07
    alternative, which is confined to single field elements.
    """

    message: bytes
    minisigs: tuple[tuple[FieldElement, ...], ...]


class PseudosignatureScheme:
    """One configured pseudosignature instance.

    Parameters
    ----------
    n:
        Number of parties (signer included).
    signer:
        The signer ``P*``'s id.
    blocks:
        Number of signature blocks ``B`` (one anonymous-channel
        invocation each).
    max_transfers:
        Transferability depth ``L`` — the a-priori bound on how often
        the signature may change hands (the paper: ``O(t)`` suffices
        for Byzantine agreement).
    mac_field:
        Field of the one-time MACs.
    """

    def __init__(
        self,
        n: int,
        signer: int,
        blocks: int,
        max_transfers: int,
        mac_field: GF2k | None = None,
    ):
        if mac_field is None:
            mac_field = gf2k(16)
        if blocks < max_transfers + 1:
            raise ValueError(
                f"need at least max_transfers+1 = {max_transfers + 1} blocks, "
                f"got {blocks}"
            )
        if not 0 <= signer < n:
            raise ValueError("signer out of range")
        self.n = n
        self.signer = signer
        self.blocks = blocks
        self.max_transfers = max_transfers
        self.mac_field = mac_field
        #: Per-level tolerance step: thresholds decrease by delta.
        self.delta = blocks // (max_transfers + 1)

    def threshold(self, level: int) -> int:
        """Blocks that must match for the level-``level`` verifier.

        Level 1 (the first verifier) demands every block; each further
        transfer tolerates ``delta`` more mismatches.
        """
        if not 1 <= level <= self.max_transfers:
            raise ValueError(
                f"level must be in [1, {self.max_transfers}], got {level}"
            )
        return self.blocks - (level - 1) * self.delta

    # -- setup ----------------------------------------------------------------
    def ideal_setup(
        self, rng: random.Random
    ) -> tuple[SignerSetup, dict[int, VerifierSetup]]:
        """Setup through an ideal anonymous channel (per-block shuffle)."""
        setup, verifiers, _ownership = self._setup(rng, anonymous=True)
        return setup, verifiers

    def deanonymized_setup(
        self, rng: random.Random
    ) -> tuple[SignerSetup, dict[int, VerifierSetup], list[list[int]]]:
        """ABLATION: setup over a channel that leaks key ownership.

        Returns additionally ``ownership[b][i]`` = the party owning the
        i-th key of block ``b``.  With this knowledge a cheating signer
        breaks transferability *deterministically*
        (:func:`targeted_partial_signature`) — the §4 rationale for
        building the setup on an anonymous channel, made measurable.
        """
        return self._setup(rng, anonymous=False)

    def _setup(
        self, rng: random.Random, anonymous: bool
    ) -> tuple[SignerSetup, dict[int, VerifierSetup], list[list[int]]]:
        verifiers = {
            pid: VerifierSetup(
                pid=pid,
                keys=[MACKey.random(self.mac_field, rng) for _ in range(self.blocks)],
            )
            for pid in range(self.n)
            if pid != self.signer
        }
        signer_blocks = []
        ownership: list[list[int]] = []
        for b in range(self.blocks):
            entries = [(pid, view.keys[b]) for pid, view in verifiers.items()]
            if anonymous:
                rng.shuffle(entries)  # the channel hides origins
            signer_blocks.append([key for _pid, key in entries])
            ownership.append([pid for pid, _key in entries])
        return SignerSetup(blocks=signer_blocks), verifiers, ownership

    # -- signing ----------------------------------------------------------------
    def sign(self, setup: SignerSetup, message: FieldElement) -> Pseudosignature:
        """MAC the message under every key in every block."""
        return Pseudosignature(
            message=message,
            minisigs=tuple(
                tuple(mac_sign(key, message) for key in block)
                for block in setup.blocks
            ),
        )

    def sign_partial(
        self,
        setup: SignerSetup,
        message: FieldElement,
        rng: random.Random,
        skip_fraction: float = 0.5,
        target_blocks: list[int] | None = None,
    ) -> Pseudosignature:
        """A cheating signer: leave a fraction of keys unsigned.

        In ``target_blocks`` (default: all), each key's minisignature is
        replaced by garbage with probability ``skip_fraction``.  Because
        key ownership is anonymous, the damage lands on *random*
        verifiers — the attack the decreasing thresholds are built for.
        """
        targets = set(
            target_blocks if target_blocks is not None else range(self.blocks)
        )
        minisigs = []
        for b, block in enumerate(setup.blocks):
            row = []
            for key in block:
                if b in targets and rng.random() < skip_fraction:
                    row.append(self.mac_field.random(rng))  # garbage
                else:
                    row.append(mac_sign(key, message))
            minisigs.append(tuple(row))
        return Pseudosignature(message=message, minisigs=tuple(minisigs))

    def sign_bytes(
        self, setup: SignerSetup, message: bytes
    ) -> BytesPseudosignature:
        """Sign an arbitrary byte string (domain independence, §4)."""
        from .mac import mac_sign_message

        return BytesPseudosignature(
            message=message,
            minisigs=tuple(
                tuple(mac_sign_message(key, message) for key in block)
                for block in setup.blocks
            ),
        )

    # -- verification --------------------------------------------------------
    def matching_blocks(self, view: VerifierSetup, sig: Pseudosignature) -> int:
        """Blocks in which some minisignature matches the verifier's key."""
        if len(sig.minisigs) != self.blocks:
            return 0
        count = 0
        for key, row in zip(view.keys, sig.minisigs):
            expected = mac_sign(key, sig.message)
            if expected in row:
                count += 1
        return count

    def verify(
        self, view: VerifierSetup, sig: Pseudosignature, level: int
    ) -> bool:
        """Level-``level`` acceptance: enough blocks match."""
        return self.matching_blocks(view, sig) >= self.threshold(level)

    def matching_blocks_bytes(
        self, view: VerifierSetup, sig: BytesPseudosignature
    ) -> int:
        """Blocks whose minisignatures include our byte-message MAC."""
        from .mac import mac_sign_message

        if len(sig.minisigs) != self.blocks:
            return 0
        count = 0
        for key, row in zip(view.keys, sig.minisigs):
            if mac_sign_message(key, sig.message) in row:
                count += 1
        return count

    def verify_bytes(
        self, view: VerifierSetup, sig: BytesPseudosignature, level: int
    ) -> bool:
        """Level-``level`` acceptance for a byte-message signature."""
        return self.matching_blocks_bytes(view, sig) >= self.threshold(level)


def setup_with_anonchan(
    scheme: PseudosignatureScheme,
    params,
    vss,
    seed: int = 0,
) -> tuple[SignerSetup, dict[int, VerifierSetup], list]:
    """Real setup: one AnonChan execution per signature block.

    Each party sends ``pack_key(key)`` through the channel toward the
    signer; the signer discards (one copy of) its own dummy contribution
    and unpacks the rest.  Returns the executions' metrics as the third
    element so experiments can account rounds/broadcasts (E6).
    """
    from repro.core import run_anonchan

    rng = random.Random(seed)
    mac_field = scheme.mac_field
    channel_field = params.field
    if channel_field.k < 2 * mac_field.k:
        raise ValueError("channel field too small to pack MAC keys")

    verifiers = {
        pid: VerifierSetup(pid=pid, keys=[])
        for pid in range(scheme.n)
        if pid != scheme.signer
    }
    signer_blocks: list[list[MACKey]] = []
    metrics = []
    for b in range(scheme.blocks):
        keys = {
            pid: MACKey.random(mac_field, rng)
            for pid in range(scheme.n)
        }
        messages = {
            pid: pack_key(keys[pid], channel_field) for pid in range(scheme.n)
        }
        result = run_anonchan(
            params,
            vss,
            messages,
            receiver=scheme.signer,
            seed=(seed << 8) | b,
        )
        metrics.append(result.metrics)
        y = result.outputs[scheme.signer].output
        received = list(y.elements())
        own = messages[scheme.signer].value
        if own in received:
            received.remove(own)  # the signer's dummy contribution
        block = [unpack_key(channel_field(v), mac_field) for v in received]
        signer_blocks.append(block)
        for pid, view in verifiers.items():
            view.keys.append(keys[pid])
    return SignerSetup(blocks=signer_blocks), verifiers, metrics
