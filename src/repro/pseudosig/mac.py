"""Information-theoretic message authentication codes.

The PW96 pseudosignature construction needs one-time unconditionally
secure MACs as its "keys": a key is a pair ``(a, b)`` over a field and
the tag of message ``m`` is ``a*m + b``.  Given one (message, tag)
pair, producing a valid tag for any other message succeeds with
probability ``1/|F|`` — no computational assumptions.

Keys travel through the anonymous channel, whose messages are single
``GF(2^kappa)`` elements, so a key over ``GF(2^k)`` is packed into one
channel element of ``GF(2^{2k})`` (:func:`pack_key` / :func:`unpack_key`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.fields import Field, FieldElement, GF2k


@dataclass(frozen=True)
class MACKey:
    """A one-time MAC key ``(a, b)``: tag(m) = a*m + b."""

    a: FieldElement
    b: FieldElement

    @classmethod
    def random(cls, field: Field, rng: random.Random) -> "MACKey":
        # a must be non-zero, otherwise the tag ignores the message.
        return cls(a=field.random_nonzero(rng), b=field.random(rng))


def mac_sign(key: MACKey, message: FieldElement) -> FieldElement:
    """The tag ``a*m + b``."""
    return key.a * message + key.b


def mac_verify(key: MACKey, message: FieldElement, tag: FieldElement) -> bool:
    """Check a tag against a key."""
    return mac_sign(key, message) == tag


def forgery_probability(field: Field) -> float:
    """Substitution-forgery bound: 1/|F| per attempt."""
    return 1.0 / field.order


def pack_key(key: MACKey, channel_field: GF2k) -> FieldElement:
    """Pack ``(a, b)`` over GF(2^k) into one GF(2^{2k}) channel element."""
    k = key.a.field.k  # type: ignore[attr-defined]
    if channel_field.k < 2 * k:
        raise ValueError(
            f"channel field GF(2^{channel_field.k}) cannot hold a key over "
            f"GF(2^{k}) pair"
        )
    return channel_field((key.a.value << k) | key.b.value)


def unpack_key(element: FieldElement, mac_field: GF2k) -> MACKey:
    """Inverse of :func:`pack_key`."""
    k = mac_field.k
    mask = (1 << k) - 1
    return MACKey(
        a=mac_field(element.value >> k & mask), b=mac_field(element.value & mask)
    )


# -- domain independence -----------------------------------------------------
#
# The paper (§1.2, §4) highlights that the PW96 approach is
# *domain-independent*: the setup does not fix the message space, unlike
# the SHZI02/BTHR07 alternative, which can only sign messages from the
# MPC's field.  The standard realization is the polynomial-evaluation
# MAC: a message of arbitrary length is split into field blocks
# m_1..m_L (with unambiguous length encoding) and
#
#     tag = a^{L+1} + m_1 a^L + ... + m_L a + b
#
# which forges with probability (L+1)/|F| per attempt.


def message_to_blocks(message: bytes, field: GF2k) -> list[FieldElement]:
    """Split bytes into field elements, with an unambiguous terminator.

    Each block carries ``field.k // 8`` message bytes (``k`` must be a
    multiple of 8); a final block encodes the byte length, preventing
    padding ambiguity.
    """
    if field.k % 8 != 0:
        raise ValueError("block encoding needs k divisible by 8")
    width = field.k // 8
    blocks = [
        field(int.from_bytes(message[i : i + width], "big"))
        for i in range(0, len(message), width)
    ]
    blocks.append(field(len(message) % field.order))
    return blocks


def mac_sign_message(key: MACKey, message: bytes) -> FieldElement:
    """Polynomial-evaluation MAC over an arbitrary byte string."""
    field = key.a.field
    blocks = message_to_blocks(message, field)  # type: ignore[arg-type]
    # Horner evaluation of a^{L+1} + sum m_i a^{L+1-i} + b.
    acc = key.a.field.encode(1)
    f = field
    a = key.a.value
    for block in blocks:
        acc = f.add(f.mul(acc, a), block.value)
    return FieldElement(f, f.add(f.mul(acc, a), key.b.value))


def mac_verify_message(key: MACKey, message: bytes, tag: FieldElement) -> bool:
    """Verify a polynomial-evaluation MAC tag."""
    return mac_sign_message(key, message) == tag


def message_forgery_probability(field: Field, message_bytes: int) -> float:
    """Forgery bound for the block MAC: (L+1)/|F| with L blocks."""
    width = max(field.order.bit_length() - 1, 8) // 8
    blocks = -(-message_bytes // width) + 1
    return min(1.0, (blocks + 1) / field.order)
