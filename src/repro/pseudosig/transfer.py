"""Transfer chains: pseudosignature integrity degrades per hop (§4).

A pseudosignature is passed ``V_1 -> V_2 -> ... -> V_L``; verifier
number ``v`` checks at level ``v`` (more tolerant than ``v-1``).  The
scheme is *broken* if some ``V_v`` accepts while ``V_{v+1}`` rejects —
the signer then created a signature whose validity depends on who holds
it.  The decreasing thresholds plus the Anonymity of the setup channel
make this happen with small probability only; :func:`break_probability`
measures it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .scheme import Pseudosignature, PseudosignatureScheme, VerifierSetup


@dataclass(frozen=True)
class TransferStep:
    """One verifier's verdict within a chain."""

    pid: int
    level: int
    matches: int
    threshold: int
    accepted: bool


def transfer_chain(
    scheme: PseudosignatureScheme,
    views: dict[int, VerifierSetup],
    sig: Pseudosignature,
    path: list[int],
) -> list[TransferStep]:
    """Pass ``sig`` along ``path``; verifier ``i`` checks at level ``i+1``.

    The chain stops at the first rejection (a rejecting verifier does
    not pass the signature on).
    """
    if len(path) > scheme.max_transfers:
        raise ValueError(
            f"path longer than transferability bound {scheme.max_transfers}"
        )
    steps: list[TransferStep] = []
    for i, pid in enumerate(path):
        level = i + 1
        view = views[pid]
        matches = scheme.matching_blocks(view, sig)
        threshold = scheme.threshold(level)
        accepted = matches >= threshold
        steps.append(
            TransferStep(
                pid=pid,
                level=level,
                matches=matches,
                threshold=threshold,
                accepted=accepted,
            )
        )
        if not accepted:
            break
    return steps


def chain_broken(steps: list[TransferStep]) -> bool:
    """True iff some verifier accepted and the *next* one rejected."""
    for a, b in zip(steps, steps[1:]):
        if a.accepted and not b.accepted:
            return True
    return False


def targeted_partial_signature(
    scheme: PseudosignatureScheme,
    setup,
    ownership: list[list[int]],
    message,
    victim: int,
    victim_level: int = 2,
    rng: random.Random | None = None,
) -> Pseudosignature:
    """The attack anonymity prevents: un-sign exactly the victim's keys.

    Knowing key ownership (a *de-anonymized* setup), the cheating signer
    leaves the victim's key unsigned in just enough blocks that every
    earlier verifier still matches all blocks while the victim at
    ``victim_level`` falls below its threshold — a deterministic
    accept-then-reject break.  With the anonymous setup this targeting
    is information-theoretically impossible.
    """
    from .mac import mac_sign

    if rng is None:
        rng = random.Random(0)
    blocks_to_spoil = scheme.blocks - scheme.threshold(victim_level) + 1
    spoiled = set(range(blocks_to_spoil))
    minisigs = []
    for b, block in enumerate(setup.blocks):
        row = []
        for key, owner in zip(block, ownership[b]):
            if b in spoiled and owner == victim:
                row.append(scheme.mac_field.random(rng))  # garbage
            else:
                row.append(mac_sign(key, message))
        minisigs.append(tuple(row))
    return Pseudosignature(message=message, minisigs=tuple(minisigs))


def break_probability(
    scheme: PseudosignatureScheme,
    trials: int,
    rng: random.Random,
    skip_fraction: float = 0.5,
    path_length: int | None = None,
) -> float:
    """Monte-Carlo estimate of the cheating signer's break rate.

    Each trial: fresh ideal setup, a partial signature, and a random
    transfer path; counts the fraction of trials with an
    accept-then-reject gap.
    """
    if path_length is None:
        path_length = scheme.max_transfers
    broken = 0
    for _ in range(trials):
        setup, views = scheme.ideal_setup(rng)
        message = scheme.mac_field.random(rng)
        sig = scheme.sign_partial(setup, message, rng, skip_fraction)
        others = [p for p in views]
        rng.shuffle(others)
        steps = transfer_chain(scheme, views, sig, others[:path_length])
        if chain_broken(steps):
            broken += 1
    return broken / trials
