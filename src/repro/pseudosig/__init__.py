"""PW96 pseudosignatures over the anonymous channel (paper, Section 4)."""

from .mac import (
    MACKey,
    forgery_probability,
    mac_sign,
    mac_sign_message,
    mac_verify,
    mac_verify_message,
    message_forgery_probability,
    message_to_blocks,
    pack_key,
    unpack_key,
)
from .scheme import (
    BytesPseudosignature,
    Pseudosignature,
    PseudosignatureScheme,
    SignerSetup,
    VerifierSetup,
    setup_with_anonchan,
)
from .transfer import (
    TransferStep,
    break_probability,
    chain_broken,
    targeted_partial_signature,
    transfer_chain,
)

__all__ = [
    "MACKey",
    "mac_sign",
    "mac_verify",
    "mac_sign_message",
    "mac_verify_message",
    "message_to_blocks",
    "message_forgery_probability",
    "forgery_probability",
    "pack_key",
    "unpack_key",
    "PseudosignatureScheme",
    "Pseudosignature",
    "BytesPseudosignature",
    "SignerSetup",
    "VerifierSetup",
    "setup_with_anonchan",
    "TransferStep",
    "transfer_chain",
    "chain_broken",
    "break_probability",
    "targeted_partial_signature",
]
