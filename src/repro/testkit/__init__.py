"""Protocol-conformance testkit: seed-swept adversarial campaigns.

The paper's security story is analytic — Claim 1 (an improper vector
survives cut-and-choose w.p. exactly ``2^-num_checks``) and Claim 2
(the hypergeometric collision bound behind Reliability).  This
subsystem validates it *empirically and systematically*: it enumerates
campaign grids over

    adversary strategy x network fault x field substrate x (n, t, d, l, kappa)

with deterministic per-config seeds (:mod:`repro.testkit.config`),
runs every configuration through :func:`repro.core.run_anonchan`
(:mod:`repro.testkit.runner`), and evaluates a registry of *invariant
checkers* derived from the paper (:mod:`repro.testkit.invariants`).
On any violation the failing configuration is *shrunk* along each axis
to a locally-minimal reproducer (:mod:`repro.testkit.shrink`), and the
whole campaign is emitted as a JSON report embedding a working repro
command line (:mod:`repro.testkit.report`).

Entry point: ``python -m repro conformance`` (see
:mod:`repro.testkit.cli` and ``docs/TESTING.md``).
"""

from .axes import FAULTS, STRATEGIES, FaultSpec, StrategySpec
from .config import CampaignConfig, derive_seed
from .grids import GRIDS, grid_configs
from .invariants import (
    DEFAULT_ALPHA,
    CheckOutcome,
    ConfigEvidence,
    InvariantChecker,
    TrialOutcome,
    binomial_tail,
    default_registry,
)
from .report import CampaignReport, canonical_report_json, repro_command
from .runner import ConfigResult, run_campaign, run_config
from .shrink import ShrinkResult, shrink_config
from .telemetry import TelemetryStore, trial_records

__all__ = [
    "CampaignConfig",
    "derive_seed",
    "StrategySpec",
    "FaultSpec",
    "STRATEGIES",
    "FAULTS",
    "GRIDS",
    "grid_configs",
    "TrialOutcome",
    "ConfigEvidence",
    "CheckOutcome",
    "InvariantChecker",
    "binomial_tail",
    "default_registry",
    "DEFAULT_ALPHA",
    "ConfigResult",
    "run_config",
    "run_campaign",
    "ShrinkResult",
    "shrink_config",
    "CampaignReport",
    "canonical_report_json",
    "repro_command",
    "TelemetryStore",
    "trial_records",
]
