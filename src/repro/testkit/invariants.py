"""The invariant-checker registry: the paper's claims as executable checks.

Each checker looks at the evidence gathered from one campaign config
(:class:`ConfigEvidence`: per-trial outcomes plus one traced run) and
returns a :class:`CheckOutcome`.  Statistical invariants use an *exact
binomial tolerance*: with ``T`` seeded trials and a per-trial failure
(or survival) bound ``p`` from the paper's analysis, the checker flags
a violation only when the observed count has binomial tail probability
below ``alpha`` — astronomically unlikely under the claim, virtually
certain under a real regression (e.g., a deterministic delivery bug
fails all ``T`` trials, whose tail is ``p^T``).

Registry (see docs/TESTING.md):

- ``claim1-survival`` — improper vectors survive cut-and-choose at rate
  ``2^-num_checks`` (Claim 1, two-sided: too *few* survivals is also a
  bug — it would mean the proof rejects what it must accept).
- ``claim2-delivery`` — honest messages are delivered except w.p.
  bounded by the hypergeometric collision tail (Claim 2) plus the
  cheater-survival and tag-collision terms.
- ``output-bound`` — ``|Y| <= n`` in every trial without a surviving
  improper vector (threshold >= 2; at threshold 1 any collision makes
  garbage output, so the check would be vacuous).
- ``proper-pass`` — proper committed vectors always survive the proof
  in fault-free runs (the other direction of Claim 1).
- ``agreement`` — all honest parties agree on the qualified set, the
  PASS set, and the challenge.
- ``anonymity`` — permutation-indistinguishability over traced receiver
  views: swapping two honest senders' inputs (same seed) leaves the
  receiver's multiset and all public traffic accounting unchanged.
- ``schedule-conformance`` — the traced run matches the static
  :func:`repro.core.trace.round_schedule` prediction.
- ``comm-conformance`` — the traced run's per-message stream stays
  within the :func:`repro.core.trace.comm_bounds` envelope (broadcast
  rounds, per-phase bandwidth) and both traffic accountings agree.
- ``timing-conformance`` — the traced run's virtual-time stamps are
  self-consistent (v4 stamps present, monotone round windows, trace
  makespan equals the runtime's accounting) and the observed makespan
  stays within tolerance of the analytic latency-model prediction
  (see :mod:`repro.obs.timing`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.hypergeometric import hypergeometric_tail, log_binomial
from repro.core.params import AnonChanParams

from .axes import STRATEGIES
from .config import CampaignConfig

#: Default statistical tolerance: a checker cries wolf only on events
#: this unlikely under the paper's bounds.  Campaigns are fully seeded,
#: so a passing grid stays passing byte-for-byte until code changes.
DEFAULT_ALPHA = 1e-5


def binomial_tail(trials: int, p: float, k: int) -> float:
    """Exact upper tail ``Pr[Bin(trials, p) >= k]`` via log-space pmf."""
    if k <= 0:
        return 1.0
    if k > trials:
        return 0.0
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    log_p, log_q = math.log(p), math.log1p(-p)
    return min(
        1.0,
        math.fsum(
            math.exp(log_binomial(trials, i) + i * log_p + (trials - i) * log_q)
            for i in range(k, trials + 1)
        ),
    )


def binomial_lower_tail(trials: int, p: float, k: int) -> float:
    """Exact lower tail ``Pr[Bin(trials, p) <= k]``."""
    if k < 0:
        return 0.0
    if k >= trials:
        return 1.0
    return min(1.0, 1.0 - binomial_tail(trials, p, k + 1) + 1e-15)


# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrialOutcome:
    """Compact, public-only record of one seeded protocol execution.

    The trailing communication metrics (rounds through
    ``field_elements_sent``) feed the campaign telemetry store
    (:mod:`repro.testkit.telemetry`); they default to zero so records
    written before the fields existed still deserialize.
    """

    trial: int
    seed: int
    challenge: int
    qualified: tuple[int, ...]
    surviving: tuple[int, ...]  # corrupted parties in the final PASS set
    honest_delivered: bool
    output_total: int
    agreement: bool
    anonymity_ok: bool | None = None
    rounds: int = 0
    broadcast_rounds: int = 0
    private_messages: int = 0
    field_elements_sent: int = 0
    makespan_ms: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "trial": self.trial,
            "seed": self.seed,
            "challenge": self.challenge,
            "qualified": list(self.qualified),
            "surviving": list(self.surviving),
            "honest_delivered": self.honest_delivered,
            "output_total": self.output_total,
            "agreement": self.agreement,
            "anonymity_ok": self.anonymity_ok,
            "rounds": self.rounds,
            "broadcast_rounds": self.broadcast_rounds,
            "private_messages": self.private_messages,
            "field_elements_sent": self.field_elements_sent,
            "makespan_ms": self.makespan_ms,
        }


@dataclass
class ConfigEvidence:
    """Everything the checkers see about one executed config."""

    config: CampaignConfig
    params: AnonChanParams
    corrupted: tuple[int, ...]
    trials: list[TrialOutcome]
    schedule_ok: bool | None = None
    schedule_divergences: list[str] = field(default_factory=list)
    comm_ok: bool | None = None
    comm_divergences: list[str] = field(default_factory=list)
    timing_ok: bool | None = None
    timing_divergences: list[str] = field(default_factory=list)

    @property
    def honest_count(self) -> int:
        return self.config.n - len(self.corrupted)


@dataclass(frozen=True)
class CheckOutcome:
    """One checker's verdict on one config."""

    invariant: str
    applicable: bool
    passed: bool
    stats: dict[str, Any]
    message: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "applicable": self.applicable,
            "passed": self.passed,
            "stats": self.stats,
            "message": self.message,
        }


class InvariantChecker:
    """Base class: subclasses set ``name`` and implement ``evaluate``."""

    name = "abstract"
    description = ""

    def evaluate(self, ev: ConfigEvidence) -> CheckOutcome:
        raise NotImplementedError

    # helpers -----------------------------------------------------------
    def _skip(self, reason: str, **stats: Any) -> CheckOutcome:
        return CheckOutcome(
            invariant=self.name,
            applicable=False,
            passed=True,
            stats={"skipped": reason, **stats},
        )

    def _verdict(
        self, passed: bool, message: str | None = None, **stats: Any
    ) -> CheckOutcome:
        return CheckOutcome(
            invariant=self.name,
            applicable=True,
            passed=passed,
            stats=stats,
            message=None if passed else message,
        )


class Claim1Survival(InvariantChecker):
    """Empirical cut-and-choose survival rate vs the exact ``2^-kappa``."""

    name = "claim1-survival"
    description = (
        "improper vectors survive cut-and-choose at rate 2^-num_checks "
        "(two-sided exact binomial tolerance)"
    )

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        self.alpha = alpha

    def evaluate(self, ev: ConfigEvidence) -> CheckOutcome:
        spec = STRATEGIES[ev.config.strategy]
        if not spec.improper:
            return self._skip("strategy commits a proper vector")
        if ev.config.fault != "none":
            return self._skip("network faults perturb the survival rate")
        if len(ev.corrupted) != 1:
            return self._skip("needs exactly one corrupted prover")
        p = spec.survival_p(ev.params)
        trials = len(ev.trials)
        survived = sum(1 for t in ev.trials if t.surviving)
        upper = binomial_tail(trials, p, survived)
        lower = binomial_lower_tail(trials, p, survived)
        tail = min(upper, lower)
        passed = tail >= self.alpha / 2
        return self._verdict(
            passed,
            message=(
                f"observed {survived}/{trials} survivals vs expected rate "
                f"{p:g} (two-sided tail {tail:.3g} < alpha/2 "
                f"{self.alpha / 2:.3g})"
            ),
            trials=trials,
            survived=survived,
            expected_rate=p,
            observed_rate=survived / trials,
            tail_probability=tail,
            alpha=self.alpha,
        )


class Claim2Delivery(InvariantChecker):
    """Honest-output delivery under the Claim 2 collision budget."""

    name = "claim2-delivery"
    description = (
        "honest messages are delivered except w.p. bounded by the "
        "hypergeometric collision tail + cheater survival + tag collisions"
    )

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        self.alpha = alpha

    def _per_trial_bound(self, ev: ConfigEvidence) -> float:
        params = ev.params
        spec = STRATEGIES[ev.config.strategy]
        # A sender's message is lost once more than d - ceil(d/2) of its
        # darts collide with the other senders' (at most (n-1)d marked
        # cells); the exact hypergeometric tail is tighter than the
        # Chvatal bound at campaign scale.
        k_loss = params.d - params.threshold_count + 1
        marked = min((params.n - 1) * params.d, params.ell)
        p_coll = hypergeometric_tail(params.ell, marked, params.d, k_loss)
        p = ev.honest_count * p_coll
        p += params.n**2 / (2.0**params.kappa)  # tag collisions
        if spec.improper:
            # A surviving improper vector may jam everything.
            p += len(ev.corrupted) * spec.survival_p(params)
        return min(1.0, p)

    def evaluate(self, ev: ConfigEvidence) -> CheckOutcome:
        p = self._per_trial_bound(ev)
        if p >= 0.5:
            return self._skip(
                "per-trial failure bound is vacuous at this scale",
                per_trial_bound=p,
            )
        trials = len(ev.trials)
        failures = sum(1 for t in ev.trials if not t.honest_delivered)
        tail = binomial_tail(trials, p, failures)
        passed = tail >= self.alpha
        return self._verdict(
            passed,
            message=(
                f"{failures}/{trials} trials lost an honest message; "
                f"binomial tail {tail:.3g} under per-trial bound {p:.3g} "
                f"is below alpha {self.alpha:.3g}"
            ),
            trials=trials,
            failures=failures,
            per_trial_bound=p,
            tail_probability=tail,
            alpha=self.alpha,
        )


class OutputBound(InvariantChecker):
    """``|Y| <= n`` whenever no improper vector survived the proof."""

    name = "output-bound"
    description = (
        "the receiver's multiset has at most n elements in every trial "
        "without a surviving improper vector"
    )

    def __init__(self, alpha: float = DEFAULT_ALPHA):
        self.alpha = alpha

    def evaluate(self, ev: ConfigEvidence) -> CheckOutcome:
        params = ev.params
        if params.threshold_count < 2:
            return self._skip(
                "threshold ceil(d/2) = 1: any collision mints garbage "
                "output, the bound is only meaningful for d >= 3"
            )
        spec = STRATEGIES[ev.config.strategy]
        considered = [
            t
            for t in ev.trials
            if not (spec.improper and t.surviving)
        ]
        if not considered:
            return self._skip("every trial had a surviving improper vector")
        # Spurious output needs >= ceil(d/2) >= 2 *identical* random
        # garbage pairs: both kappa-bit halves (message and tag) must
        # match, so one coincidence costs 2^-2kappa; union over the at
        # most (n d)^2 coordinate pairs that could collide.
        p = min(
            1.0, (params.n * params.d) ** 2 * 2.0 ** (-2 * params.kappa)
        )
        failures = sum(1 for t in considered if t.output_total > params.n)
        tail = binomial_tail(len(considered), p, failures)
        passed = tail >= self.alpha
        return self._verdict(
            passed,
            message=(
                f"{failures}/{len(considered)} trials output more than "
                f"n={params.n} messages without a surviving improper vector"
            ),
            trials=len(considered),
            failures=failures,
            per_trial_bound=p,
            tail_probability=tail,
            alpha=self.alpha,
        )


class ProperPass(InvariantChecker):
    """Proper vectors always survive the proof in fault-free runs."""

    name = "proper-pass"
    description = (
        "a proper committed vector is never disqualified by "
        "cut-and-choose in a fault-free run (completeness of the proof)"
    )

    def evaluate(self, ev: ConfigEvidence) -> CheckOutcome:
        spec = STRATEGIES[ev.config.strategy]
        if spec.improper:
            return self._skip("strategy commits an improper vector")
        if ev.config.fault != "none":
            return self._skip("network faults can disqualify any prover")
        if not ev.corrupted:
            return self._skip("no corrupted prover to track")
        expected = tuple(sorted(ev.corrupted))
        bad = [
            t.trial
            for t in ev.trials
            if tuple(sorted(t.surviving)) != expected
        ]
        return self._verdict(
            not bad,
            message=(
                f"proper prover(s) disqualified in trials {bad} "
                f"(strategy {ev.config.strategy!r})"
            ),
            trials=len(ev.trials),
            failing_trials=bad,
        )


class Agreement(InvariantChecker):
    """All honest parties agree on qualified/PASS/challenge."""

    name = "agreement"
    description = (
        "honest parties agree on the qualified set, the PASS set, and "
        "the opened challenge in every trial"
    )

    def evaluate(self, ev: ConfigEvidence) -> CheckOutcome:
        bad = [t.trial for t in ev.trials if not t.agreement]
        return self._verdict(
            not bad,
            message=f"honest parties disagreed in trials {bad}",
            trials=len(ev.trials),
            failing_trials=bad,
        )


class Anonymity(InvariantChecker):
    """Receiver view is invariant under permuting honest inputs."""

    name = "anonymity"
    description = (
        "swapping two honest senders' messages (same seed) leaves the "
        "receiver's multiset and the public traffic accounting unchanged"
    )

    def evaluate(self, ev: ConfigEvidence) -> CheckOutcome:
        checked = [t for t in ev.trials if t.anonymity_ok is not None]
        if not checked:
            return self._skip("no trial ran the permuted twin execution")
        bad = [t.trial for t in checked if not t.anonymity_ok]
        return self._verdict(
            not bad,
            message=(
                f"receiver view distinguished permuted honest inputs in "
                f"trials {bad}"
            ),
            trials=len(checked),
            failing_trials=bad,
        )


class ScheduleConformance(InvariantChecker):
    """The traced run matches the static round-schedule prediction."""

    name = "schedule-conformance"
    description = (
        "the observed per-round schedule of a traced execution matches "
        "repro.core.trace.round_schedule (phases, broadcasts, totals)"
    )

    def evaluate(self, ev: ConfigEvidence) -> CheckOutcome:
        if ev.schedule_ok is None:
            return self._skip("no traced trial for this config")
        return self._verdict(
            ev.schedule_ok,
            message="; ".join(ev.schedule_divergences) or "schedule diverged",
            divergences=list(ev.schedule_divergences),
        )


class CommConformance(InvariantChecker):
    """The traced run's communication matches the analytic bounds.

    The dynamic side of the paper's efficiency claims: the per-message
    stream of the traced trial must show exactly the predicted number of
    broadcast rounds (E2's "two rounds of broadcast") and per-phase wire
    volume within the :func:`repro.core.trace.comm_bounds` envelope, and
    the per-message accounting must agree with the per-round summaries.
    """

    name = "comm-conformance"
    description = (
        "the observed per-link communication of a traced execution stays "
        "within repro.core.trace.comm_bounds (broadcast rounds, per-phase "
        "bandwidth) and the msg/round accountings agree"
    )

    def evaluate(self, ev: ConfigEvidence) -> CheckOutcome:
        if ev.comm_ok is None:
            return self._skip("no traced trial for this config")
        return self._verdict(
            ev.comm_ok,
            message="; ".join(ev.comm_divergences) or "comm diverged",
            divergences=list(ev.comm_divergences),
        )


class TimingConformance(InvariantChecker):
    """The traced run's virtual-time stamps hold together.

    The timing counterpart of ``schedule-conformance``: the traced
    trial must carry v4 virtual-time stamps, its round windows must be
    monotone, the trace-derived makespan must equal the runtime's own
    accounting, and — when the run_start carries enough for the
    analytic prediction — the observed makespan must stay within the
    :class:`repro.obs.timing.TimingReport` tolerance of the latency
    model's expectation.
    """

    name = "timing-conformance"
    description = (
        "the traced execution's virtual-time stamps are self-consistent "
        "and the observed makespan matches the analytic latency-model "
        "prediction within tolerance (repro.obs.timing)"
    )

    def evaluate(self, ev: ConfigEvidence) -> CheckOutcome:
        if ev.timing_ok is None:
            return self._skip("no traced trial for this config")
        return self._verdict(
            ev.timing_ok,
            message="; ".join(ev.timing_divergences) or "timing diverged",
            divergences=list(ev.timing_divergences),
        )


def default_registry(
    alpha: float = DEFAULT_ALPHA,
) -> dict[str, InvariantChecker]:
    """The standard checker registry, in evaluation order."""
    checkers: list[InvariantChecker] = [
        Claim1Survival(alpha),
        Claim2Delivery(alpha),
        OutputBound(alpha),
        ProperPass(),
        Agreement(),
        Anonymity(),
        ScheduleConformance(),
        CommConformance(),
        TimingConformance(),
    ]
    return {c.name: c for c in checkers}
