"""The named campaign grids: mini, smoke, nightly.

Each grid is a deterministic list of :class:`CampaignConfig` cells
crossing the testkit axes at a scale matched to its tier:

- ``mini`` — seconds; used by the unit tests and as a PR sanity gate.
- ``smoke`` — tens of seconds; the always-on CI campaign.  Contains a
  dedicated Claim 1 block (high-trial survival-rate measurement at
  ``num_checks`` in {1, 2, 3}), a proper-strategy block, the full fault
  axis, strategy x fault crosses, the substrate axis, and a small
  parameter-scale block.
- ``nightly`` — minutes; the full strategy x fault cross plus larger
  trials and parameter scales, run warn-only on a schedule.

Grid cells are pure data: the same name always enumerates the same
configs, so a campaign is reproducible from ``(grid, seed)`` alone.
"""

from __future__ import annotations

from typing import Callable

from .axes import FAULTS, STRATEGIES
from .config import CampaignConfig

# The small base cell every grid builds around: the fastest
# parameterization on which every strategy is expressible (d >= 2) and
# cut-and-choose statistics are cheap (~15 ms per protocol run).
_BASE = dict(n=3, t=1, d=2, ell=16, kappa=8)

# A mid-size cell where the output-bound checker is live
# (threshold ceil(d/2) = 2) and faults have room to bite.
_MID = dict(n=4, t=1, d=3, ell=32, kappa=16)


def _mini() -> list[CampaignConfig]:
    b = _BASE
    return [
        CampaignConfig(name="mini/honest-baseline", **b, num_checks=2,
                       trials=3),
        CampaignConfig(name="mini/guessing-ck1", **b, num_checks=1,
                       strategy="guessing-cheater", corrupt_count=1,
                       trials=6),
        CampaignConfig(name="mini/jamming-ck2", **b, num_checks=2,
                       strategy="jamming", corrupt_count=1, trials=6),
        CampaignConfig(name="mini/zero", **b, num_checks=1, strategy="zero",
                       corrupt_count=1, trials=3),
        CampaignConfig(name="mini/crash-share", **b, num_checks=2,
                       fault="crash-share", corrupt_count=1, trials=3),
        CampaignConfig(name="mini/drop-half", **b, num_checks=2,
                       fault="drop-half", corrupt_count=1, trials=3),
    ]


def _smoke() -> list[CampaignConfig]:
    configs: list[CampaignConfig] = []
    b = _BASE
    # Claim 1 block: measure the survival rate of both improper
    # strategies against 2^-num_checks with enough trials for the
    # binomial tolerance to have teeth.
    for num_checks in (1, 2, 3):
        for strategy in ("guessing-cheater", "jamming"):
            configs.append(
                CampaignConfig(
                    name=f"smoke/claim1-{strategy}-ck{num_checks}",
                    **b,
                    num_checks=num_checks,
                    strategy=strategy,
                    corrupt_count=1,
                    trials=96,
                )
            )
    # Proper strategies must always survive (completeness direction).
    for strategy in ("zero", "targeted", "dependent-input"):
        configs.append(
            CampaignConfig(
                name=f"smoke/proper-{strategy}", **b, num_checks=2,
                strategy=strategy, corrupt_count=1, trials=8,
            )
        )
    # The whole fault axis against honest corrupted parties.
    m = _MID
    for fault in FAULTS:
        if fault == "none":
            continue
        configs.append(
            CampaignConfig(
                name=f"smoke/fault-{fault}", **m, num_checks=2,
                fault=fault, corrupt_count=1, trials=6,
            )
        )
    # Strategy x fault crosses.
    for strategy, fault in (
        ("jamming", "drop-half"),
        ("guessing-cheater", "flip"),
        ("zero", "garble"),
        ("targeted", "drop+flip"),
    ):
        configs.append(
            CampaignConfig(
                name=f"smoke/cross-{strategy}-{fault}", **m, num_checks=2,
                strategy=strategy, fault=fault, corrupt_count=1, trials=6,
            )
        )
    # Substrate axis: identical behaviour on every sharing backend.
    for substrate in ("scalar", "vectorized"):
        configs.append(
            CampaignConfig(
                name=f"smoke/substrate-{substrate}-honest", **b,
                num_checks=2, substrate=substrate, trials=4,
            )
        )
        configs.append(
            CampaignConfig(
                name=f"smoke/substrate-{substrate}-jamming", **b,
                num_checks=2, substrate=substrate, strategy="jamming",
                corrupt_count=1, trials=4,
            )
        )
    # Batched hot path: one cell big enough that the protocol-level
    # batch kernels (stage-2 diffs, step-4 sums — VECTOR_COMBINE_MIN)
    # actually engage instead of deferring to the scalar fallbacks, so
    # the conformance campaign exercises the vectorized code the
    # benchmarks measure.
    configs.append(
        CampaignConfig(
            name="smoke/substrate-vectorized-batched-hotpath",
            n=4, t=1, d=4, ell=64, kappa=16, num_checks=2,
            substrate="vectorized", strategy="jamming", corrupt_count=1,
            trials=2,
        )
    )
    # Transport axis: the asyncio runtime must reproduce the lockstep
    # semantics on representative honest/adversarial/faulted cells.
    # Shapes deliberately mirror lockstep cells — transport is excluded
    # from the identity key, so each async cell replays the *same*
    # seeded trials as its lockstep twin.
    configs.append(
        CampaignConfig(
            name="smoke/transport-async-honest", **b, num_checks=2,
            transport="async", trials=4,
        )
    )
    configs.append(
        CampaignConfig(
            name="smoke/transport-async-jamming", **b, num_checks=2,
            strategy="jamming", corrupt_count=1, transport="async",
            trials=4,
        )
    )
    configs.append(
        CampaignConfig(
            name="smoke/transport-async-crash-share", **m, num_checks=2,
            fault="crash-share", corrupt_count=1, transport="async",
            trials=4,
        )
    )
    # Parameter-scale block.
    configs.extend(
        [
            CampaignConfig(name="smoke/scale-n5", n=5, t=2, d=4, ell=64,
                           kappa=16, num_checks=2, strategy="jamming",
                           corrupt_count=2, trials=2),
            CampaignConfig(name="smoke/scale-d6", n=4, t=1, d=6, ell=96,
                           kappa=16, num_checks=3, strategy="targeted",
                           corrupt_count=1, trials=2),
            CampaignConfig(name="smoke/scale-n6", n=6, t=2, d=3, ell=48,
                           kappa=12, num_checks=2, trials=2),
        ]
    )
    return configs


def _nightly() -> list[CampaignConfig]:
    configs = _smoke()
    m = _MID
    # The full strategy x fault cross at mid scale.
    for strategy in STRATEGIES:
        for fault in FAULTS:
            if strategy == "honest" and fault == "none":
                continue
            configs.append(
                CampaignConfig(
                    name=f"nightly/cross-{strategy}-{fault}", **m,
                    num_checks=2, strategy=strategy, fault=fault,
                    corrupt_count=1, trials=8,
                )
            )
    # Deeper Claim 1 statistics.
    for num_checks in (4, 5):
        configs.append(
            CampaignConfig(
                name=f"nightly/claim1-guessing-ck{num_checks}", **_BASE,
                num_checks=num_checks, strategy="guessing-cheater",
                corrupt_count=1, trials=256,
            )
        )
    # Larger parameter scales.
    configs.extend(
        [
            CampaignConfig(name="nightly/scale-n7", n=7, t=3, d=4, ell=96,
                           kappa=16, num_checks=2, strategy="jamming",
                           corrupt_count=3, trials=2),
            CampaignConfig(name="nightly/scale-d8", n=4, t=1, d=8, ell=192,
                           kappa=16, num_checks=4, strategy="guessing-cheater",
                           corrupt_count=1, trials=4),
        ]
    )
    return configs


#: name -> grid builder.
GRIDS: dict[str, Callable[[], list[CampaignConfig]]] = {
    "mini": _mini,
    "smoke": _smoke,
    "nightly": _nightly,
}


def grid_configs(name: str) -> list[CampaignConfig]:
    """The validated config list of a named grid.

    Raises ``KeyError`` for unknown grids and ``ValueError`` if a grid
    cell is invalid or two cells collide on their identity key *and*
    transport (same-key cells on different transports are the transport
    axis working as intended — they deliberately replay the same
    seeds; a same-key same-transport pair would silently reuse seeds).
    """
    if name not in GRIDS:
        raise KeyError(
            f"unknown grid {name!r}; known grids: {sorted(GRIDS)}"
        )
    configs = GRIDS[name]()
    seen: dict[tuple[str, str], str] = {}
    for config in configs:
        config.validate()
        key = (config.key(), config.transport)
        if key in seen:
            raise ValueError(
                f"grid {name!r}: configs {seen[key]!r} and "
                f"{config.name!r} have the same identity key"
            )
        seen[key] = config.name
    return configs
