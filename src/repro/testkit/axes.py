"""The adversary-strategy and network-fault axes of the campaign grid.

Strategies wrap the catalogue of :mod:`repro.core.adversaries` (step-1
material attacks) behind a uniform registry; faults wrap the tamper
library of :mod:`repro.network.faults`.  Both registries are keyed by
short stable names so campaign configs, reports, and repro command
lines stay readable and forward-compatible.

A strategy declares its *expected cut-and-choose survival probability*
(under no network fault): exactly ``2^-num_checks`` for the improper
strategies (Claim 1 is tight), ``1.0`` for the proper ones.  The
invariant checkers key off these declarations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.core.adversaries import (
    dependent_input_material,
    guessing_cheater_material,
    jamming_material,
    targeted_material,
    zero_material,
)
from repro.core.layout import ProverMaterial
from repro.core.params import AnonChanParams
from repro.network.faults import (
    Tamper,
    compose_tampers,
    crash_after,
    drop_messages,
    flip_integers,
    garble_everything,
)
from repro.vss.base import VSSCost

MaterialBuilder = Callable[
    [AnonChanParams, int, random.Random], "ProverMaterial | None"
]


@dataclass(frozen=True)
class StrategySpec:
    """One adversary strategy: how corrupted provers commit in step 1.

    ``survival_p(params)`` is the exact probability that the committed
    vector survives cut-and-choose in a fault-free run (``None`` when
    no such closed form is claimed).  ``improper`` marks strategies
    whose committed vector would break ``|Y| <= n`` if it survived.
    """

    name: str
    description: str
    build: MaterialBuilder
    improper: bool = False
    min_d: int = 1

    def survival_p(self, params: AnonChanParams) -> float:
        if self.improper:
            return params.cheater_survival_bound()
        return 1.0


def _honest(params: AnonChanParams, pid: int, rng: random.Random) -> None:
    return None


def _guessing(
    params: AnonChanParams, pid: int, rng: random.Random
) -> ProverMaterial:
    f = params.field
    return guessing_cheater_material(params, [f(1), f(2)], rng)


def _jamming(
    params: AnonChanParams, pid: int, rng: random.Random
) -> ProverMaterial:
    return jamming_material(params, rng)


def _zero(
    params: AnonChanParams, pid: int, rng: random.Random
) -> ProverMaterial:
    return zero_material(params, rng)


def _targeted(
    params: AnonChanParams, pid: int, rng: random.Random
) -> ProverMaterial:
    indices = list(range(params.d))
    return targeted_material(params, params.field(7), indices, rng)


def _dependent(
    params: AnonChanParams, pid: int, rng: random.Random
) -> ProverMaterial:
    return dependent_input_material(params, params.field(5), rng)


#: name -> strategy (the adversary axis).  "honest" means the corrupted
#: parties run the unmodified protocol (useful as the fault axis' base).
STRATEGIES: dict[str, StrategySpec] = {
    spec.name: spec
    for spec in [
        StrategySpec(
            name="honest",
            description="corrupted parties follow the protocol verbatim",
            build=_honest,
        ),
        StrategySpec(
            name="guessing-cheater",
            description=(
                "optimal improper-vector cheater: guesses every "
                "challenge bit (Claim 1's tight bound)"
            ),
            build=_guessing,
            improper=True,
            min_d=2,
        ),
        StrategySpec(
            name="jamming",
            description="dense random vector (DC-net jammer), bit-0 only",
            build=_jamming,
            improper=True,
        ),
        StrategySpec(
            name="zero",
            description="all-zero vector: passes both branches, adds nothing",
            build=_zero,
        ),
        StrategySpec(
            name="targeted",
            description="proper vector at adversary-chosen indices",
            build=_targeted,
        ),
        StrategySpec(
            name="dependent-input",
            description="proper vector replaying a known message value",
            build=_dependent,
        ),
    ]
}


@dataclass(frozen=True)
class FaultSpec:
    """One network-fault model, applied to corrupted parties' outputs.

    ``build(params, cost, rng)`` returns the tamper function (or
    ``None`` for the fault-free cell); crash points are resolved
    against the VSS cost profile at build time so "mid" and "late"
    track the actual round schedule.
    """

    name: str
    description: str
    build: Callable[
        [AnonChanParams, VSSCost, random.Random], "Tamper | None"
    ]


def _no_fault(
    params: AnonChanParams, cost: VSSCost, rng: random.Random
) -> None:
    return None


def _drop_half(
    params: AnonChanParams, cost: VSSCost, rng: random.Random
) -> Tamper:
    return drop_messages(0.5, rng)


def _crash_share(
    params: AnonChanParams, cost: VSSCost, rng: random.Random
) -> Tamper:
    return crash_after(0)  # silent from round zero: never deals


def _crash_mid(
    params: AnonChanParams, cost: VSSCost, rng: random.Random
) -> Tamper:
    return crash_after(cost.share_rounds)  # deals honestly, then dies


def _crash_late(
    params: AnonChanParams, cost: VSSCost, rng: random.Random
) -> Tamper:
    return crash_after(cost.share_rounds + 4)  # dies before the transfer


def _flip(
    params: AnonChanParams, cost: VSSCost, rng: random.Random
) -> Tamper:
    return flip_integers(0x7)


def _garble(
    params: AnonChanParams, cost: VSSCost, rng: random.Random
) -> Tamper:
    return garble_everything()


def _drop_flip(
    params: AnonChanParams, cost: VSSCost, rng: random.Random
) -> Tamper:
    return compose_tampers(drop_messages(0.3, rng), flip_integers(1))


#: name -> fault (the network-fault axis).
FAULTS: dict[str, FaultSpec] = {
    spec.name: spec
    for spec in [
        FaultSpec("none", "fault-free network behaviour", _no_fault),
        FaultSpec(
            "drop-half",
            "drop each outgoing private payload w.p. 1/2",
            _drop_half,
        ),
        FaultSpec(
            "crash-share",
            "silent from round zero (masked by ideal-VSS redundancy)",
            _crash_share,
        ),
        FaultSpec(
            "crash-mid",
            "deal honestly, then crash right after the sharing phase",
            _crash_mid,
        ),
        FaultSpec(
            "crash-late",
            "crash just before the private transfer to the receiver",
            _crash_late,
        ),
        FaultSpec("flip", "XOR a bit mask into every integer payload", _flip),
        FaultSpec("garble", "replace every payload with junk", _garble),
        FaultSpec(
            "drop+flip",
            "drop 30% of payloads and bit-flip the rest",
            _drop_flip,
        ),
    ]
}
