"""Executing campaign configs: seeded trials, evidence, and verdicts.

``run_config`` executes every trial of one :class:`CampaignConfig`
through :func:`repro.core.run_anonchan`, gathers a
:class:`~repro.testkit.invariants.ConfigEvidence`, and evaluates the
checker registry.  Three kinds of extra instrumentation ride on top of
the plain trials:

- trial 0 carries an :class:`repro.obs.Tracer`, and its event stream is
  diffed against the static round-schedule prediction via
  :class:`repro.obs.RunReport` (the ``schedule-conformance`` checker),
  against the analytic communication envelope via
  :class:`repro.obs.CommReport` (the ``comm-conformance`` checker), and
  against the latency model's expected makespan via
  :class:`repro.obs.TimingReport` (the ``timing-conformance`` checker);
- every trial keeps its communication metrics (rounds, broadcast
  rounds, messages, wire elements) on its :class:`TrialOutcome`, from
  which :mod:`repro.testkit.telemetry` builds the campaign JSONL store;
- trial 0 also runs a *permuted twin*: the same seed with two honest
  senders' messages swapped, whose receiver view must be
  indistinguishable from the original (the ``anonymity`` checker);
- all corruption randomness (attack materials, fault tampers) is
  derived from the trial seed via :func:`derive_seed`, so a campaign is
  a pure function of ``(configs, campaign_seed)``.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable, Iterable, Sequence

from repro.core.anonchan import AnonChan, AnonChanOutput, run_anonchan
from repro.fields import FieldElement
from repro.network import PassiveAdversary, TamperingAdversary
from repro.obs import CommReport, RunReport, TimingReport, Tracer
from repro.vss import IdealVSS

from .axes import FAULTS, STRATEGIES
from .config import CampaignConfig, derive_seed
from .invariants import (
    CheckOutcome,
    ConfigEvidence,
    InvariantChecker,
    TrialOutcome,
    default_registry,
)


@dataclass
class ConfigResult:
    """One campaign cell: the evidence plus every checker's verdict."""

    config: CampaignConfig
    config_seed: int
    evidence: ConfigEvidence
    outcomes: list[CheckOutcome]
    runs: int
    duration_ms: float = 0.0

    @property
    def violations(self) -> list[CheckOutcome]:
        return [o for o in self.outcomes if o.applicable and not o.passed]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self, include_trials: bool = False) -> dict[str, Any]:
        data: dict[str, Any] = {
            "config": self.config.to_dict(),
            "config_seed": self.config_seed,
            "runs": self.runs,
            "duration_ms": round(self.duration_ms, 3),
            "ok": self.ok,
            "checks": [o.to_dict() for o in self.outcomes],
            "violations": [o.invariant for o in self.violations],
        }
        if include_trials:
            data["trials"] = [t.to_dict() for t in self.evidence.trials]
        return data


def _corrupted_ids(config: CampaignConfig) -> tuple[int, ...]:
    """The highest ``corrupt_count`` party ids (receiver 0 stays honest)."""
    return tuple(range(config.n - config.corrupt_count, config.n))


def _messages(params, pids: Iterable[int]) -> dict[int, FieldElement]:
    """Distinct, party-identifying message values (pid + 1)."""
    field = params.field
    return {pid: field(pid + 1) for pid in pids}


def _adversary_factory(
    config: CampaignConfig,
    corrupted: tuple[int, ...],
    messages: dict[int, FieldElement],
    seed: int,
    vss_cost,
) -> Callable | None:
    """A ``run_anonchan`` adversary_factory for this config's axes.

    Corrupted parties run the real protocol code with attack *material*
    from the strategy axis, wrapped in a tampering adversary when the
    fault axis is active.  Program rngs replicate ``run_anonchan``'s
    honest derivation ``Random((seed << 16) | pid)``; material and
    tamper rngs hang off the trial seed via :func:`derive_seed` so the
    trial stays a pure function of its seed.
    """
    if not corrupted:
        return None
    strategy = STRATEGIES[config.strategy]
    fault = FAULTS[config.fault]

    def factory(protocol: AnonChan, session) -> Any:
        params = protocol.params
        programs = {}
        for pid in corrupted:
            material = strategy.build(
                params, pid, random.Random(derive_seed("material", seed, pid))
            )
            programs[pid] = protocol.party_program(
                pid,
                session,
                messages.get(pid),
                random.Random((seed << 16) | pid),
                material=material,
            )
        tamper = fault.build(
            params, vss_cost, random.Random(derive_seed("fault", seed))
        )
        if tamper is None:
            return PassiveAdversary(set(corrupted), programs)
        return TamperingAdversary(set(corrupted), programs, tamper)

    return factory


def _receiver_output(outputs: dict[int, AnonChanOutput]) -> AnonChanOutput:
    out = outputs.get(0)
    if out is None or out.output is None:
        raise RuntimeError("receiver (party 0) produced no output")
    return out


def _agreement(outputs: dict[int, AnonChanOutput]) -> bool:
    views = [
        (o.vss_qualified, o.passed, o.challenge)
        for o in outputs.values()
    ]
    return all(v == views[0] for v in views[1:])


def _delivered(
    output: Counter, messages: dict[int, FieldElement], honest: Sequence[int]
) -> bool:
    """All honest messages present in Y (whose keys are encoded ints)."""
    return all(output.get(messages[pid].value, 0) >= 1 for pid in honest)


def _collision_free(output: Counter, sent: Counter) -> bool:
    """True when ``Y`` holds only sent values, at most once per send.

    A coordinate hit by several darts reconstructs to the GF-sum of the
    colliding payloads; when its tag half coincidentally validates
    (probability ``~2^-kappa`` per collision) the sum enters ``Y`` as a
    garbage entry whose *value depends on the colliding messages*.
    Such entries are legitimately permutation-sensitive, so they must
    be excluded before comparing receiver views.
    """
    return all(sent.get(value, 0) >= count for value, count in output.items())


def _metrics_fingerprint(result) -> tuple[int, int, int, int, int]:
    m = result.metrics
    return (
        m.rounds,
        m.broadcast_rounds,
        m.broadcasts_sent,
        m.private_messages,
        m.field_elements_sent,
    )


def run_config(
    config: CampaignConfig,
    campaign_seed: int = 0,
    registry: dict[str, InvariantChecker] | None = None,
) -> ConfigResult:
    """Run every trial of one config and evaluate the checker registry."""
    config.validate()
    if registry is None:
        registry = default_registry()
    started = time.perf_counter()
    params = config.params()
    vss = IdealVSS(params.field, params.n, params.t)
    corrupted = _corrupted_ids(config)
    honest = [pid for pid in range(config.n) if pid not in corrupted]
    messages = _messages(params, range(config.n))
    config_seed = config.config_seed(campaign_seed)

    trials: list[TrialOutcome] = []
    schedule_ok: bool | None = None
    schedule_divergences: list[str] = []
    comm_ok: bool | None = None
    comm_divergences: list[str] = []
    timing_ok: bool | None = None
    timing_divergences: list[str] = []
    runs = 0
    for trial in range(config.trials):
        seed = config.trial_seed(campaign_seed, trial)
        factory = _adversary_factory(
            config, corrupted, messages, seed, vss.cost
        )
        tracer = Tracer() if trial == 0 else None
        result = run_anonchan(
            params,
            vss,
            messages,
            receiver=0,
            seed=seed,
            adversary_factory=factory,
            tracer=tracer,
            transport=config.transport,
        )
        runs += 1
        recv = _receiver_output(result.outputs)
        assert recv.output is not None
        delivered = _delivered(recv.output, messages, honest)

        if tracer is not None:
            report = RunReport.from_events(tracer.events)
            schedule_ok = report.matches_prediction
            schedule_divergences = list(report.divergences)
            comm = CommReport.from_events(tracer.events)
            comm_ok = comm.matches_prediction
            comm_divergences = list(comm.divergences) + list(comm.consistency)
            timing_ok, timing_divergences = _timing_conformance(
                tracer, result.metrics.makespan_ms
            )

        anonymity_ok: bool | None = None
        if trial == 0:
            anonymity_ok, extra = _anonymity_probe(
                config, params, vss, corrupted, honest, messages, seed,
                result, delivered,
            )
            runs += extra

        metrics = result.metrics
        trials.append(
            TrialOutcome(
                trial=trial,
                seed=seed,
                challenge=recv.challenge.value,
                qualified=tuple(sorted(recv.vss_qualified)),
                surviving=tuple(sorted(set(corrupted) & recv.passed)),
                honest_delivered=delivered,
                output_total=sum(recv.output.values()),
                agreement=_agreement(result.outputs),
                anonymity_ok=anonymity_ok,
                rounds=metrics.rounds,
                broadcast_rounds=metrics.broadcast_rounds,
                private_messages=metrics.private_messages,
                field_elements_sent=metrics.field_elements_sent,
                makespan_ms=metrics.makespan_ms,
            )
        )

    evidence = ConfigEvidence(
        config=config,
        params=params,
        corrupted=corrupted,
        trials=trials,
        schedule_ok=schedule_ok,
        schedule_divergences=schedule_divergences,
        comm_ok=comm_ok,
        comm_divergences=comm_divergences,
        timing_ok=timing_ok,
        timing_divergences=timing_divergences,
    )
    outcomes = [checker.evaluate(evidence) for checker in registry.values()]
    return ConfigResult(
        config=config,
        config_seed=config_seed,
        evidence=evidence,
        outcomes=outcomes,
        runs=runs,
        duration_ms=(time.perf_counter() - started) * 1e3,
    )


def _timing_conformance(
    tracer: Tracer, runtime_makespan_ms: float
) -> tuple[bool, list[str]]:
    """Check the traced trial's virtual-time stamps for self-consistency.

    Both transports stamp v4 virtual times, so a traced trial *must*
    carry them; the trace-derived makespan must agree with the
    runtime's own :class:`~repro.network.metrics.ProtocolMetrics`
    accounting; round windows must be monotone; and when the analytic
    prediction is computable the observed makespan must sit within the
    report's tolerance.
    """
    report = TimingReport.from_events(tracer.events)
    divergences: list[str] = []
    if not report.has_timing:
        return False, ["traced trial carries no virtual-time stamps"]
    if abs(report.makespan_ms - runtime_makespan_ms) > 1e-6:
        divergences.append(
            f"trace makespan {report.makespan_ms:.6f} ms != runtime "
            f"accounting {runtime_makespan_ms:.6f} ms"
        )
    for window in report.rounds:
        if window.t_end < window.t_start:
            divergences.append(
                f"round {window.round_index}: non-monotone window "
                f"[{window.t_start:.6f}, {window.t_end:.6f}]"
            )
    if report.predicted_makespan_ms is not None and not report.makespan_ok:
        divergences.append(
            f"observed makespan {report.makespan_ms:.3f} ms diverges "
            f"{report.makespan_delta:+.1%} from predicted "
            f"{report.predicted_makespan_ms:.3f} ms "
            f"(tolerance ±{report.tolerance:.0%})"
        )
    return not divergences, divergences


def _anonymity_probe(
    config: CampaignConfig,
    params,
    vss,
    corrupted: tuple[int, ...],
    honest: Sequence[int],
    messages: dict[int, FieldElement],
    seed: int,
    original,
    original_delivered: bool,
) -> tuple[bool | None, int]:
    """Re-run the trial with two honest senders' messages swapped.

    The honest protocol code's randomness is message-value-independent
    (dart placement, tags, and payload sizes never look at the message),
    so with the same seed the receiver's multiset ``Y`` and all public
    traffic accounting must be identical under any permutation of the
    honest inputs — that is anonymity as permutation-
    indistinguishability of the receiver view.  The traffic fingerprint
    is compared unconditionally; ``Y`` is compared only when both runs
    fully delivered the honest messages *and* both are collision-free,
    because which parties lose messages is placement-dependent (so a
    partial ``Y`` legitimately tracks the permutation) and collision-
    minted garbage entries are GF-sums of the colliding payloads (so
    their values legitimately change too — see :func:`_collision_free`).
    Returns ``(verdict | None, extra protocol runs)``.
    """
    swappable = [pid for pid in honest if pid != 0]
    if len(swappable) < 2:
        return None, 0
    a, b = swappable[0], swappable[1]
    permuted = dict(messages)
    permuted[a], permuted[b] = permuted[b], permuted[a]
    factory = _adversary_factory(config, corrupted, permuted, seed, vss.cost)
    twin = run_anonchan(
        params,
        vss,
        permuted,
        receiver=0,
        seed=seed,
        adversary_factory=factory,
        tracer=None,
        transport=config.transport,
    )
    ok = _metrics_fingerprint(twin) == _metrics_fingerprint(original)
    twin_recv = _receiver_output(twin.outputs)
    orig_recv = _receiver_output(original.outputs)
    assert twin_recv.output is not None and orig_recv.output is not None
    twin_delivered = _delivered(twin_recv.output, permuted, honest)
    sent = Counter(m.value for m in messages.values())
    if (
        original_delivered
        and twin_delivered
        and _collision_free(orig_recv.output, sent)
        and _collision_free(twin_recv.output, sent)
    ):
        ok = ok and (orig_recv.output == twin_recv.output)
    return ok, 1


def run_campaign(
    configs: Sequence[CampaignConfig],
    campaign_seed: int = 0,
    registry: dict[str, InvariantChecker] | None = None,
    budget: int | None = None,
    progress: Callable[[ConfigResult], None] | None = None,
) -> tuple[list[ConfigResult], list[CampaignConfig]]:
    """Run a grid of configs under an optional protocol-run budget.

    ``budget`` caps the *total number of protocol executions* (trials
    plus anonymity twins) across the campaign; once exhausted the
    remaining configs are returned unexecuted in the second element.
    The cap is in runs, not wall-clock, so a budgeted campaign is still
    a deterministic function of its seed.
    """
    if registry is None:
        registry = default_registry()
    results: list[ConfigResult] = []
    skipped: list[CampaignConfig] = []
    spent = 0
    for i, config in enumerate(configs):
        if budget is not None and spent >= budget:
            skipped.extend(configs[i:])
            break
        result = run_config(config, campaign_seed, registry)
        spent += result.runs
        results.append(result)
        if progress is not None:
            progress(result)
    return results, skipped
