"""Campaign reports: JSON evidence with embedded repro command lines.

A :class:`CampaignReport` serializes one conformance campaign — every
config's checker verdicts, the per-trial evidence of violating cells,
the shrink traces, and for each violation a shell command that re-runs
exactly that cell (same config JSON, same campaign seed) so a failure
found by CI or the nightly sweep reproduces locally with one paste.

Reports are deterministic modulo two volatile fields (``generated_at``
and ``duration_ms``); :func:`canonical_report_json` strips them
recursively, so two campaigns with the same grid and seed compare
byte-identical.
"""

from __future__ import annotations

import json
import shlex
import time
from dataclasses import dataclass, field as dc_field
from typing import Any

from .config import CampaignConfig
from .runner import ConfigResult
from .shrink import ShrinkResult

#: Version of the campaign-report JSON layout.
CAMPAIGN_REPORT_VERSION = 1

#: Report fields that vary run-to-run and are excluded from the
#: canonical (comparison) form.
VOLATILE_FIELDS = frozenset({"generated_at", "duration_ms"})


def repro_command(
    config: CampaignConfig,
    campaign_seed: int = 0,
    selftest_break: str | None = None,
) -> str:
    """A shell command that re-runs exactly this campaign cell."""
    parts = [
        "python",
        "-m",
        "repro",
        "conformance",
        "--config",
        config.to_json(),
        "--seed",
        str(campaign_seed),
        "--no-shrink",
    ]
    if selftest_break:
        parts += ["--selftest-break", selftest_break]
    return " ".join(shlex.quote(p) for p in parts)


def _strip_volatile(node: Any) -> Any:
    if isinstance(node, dict):
        return {
            k: _strip_volatile(v)
            for k, v in node.items()
            if k not in VOLATILE_FIELDS
        }
    if isinstance(node, list):
        return [_strip_volatile(v) for v in node]
    return node


def canonical_report_json(report: "CampaignReport | dict[str, Any]") -> str:
    """The report as key-sorted JSON with volatile fields removed.

    Two campaigns over the same grid and seed produce byte-identical
    canonical JSON; the determinism tests (and any caching layer)
    compare this form.
    """
    data = report.to_dict() if isinstance(report, CampaignReport) else report
    return json.dumps(_strip_volatile(data), indent=2, sort_keys=True)


@dataclass
class CampaignReport:
    """One campaign: grid, verdicts, evidence, shrinks, repro lines."""

    grid: str
    campaign_seed: int
    results: list[ConfigResult]
    skipped: list[CampaignConfig] = dc_field(default_factory=list)
    shrinks: list[ShrinkResult] = dc_field(default_factory=list)
    budget: int | None = None
    selftest_break: str | None = None
    generated_at: str = ""
    duration_ms: float = 0.0

    def __post_init__(self) -> None:
        if not self.generated_at:
            self.generated_at = time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            )

    # ------------------------------------------------------------------
    @property
    def violating(self) -> list[ConfigResult]:
        return [r for r in self.results if not r.ok]

    @property
    def ok(self) -> bool:
        return not self.violating

    @property
    def total_runs(self) -> int:
        return sum(r.runs for r in self.results)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        configs = []
        for result in self.results:
            entry = result.to_dict(include_trials=not result.ok)
            if not result.ok:
                entry["repro"] = repro_command(
                    result.config, self.campaign_seed, self.selftest_break
                )
            configs.append(entry)
        shrinks = []
        for shrink in self.shrinks:
            entry = shrink.to_dict()
            entry["repro"] = repro_command(
                shrink.minimal, self.campaign_seed, self.selftest_break
            )
            shrinks.append(entry)
        return {
            "version": CAMPAIGN_REPORT_VERSION,
            "grid": self.grid,
            "campaign_seed": self.campaign_seed,
            "budget": self.budget,
            "selftest_break": self.selftest_break,
            "generated_at": self.generated_at,
            "duration_ms": round(self.duration_ms, 3),
            "totals": {
                "configs": len(self.results),
                "skipped": len(self.skipped),
                "runs": self.total_runs,
                "violating_configs": len(self.violating),
                "ok": self.ok,
            },
            "configs": configs,
            "skipped": [c.to_dict() for c in self.skipped],
            "shrinks": shrinks,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """Human-readable campaign summary for the CLI."""
        lines = [
            f"conformance campaign — grid={self.grid} "
            f"seed={self.campaign_seed}",
            f"configs: {len(self.results)} run, {len(self.skipped)} "
            f"skipped (budget), {self.total_runs} protocol executions, "
            f"{self.duration_ms / 1e3:.1f}s",
        ]
        if self.selftest_break:
            lines.append(
                f"NOTE: self-test checker {self.selftest_break!r} injected "
                "(always fails; for exercising the shrink/repro pipeline)"
            )
        lines.append("")
        for result in self.results:
            mark = "ok " if result.ok else "FAIL"
            suffix = ""
            if not result.ok:
                suffix = "  <- " + ", ".join(
                    o.invariant for o in result.violations
                )
            lines.append(
                f"  [{mark}] {result.config.name:<40} "
                f"trials={result.config.trials:<4}{suffix}"
            )
        claim1 = [
            (r, o)
            for r in self.results
            for o in r.outcomes
            if o.invariant == "claim1-survival" and o.applicable
        ]
        if claim1:
            lines.append("")
            lines.append(
                "claim 1 survival (observed vs 2^-num_checks, "
                "exact binomial tolerance):"
            )
            for result, outcome in claim1:
                stats = outcome.stats
                lines.append(
                    f"  {result.config.name:<40} "
                    f"{stats['survived']:>4}/{stats['trials']:<4} "
                    f"observed={stats['observed_rate']:.4f} "
                    f"expected={stats['expected_rate']:.4f} "
                    f"tail={stats['tail_probability']:.3g}"
                )
        for result in self.violating:
            lines.append("")
            lines.append(f"VIOLATION in {result.config.name}:")
            for outcome in result.violations:
                lines.append(f"  - {outcome.invariant}: {outcome.message}")
            lines.append(
                "  repro: "
                + repro_command(
                    result.config, self.campaign_seed, self.selftest_break
                )
            )
        for shrink in self.shrinks:
            lines.append("")
            lines.append(
                f"shrunk {shrink.original.name} "
                f"({shrink.invariant}, {shrink.attempts} attempts):"
            )
            for step in shrink.steps:
                lines.append(f"  * {step}")
            lines.append(f"  minimal: {shrink.minimal.key()}")
            lines.append(
                "  repro: "
                + repro_command(
                    shrink.minimal, self.campaign_seed, self.selftest_break
                )
            )
        lines.append("")
        lines.append(
            "verdict: "
            + ("all invariants hold" if self.ok else "INVARIANT VIOLATIONS")
        )
        return "\n".join(lines)
