"""Campaign configurations and the deterministic seed policy.

A :class:`CampaignConfig` pins one cell of the conformance grid: the
protocol parameters ``(n, t, d, ell, kappa, num_checks)``, the
adversary strategy, the network fault, the field/kernel substrate, how
many corrupted parties carry the strategy, and how many seeded trials
to run.  Every piece of randomness in a campaign is derived from the
campaign seed and the config's canonical :meth:`~CampaignConfig.key`
via SHA-256 (:func:`derive_seed`), so a campaign is a pure function of
``(grid, campaign_seed)`` — re-running it reproduces every trial, and
the JSON report embeds enough to re-run any single cell.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping

from repro.core.params import AnonChanParams


def derive_seed(*parts: Any) -> int:
    """A 63-bit seed derived from the given parts via SHA-256.

    Stable across processes and Python versions (no reliance on
    ``hash()``); the joined string representation of the parts is the
    preimage, so distinct part tuples give independent-looking seeds.
    """
    preimage = ":".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(preimage).digest()
    return int.from_bytes(digest[:8], "big") >> 1


@dataclass(frozen=True)
class CampaignConfig:
    """One cell of a conformance campaign grid.

    Attributes
    ----------
    name:
        Human label (grids use ``block/cell`` naming); not part of the
        identity key, purely cosmetic.
    n, t, d, ell, kappa, num_checks:
        The :class:`~repro.core.params.AnonChanParams` axes.
    strategy:
        Adversary-strategy axis (a key of
        :data:`repro.testkit.axes.STRATEGIES`).
    fault:
        Network-fault axis (a key of :data:`repro.testkit.axes.FAULTS`),
        applied to the corrupted parties' round outputs.
    substrate:
        Field/kernel substrate axis: the sharing backend
        (``"auto" | "scalar" | "vectorized"``).
    corrupt_count:
        How many parties (the highest non-receiver ids) are corrupted.
    trials:
        Seeded protocol executions to run for this cell.
    transport:
        Transport axis: a registered transport name
        (``"lockstep" | "async"``).  Deliberately *excluded* from
        :meth:`key` — the transport is an execution engine, not a
        protocol identity — so same-shape cells derive the same seeds
        on every transport and run the *same* seeded trials, which is
        exactly the comparison the transport-equivalence suite makes.
        The default also stays out of :meth:`to_dict`, keeping earlier
        campaigns' reports and repro lines byte-stable.
    """

    name: str
    n: int
    t: int
    d: int
    ell: int
    kappa: int
    num_checks: int
    strategy: str = "honest"
    fault: str = "none"
    substrate: str = "auto"
    corrupt_count: int = 0
    trials: int = 2
    transport: str = "lockstep"

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ValueError("need at least one trial per config")
        if self.corrupt_count < 0:
            raise ValueError("corrupt_count must be non-negative")
        if self.corrupt_count > self.t:
            raise ValueError(
                f"corrupt_count {self.corrupt_count} exceeds t={self.t}"
            )
        if self.corrupt_count >= self.n:
            raise ValueError("cannot corrupt every party")
        if (self.strategy != "honest" or self.fault != "none") and (
            self.corrupt_count == 0
        ):
            raise ValueError(
                "an adversarial strategy or network fault needs at least "
                "one corrupted party (corrupt_count >= 1)"
            )

    # ------------------------------------------------------------------
    def params(self) -> AnonChanParams:
        """The AnonChanParams for this cell (raises if invalid)."""
        return AnonChanParams(
            n=self.n,
            t=self.t,
            kappa=self.kappa,
            ell=self.ell,
            d=self.d,
            num_checks=self.num_checks,
            sharing_backend=self.substrate,
        )

    def key(self) -> str:
        """Canonical identity string (the seed-derivation preimage).

        ``name`` (cosmetic) and ``transport`` (execution engine — see
        the attribute docs) are excluded on purpose.
        """
        return (
            f"n={self.n};t={self.t};d={self.d};ell={self.ell};"
            f"kappa={self.kappa};checks={self.num_checks};"
            f"strategy={self.strategy};fault={self.fault};"
            f"substrate={self.substrate};corrupt={self.corrupt_count};"
            f"trials={self.trials}"
        )

    def config_seed(self, campaign_seed: int) -> int:
        """The per-config root seed for a given campaign seed."""
        return derive_seed("config", campaign_seed, self.key())

    def trial_seed(self, campaign_seed: int, trial: int) -> int:
        """The seed of one trial of this config."""
        return derive_seed("trial", self.config_seed(campaign_seed), trial)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        data = asdict(self)
        if self.transport == "lockstep":
            # Default transport stays out of the serialized form so
            # reports and --config repro lines from earlier campaigns
            # round-trip unchanged.
            del data["transport"]
        return data

    def to_json(self) -> str:
        """Compact, key-sorted JSON (used by ``--config`` repro lines)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignConfig":
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown config fields: {sorted(unknown)}")
        missing = {"n", "t", "d", "ell", "kappa", "num_checks"} - set(data)
        if missing:
            raise ValueError(f"config is missing fields: {sorted(missing)}")
        kwargs = dict(data)
        kwargs.setdefault("name", "adhoc")
        return cls(**kwargs)

    @classmethod
    def from_json(cls, text: str) -> "CampaignConfig":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("config JSON must be an object")
        return cls.from_dict(data)

    def with_(self, **changes: Any) -> "CampaignConfig":
        """dataclasses.replace with validation (used by the shrinker)."""
        return replace(self, **changes)

    def validate(self) -> None:
        """Full validation: params constraints plus axis registry lookups.

        Import of the axis registries is deferred to avoid a module
        cycle (axes builds materials from repro.core, which this module
        must stay importable from).
        """
        from repro.network.runtime import TRANSPORTS

        from .axes import FAULTS, STRATEGIES

        self.params()  # raises ValueError on bad protocol parameters
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                f"known: {sorted(TRANSPORTS)}"
            )
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; "
                f"known: {sorted(STRATEGIES)}"
            )
        if self.fault not in FAULTS:
            raise ValueError(
                f"unknown fault {self.fault!r}; known: {sorted(FAULTS)}"
            )
        spec = STRATEGIES[self.strategy]
        if self.d < spec.min_d:
            raise ValueError(
                f"strategy {self.strategy!r} needs d >= {spec.min_d}"
            )
