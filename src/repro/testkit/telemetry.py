"""Campaign telemetry store: per-trial metrics as an append-only JSONL.

Campaigns used to evaluate their invariants and throw the per-trial
communication metrics away.  This module keeps them: every executed
trial becomes one JSONL record tagged with its config name and axes, so
a store appended to by many campaign runs (locally, in CI, nightly)
accumulates a longitudinal record that ``python -m repro dashboard``
renders as per-config aggregates.

Record shape (one JSON object per line)::

    {"stamp": "...", "campaign_seed": 0, "config": "mini/passive/...",
     "strategy": "passive", "fault": "none", "substrate": "gf2k",
     "n": 5, "trial": 0, "seed": 12345, "rounds": 10,
     "broadcast_rounds": 2, "private_messages": 24,
     "field_elements_sent": 53928, "makespan_ms": 0.0,
     "honest_delivered": true, "ok": true}

The store is tolerant by construction: unknown keys are preserved,
missing files read as empty, and torn/malformed lines are skipped — a
shared file appended to by concurrent CI runs must never poison the
dashboard.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .runner import ConfigResult


def trial_records(
    result: "ConfigResult",
    campaign_seed: int = 0,
    stamp: str | None = None,
) -> list[dict[str, Any]]:
    """Flatten one :class:`~repro.testkit.runner.ConfigResult` to records."""
    if stamp is None:
        stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    config = result.config
    records = []
    for trial in result.evidence.trials:
        records.append(
            {
                "stamp": stamp,
                "campaign_seed": campaign_seed,
                "config": config.name,
                "strategy": config.strategy,
                "fault": config.fault,
                "substrate": config.substrate,
                "n": config.n,
                "trial": trial.trial,
                "seed": trial.seed,
                "rounds": trial.rounds,
                "broadcast_rounds": trial.broadcast_rounds,
                "private_messages": trial.private_messages,
                "field_elements_sent": trial.field_elements_sent,
                "makespan_ms": trial.makespan_ms,
                "honest_delivered": trial.honest_delivered,
                "ok": result.ok,
            }
        )
    return records


class TelemetryStore:
    """Append-only JSONL store of per-trial campaign telemetry."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def append(self, records: Iterable[Mapping[str, Any]]) -> int:
        """Append records as JSONL lines; returns the number written."""
        count = 0
        with open(self.path, "a", encoding="utf-8") as fh:
            for record in records:
                fh.write(json.dumps(dict(record), sort_keys=True))
                fh.write("\n")
                count += 1
        return count

    def append_results(
        self,
        results: "Iterable[ConfigResult]",
        campaign_seed: int = 0,
        stamp: str | None = None,
    ) -> int:
        """Append every trial of every result; returns lines written."""
        if stamp is None:
            stamp = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        total = 0
        for result in results:
            total += self.append(
                trial_records(result, campaign_seed, stamp=stamp)
            )
        return total

    def load(self) -> list[dict[str, Any]]:
        """All readable records, in file order; missing file reads empty."""
        records: list[dict[str, Any]] = []
        try:
            fh = open(self.path, "r", encoding="utf-8")
        except OSError:
            return records
        with fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(data, dict):
                    records.append(data)
        return records
