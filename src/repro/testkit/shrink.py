"""Shrinking a violating config to a locally-minimal reproducer.

When a campaign cell violates an invariant, the raw config is usually
far bigger than the bug needs.  ``shrink_config`` greedily walks the
config's axes — fault removed, strategy -> honest, fewer corrupted
parties, fewer parties, fewer checks, smaller ``d``/``ell``/``kappa``,
default substrate, fewer trials — re-running the candidate after each
step and keeping it only if the *same* invariant still fires.  The
result is locally minimal: no single axis step reproduces the
violation on a smaller config.

Shrinking is deterministic (candidates are tried in a fixed order and
each run derives all randomness from the campaign seed) and budgeted
(``max_attempts`` candidate evaluations), so a shrink that converged
once converges identically on re-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from .axes import STRATEGIES
from .config import CampaignConfig
from .invariants import InvariantChecker
from .runner import run_config


@dataclass
class ShrinkResult:
    """Outcome of one shrink: the minimal config and the path to it."""

    original: CampaignConfig
    minimal: CampaignConfig
    invariant: str
    steps: list[str]
    attempts: int
    runs: int
    exhausted: bool = False

    @property
    def shrank(self) -> bool:
        return self.minimal != self.original

    def to_dict(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "original": self.original.to_dict(),
            "minimal": self.minimal.to_dict(),
            "steps": list(self.steps),
            "attempts": self.attempts,
            "runs": self.runs,
            "exhausted": self.exhausted,
        }


def _try(config: CampaignConfig, **changes: Any) -> CampaignConfig | None:
    """``config.with_(**changes)`` if it yields a valid config."""
    try:
        candidate = config.with_(**changes)
        candidate.validate()
        return candidate
    except ValueError:
        return None


def _candidates(
    config: CampaignConfig,
) -> Iterator[tuple[str, CampaignConfig]]:
    """Single-axis reductions of ``config``, most drastic first."""
    if config.fault != "none":
        c = _try(config, fault="none")
        if c:
            yield "remove the network fault", c
    if config.strategy != "honest":
        c = _try(config, strategy="honest")
        if c:
            yield "replace the strategy with honest behaviour", c
    if config.corrupt_count > 0:
        fewer = config.corrupt_count - 1
        c = _try(config, corrupt_count=fewer)
        if fewer == 0:
            c = _try(config, corrupt_count=0, strategy="honest", fault="none")
        if c:
            yield f"corrupt {fewer} parties instead", c
    if config.n > 3:
        new_n = config.n - 1
        new_t = min(config.t, (new_n - 1) // 2)
        new_corrupt = min(config.corrupt_count, new_t)
        if new_corrupt == config.corrupt_count or config.corrupt_count == 0:
            c = _try(config, n=new_n, t=new_t, corrupt_count=new_corrupt)
            if c:
                yield f"shrink to n={new_n}", c
    if config.t > max(config.corrupt_count, 1):
        c = _try(config, t=config.t - 1)
        if c:
            yield f"lower the corruption bound to t={config.t - 1}", c
    if config.num_checks > 1:
        c = _try(config, num_checks=config.num_checks - 1)
        if c:
            yield f"use {config.num_checks - 1} cut-and-choose checks", c
    min_d = STRATEGIES[config.strategy].min_d
    if config.d // 2 >= min_d and config.d // 2 < config.d:
        c = _try(config, d=config.d // 2)
        if c:
            yield f"halve the dart count to d={config.d // 2}", c
    if config.d - 1 >= min_d:
        c = _try(config, d=config.d - 1)
        if c:
            yield f"drop one dart to d={config.d - 1}", c
    if config.ell // 2 >= config.d:
        c = _try(config, ell=config.ell // 2)
        if c:
            yield f"halve the vector length to ell={config.ell // 2}", c
    if config.kappa > 8:
        c = _try(config, kappa=8)
        if c:
            yield "shrink the field to GF(2^8)", c
    if config.substrate != "auto":
        c = _try(config, substrate="auto")
        if c:
            yield "use the default sharing substrate", c
    if config.trials > 1:
        c = _try(config, trials=max(1, config.trials // 2))
        if c:
            yield f"run {max(1, config.trials // 2)} trials", c


def shrink_config(
    config: CampaignConfig,
    invariant: str,
    campaign_seed: int = 0,
    registry: dict[str, InvariantChecker] | None = None,
    max_attempts: int = 64,
) -> ShrinkResult:
    """Greedily minimize ``config`` while ``invariant`` keeps firing.

    ``registry`` must be the same checker registry that produced the
    original violation (including any test-injected checkers), so the
    acceptance test re-evaluates exactly the failing invariant.
    """

    def still_violates(candidate: CampaignConfig) -> tuple[bool, int]:
        result = run_config(candidate, campaign_seed, registry)
        hit = any(
            o.invariant == invariant and o.applicable and not o.passed
            for o in result.outcomes
        )
        return hit, result.runs

    current = config
    steps: list[str] = []
    attempts = 0
    runs = 0
    exhausted = False
    improved = True
    while improved:
        improved = False
        for description, candidate in _candidates(current):
            if attempts >= max_attempts:
                exhausted = True
                break
            attempts += 1
            hit, spent = still_violates(candidate)
            runs += spent
            if hit:
                current = candidate
                steps.append(f"{description} ({candidate.key()})")
                improved = True
                break
        if exhausted:
            break
    return ShrinkResult(
        original=config,
        minimal=current,
        invariant=invariant,
        steps=steps,
        attempts=attempts,
        runs=runs,
        exhausted=exhausted,
    )
