"""``python -m repro conformance`` — run a conformance campaign.

Runs a named grid (or one ad-hoc ``--config`` cell) through the
invariant-checker registry, prints a campaign summary, optionally
writes the JSON report, shrinks violations to minimal reproducers, and
exits 1 when any invariant fired (2 on usage errors).

``--selftest-break NAME`` injects an always-failing checker under the
given name.  This exists to exercise the violation path end-to-end —
the shrinker, the report, and the embedded repro command line — against
a healthy protocol; the emitted repro command carries the same flag, so
it reproduces the "failure" faithfully.
"""

from __future__ import annotations

import argparse
import sys
import time

from .config import CampaignConfig
from .grids import GRIDS, grid_configs
from .invariants import (
    DEFAULT_ALPHA,
    CheckOutcome,
    ConfigEvidence,
    InvariantChecker,
    default_registry,
)
from .report import CampaignReport, canonical_report_json
from .runner import ConfigResult, run_campaign
from .shrink import shrink_config

#: At most this many violating configs are shrunk per campaign (one per
#: distinct invariant first); shrinking re-runs the protocol many times
#: and one minimal reproducer per failure mode is what a human needs.
MAX_SHRINKS = 5


class SelfTestChecker(InvariantChecker):
    """An intentionally broken checker: fails on every config.

    Used (via ``--selftest-break``) to validate the campaign's failure
    machinery itself — shrinking, report generation, repro commands —
    without needing a real protocol bug.
    """

    description = "intentionally failing self-test checker"

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, ev: ConfigEvidence) -> CheckOutcome:
        return CheckOutcome(
            invariant=self.name,
            applicable=True,
            passed=False,
            stats={"selftest": True, "trials": len(ev.trials)},
            message=(
                "self-test checker injected via --selftest-break "
                "(always fails by design)"
            ),
        )


def build_registry(
    alpha: float = DEFAULT_ALPHA, selftest_break: str | None = None
) -> dict[str, InvariantChecker]:
    registry = default_registry(alpha)
    if selftest_break:
        if selftest_break in registry:
            raise ValueError(
                f"--selftest-break name {selftest_break!r} collides with "
                "a real invariant"
            )
        registry[selftest_break] = SelfTestChecker(selftest_break)
    return registry


def configure_parser(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--grid", default="smoke", choices=sorted(GRIDS),
        help="named campaign grid to run (default: smoke)",
    )
    p.add_argument(
        "--config", metavar="JSON",
        help="run a single ad-hoc config (JSON object; overrides --grid)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; every trial seed derives from it (default 0)",
    )
    p.add_argument(
        "--budget", type=int, default=None, metavar="RUNS",
        help="cap on total protocol executions; excess configs are "
        "skipped deterministically",
    )
    p.add_argument(
        "--report", metavar="PATH",
        help="write the JSON campaign report here",
    )
    p.add_argument(
        "--shrink", action=argparse.BooleanOptionalAction, default=True,
        help="shrink violating configs to minimal reproducers "
        "(default: on; --no-shrink for repro runs)",
    )
    p.add_argument(
        "--alpha", type=float, default=DEFAULT_ALPHA,
        help="statistical tolerance of the binomial checkers "
        f"(default {DEFAULT_ALPHA:g})",
    )
    p.add_argument(
        "--selftest-break", metavar="NAME", default=None,
        help="inject an always-failing checker under NAME (exercises "
        "the shrink/report pipeline against a healthy protocol)",
    )
    p.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="append per-trial telemetry records (JSONL) to this store "
        "(rendered by `python -m repro dashboard`)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="print the canonical JSON report instead of the summary",
    )
    p.add_argument(
        "--transport", metavar="NAME", default=None,
        help="override the transport axis of every cell (e.g. "
        "'async'); seeds are transport-independent, so the overridden "
        "campaign replays the same trials on the other engine",
    )


def cmd_conformance(args: argparse.Namespace) -> int:
    started = time.perf_counter()
    try:
        registry = build_registry(args.alpha, args.selftest_break)
    except ValueError as exc:
        print(f"conformance: {exc}", file=sys.stderr)
        return 2

    if args.config:
        try:
            config = CampaignConfig.from_json(args.config)
            config.validate()
        except ValueError as exc:
            print(f"conformance: bad --config: {exc}", file=sys.stderr)
            return 2
        configs = [config]
        grid_name = "custom"
    else:
        configs = grid_configs(args.grid)
        grid_name = args.grid
    if args.transport:
        try:
            configs = [
                c.with_(transport=args.transport) for c in configs
            ]
            for c in configs:
                c.validate()
        except ValueError as exc:
            print(f"conformance: bad --transport: {exc}", file=sys.stderr)
            return 2

    def progress(result: ConfigResult) -> None:
        mark = "ok" if result.ok else "FAIL"
        print(
            f"  {result.config.name:<44} [{mark}]"
            + (
                ""
                if result.ok
                else " " + ",".join(o.invariant for o in result.violations)
            ),
            file=sys.stderr,
        )

    print(
        f"conformance: running {len(configs)} config(s) of grid "
        f"{grid_name!r} (seed {args.seed})",
        file=sys.stderr,
    )
    results, skipped = run_campaign(
        configs,
        campaign_seed=args.seed,
        registry=registry,
        budget=args.budget,
        progress=progress,
    )

    shrinks = []
    if args.shrink:
        seen_invariants: set[str] = set()
        for result in results:
            if result.ok or len(shrinks) >= MAX_SHRINKS:
                continue
            invariant = result.violations[0].invariant
            if invariant in seen_invariants:
                continue
            seen_invariants.add(invariant)
            print(
                f"conformance: shrinking {result.config.name} "
                f"({invariant}) ...",
                file=sys.stderr,
            )
            shrinks.append(
                shrink_config(
                    result.config,
                    invariant,
                    campaign_seed=args.seed,
                    registry=registry,
                )
            )

    report = CampaignReport(
        grid=grid_name,
        campaign_seed=args.seed,
        results=results,
        skipped=skipped,
        shrinks=shrinks,
        budget=args.budget,
        selftest_break=args.selftest_break,
        duration_ms=(time.perf_counter() - started) * 1e3,
    )
    if args.report:
        with open(args.report, "w", encoding="utf-8") as fh:
            fh.write(report.to_json() + "\n")
        print(f"conformance: report written to {args.report}",
              file=sys.stderr)
    if args.telemetry:
        from .telemetry import TelemetryStore

        written = TelemetryStore(args.telemetry).append_results(
            results, campaign_seed=args.seed
        )
        print(
            f"conformance: appended {written} telemetry record(s) to "
            f"{args.telemetry}",
            file=sys.stderr,
        )
    if args.json:
        print(canonical_report_json(report))
    else:
        print(report.render_text())
    return 0 if report.ok else 1
