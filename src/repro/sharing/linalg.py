"""Dense linear algebra over a finite field.

Gaussian elimination is all the Berlekamp–Welch decoder needs; kept as
its own module because matrix solving over GF(2^k) is also handy in
tests and analysis code.
"""

from __future__ import annotations

from repro.fields import Field


def solve_linear_system(
    field: Field, matrix: list[list[int]], rhs: list[int]
) -> list[int] | None:
    """Solve ``A x = b`` over ``field``; return one solution or ``None``.

    ``matrix`` rows and ``rhs`` hold raw field encodings.  When the
    system is under-determined, free variables are set to zero.  Returns
    ``None`` when the system is inconsistent.
    """
    rows = len(matrix)
    if rows != len(rhs):
        raise ValueError("matrix/rhs size mismatch")
    cols = len(matrix[0]) if rows else 0
    if any(len(r) != cols for r in matrix):
        raise ValueError("ragged matrix")

    a = [list(row) + [b] for row, b in zip(matrix, rhs)]
    pivot_cols: list[int] = []
    r = 0
    for c in range(cols):
        pivot = next((i for i in range(r, rows) if a[i][c] != 0), None)
        if pivot is None:
            continue
        a[r], a[pivot] = a[pivot], a[r]
        inv = field.inv(a[r][c])
        a[r] = [field.mul(v, inv) for v in a[r]]
        for i in range(rows):
            if i != r and a[i][c] != 0:
                factor = a[i][c]
                a[i] = [
                    field.sub(vi, field.mul(factor, vr))
                    for vi, vr in zip(a[i], a[r])
                ]
        pivot_cols.append(c)
        r += 1
        if r == rows:
            break
    # Inconsistency check: a zero row with non-zero rhs.
    for i in range(r, rows):
        if all(v == 0 for v in a[i][:cols]) and a[i][cols] != 0:
            return None
    solution = [0] * cols
    for row_idx, c in enumerate(pivot_cols):
        solution[c] = a[row_idx][cols]
    return solution


def matrix_rank(field: Field, matrix: list[list[int]]) -> int:
    """Rank of a matrix of raw field encodings."""
    rows = [list(r) for r in matrix]
    if not rows:
        return 0
    cols = len(rows[0])
    rank = 0
    for c in range(cols):
        pivot = next((i for i in range(rank, len(rows)) if rows[i][c] != 0), None)
        if pivot is None:
            continue
        rows[rank], rows[pivot] = rows[pivot], rows[rank]
        inv = field.inv(rows[rank][c])
        rows[rank] = [field.mul(v, inv) for v in rows[rank]]
        for i in range(len(rows)):
            if i != rank and rows[i][c] != 0:
                factor = rows[i][c]
                rows[i] = [
                    field.sub(vi, field.mul(factor, vr))
                    for vi, vr in zip(rows[i], rows[rank])
                ]
        rank += 1
        if rank == len(rows):
            break
    return rank
