"""Information Checking Protocol (ICP) — Rabin–Ben-Or check vectors.

The ICP is the unconditional analogue of a signature for the
three-player setting dealer ``D`` / intermediary ``INT`` / receiver
``R`` [RB89]:

- ``D`` holds a value ``s``.  He picks auxiliary randomness ``y`` and a
  key ``(b, c)`` with ``c = s + b * y``, gives ``(s, y)`` to ``INT`` and
  ``(b, c)`` to ``R``.
- Later ``INT`` reveals ``(s, y)`` to ``R``, who accepts iff
  ``c == s + b * y``.

An ``INT`` who wants to open a different value ``s' != s`` must find
``y'`` with ``c = s' + b * y'`` without knowing ``(b, c)``; for each
guess this succeeds with probability ``1/|F|`` (over the uniformly
random ``b``), so the forgery probability is negligible in ``kappa``
for ``F = GF(2^kappa)``.

The scheme is *linear* when the same ``b`` is reused across instances:
``c1 + c2 = (s1 + s2) + b * (y1 + y2)``, so tags and keys of a linear
combination of values are the same linear combination of tags and keys.
This is what lets the VSS layer authenticate shares of *sums* of
secrets without further interaction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.fields import Field, FieldElement


@dataclass(frozen=True)
class ICPTag:
    """INT's side of an ICP instance: the value and auxiliary randomness."""

    value: FieldElement
    aux: FieldElement

    def __add__(self, other: "ICPTag") -> "ICPTag":
        return ICPTag(self.value + other.value, self.aux + other.aux)

    def scale(self, scalar: FieldElement) -> "ICPTag":
        """Tag for ``scalar * value`` (requires scaled key too)."""
        return ICPTag(self.value * scalar, self.aux * scalar)


@dataclass(frozen=True)
class ICPKey:
    """R's side of an ICP instance: the verification key ``(b, c)``."""

    b: FieldElement
    c: FieldElement

    def __add__(self, other: "ICPKey") -> "ICPKey":
        if self.b != other.b:
            raise ValueError(
                "ICP keys combine linearly only when sharing the same b"
            )
        return ICPKey(self.b, self.c + other.c)

    def scale(self, scalar: FieldElement) -> "ICPKey":
        """Key for ``scalar * value``."""
        return ICPKey(self.b, self.c * scalar)


def icp_generate(
    value: FieldElement,
    rng: random.Random,
    b: FieldElement | None = None,
) -> tuple[ICPTag, ICPKey]:
    """Dealer-side generation of an ICP (tag for INT, key for R).

    Passing an explicit ``b`` lets a dealer reuse one ``b`` per
    (INT, R) pair across its parallel instances, which is what makes
    the resulting authentication linear.
    """
    field = value.field
    if b is None:
        b = field.random_nonzero(rng)
    elif not b:
        raise ValueError("ICP key component b must be non-zero")
    y = field.random(rng)
    c = value + b * y
    return ICPTag(value, y), ICPKey(b, c)


def icp_verify(tag: ICPTag, key: ICPKey) -> bool:
    """R's check: accept the opened ``(s, y)`` iff ``c == s + b*y``."""
    return key.c == tag.value + key.b * tag.aux


def icp_combine(
    tags: Sequence[ICPTag],
    keys: Sequence[ICPKey],
    coefficients: Sequence[FieldElement] | None = None,
) -> tuple[ICPTag, ICPKey]:
    """Tag/key of a linear combination of authenticated values.

    All keys must share the same ``b``.  With ``coefficients`` omitted,
    computes the plain sum.
    """
    if len(tags) != len(keys) or not tags:
        raise ValueError("need equally many (>=1) tags and keys")
    if coefficients is None:
        tag = tags[0]
        key = keys[0]
        for t, k in zip(tags[1:], keys[1:]):
            tag = tag + t
            key = key + k
        return tag, key
    if len(coefficients) != len(tags):
        raise ValueError("one coefficient per instance required")
    tag = tags[0].scale(coefficients[0])
    key = keys[0].scale(coefficients[0])
    for t, k, a in zip(tags[1:], keys[1:], coefficients[1:]):
        tag = tag + t.scale(a)
        key = key + k.scale(a)
    return tag, key


def forgery_probability(field: Field, attempts: int = 1) -> float:
    """Upper bound on ICP forgery probability after ``attempts`` tries.

    Each attempted opening of a modified value passes with probability
    at most ``1/|F|`` over the receiver's (secret, uniform) key
    component ``b``; a union bound gives ``attempts / |F|``.
    """
    return min(1.0, attempts / field.order)
