"""Shamir secret sharing over an arbitrary finite field.

The (n, t) scheme hides a secret at ``f(0)`` of a random degree-``t``
polynomial and hands party ``P_i`` the evaluation ``f(alpha_i)``.  Any
``t + 1`` shares reconstruct; any ``t`` reveal nothing.  Linearity —
shares of a (public) linear combination of secrets are the same linear
combination of the shares — is what the paper's step 4 relies on to sum
the dart vectors "for free".

Two execution paths coexist: the scalar reference path (``share``,
``reconstruct``; plain Python field arithmetic, the implementation the
tests treat as ground truth) and a batched path
(:meth:`ShamirScheme.share_vector_batched`,
:meth:`ShamirScheme.reconstruct_batch`) that deals and opens whole
arrays of secrets through the numpy kernels of
:mod:`repro.fields.vectorized`.  The batched path consumes the dealing
``rng`` in exactly the same order as the scalar path, so for a fixed
seed both produce identical shares.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.fields import (
    VECTOR_BACKEND_MODES,
    Field,
    FieldElement,
    Polynomial,
    interpolate_at,
    lagrange_coefficients,
)
from repro.obs.profiler import get_profiler

#: Valid values for the ``backend`` argument of :class:`ShamirScheme`.
BACKEND_MODES = VECTOR_BACKEND_MODES


@dataclass(frozen=True)
class Share:
    """One party's Shamir share: the point ``(x, y)`` on the polynomial."""

    x: FieldElement
    y: FieldElement

    def __add__(self, other: "Share") -> "Share":
        if self.x != other.x:
            raise ValueError("cannot add shares at different evaluation points")
        return Share(self.x, self.y + other.y)

    def scale(self, scalar: FieldElement) -> "Share":
        """The share of ``scalar * secret``."""
        return Share(self.x, self.y * scalar)


class ShamirScheme:
    """An (n, t) Shamir sharing scheme with evaluation points 1..n.

    Parameters
    ----------
    field:
        Field with ``order > n`` (needed for n distinct non-zero points).
    n:
        Number of parties.
    t:
        Degree of the sharing polynomial; any ``t`` shares are
        independent of the secret, ``t + 1`` reconstruct it.
    backend:
        Batch-kernel selection: ``"auto"`` (default) uses the numpy
        backend when the field supports one, ``"vectorized"`` requires
        it (``ValueError`` if unavailable), ``"scalar"`` forces the
        pure-Python reference path.
    """

    def __init__(
        self, field: Field, n: int, t: int, backend: str = "auto"
    ):
        if n < 1:
            raise ValueError(f"need at least one party, got n={n}")
        if not 0 <= t < n:
            raise ValueError(f"threshold t={t} must satisfy 0 <= t < n={n}")
        if field.order <= n:
            raise ValueError(
                f"field of order {field.order} too small for n={n} parties"
            )
        if backend not in BACKEND_MODES:
            raise ValueError(
                f"unknown backend {backend!r}, expected one of {BACKEND_MODES}"
            )
        self.field = field
        self.n = n
        self.t = t
        self.backend = backend
        self.points = [field(i) for i in range(1, n + 1)]
        self._recon_coeffs_full = lagrange_coefficients(field, self.points, 0)
        self._coeff_by_x = {
            point.value: coeff.value
            for point, coeff in zip(self.points, self._recon_coeffs_full)
        }
        self._vector = None
        self._vector_checked = False
        self._vandermonde = None
        self._lagrange_cache: dict[tuple[int, ...], list[int]] = {}
        if backend == "vectorized":
            from repro.fields.vectorized import vector_backend

            self._vector = vector_backend(field)  # raises if unsupported
            self._vector_checked = True

    def _vector_backend(self):
        """Lazily construct the numpy backend per the ``backend`` mode."""
        if self.backend != "vectorized":
            # "auto" honors the scalar-coverage escape hatch; an explicit
            # "vectorized" request still wins so tests can force kernels.
            from repro.fields.vectorized import force_scalar

            if self.backend == "scalar" or force_scalar():
                return None
        if not self._vector_checked:
            self._vector_checked = True
            try:
                from repro.fields.vectorized import vector_backend

                self._vector = vector_backend(self.field)
            except (ValueError, ImportError):
                self._vector = None
        return self._vector

    # -- dealing ---------------------------------------------------------
    def share(
        self, secret: FieldElement, rng: random.Random
    ) -> list[Share]:
        """Deal shares of ``secret`` to all n parties."""
        poly = Polynomial.random(self.field, self.t, rng, constant=secret)
        return [Share(x, poly(x)) for x in self.points]

    def share_with_polynomial(
        self, secret: FieldElement, rng: random.Random
    ) -> tuple[list[Share], Polynomial]:
        """Deal shares and also return the sharing polynomial (dealer view)."""
        poly = Polynomial.random(self.field, self.t, rng, constant=secret)
        return [Share(x, poly(x)) for x in self.points], poly

    def share_vector(
        self, secrets: Sequence[FieldElement], rng: random.Random
    ) -> list[list[Share]]:
        """Deal many secrets in parallel: result[k][i] is P_i's k-th share.

        Dispatches to :meth:`share_vector_batched`, which produces
        shares identical to dealing each secret with :meth:`share` on
        the same rng stream (and falls back to exactly that loop when
        no vector backend is available).
        """
        return self.share_vector_batched(secrets, rng)

    def share_matrix(
        self, secrets: Sequence[int], rng: random.Random
    ) -> "list[list[int]]":
        """Raw batched dealing: row ``k`` holds secret ``k``'s n share values.

        Operates on raw encodings (no ``Share`` wrappers) — this is the
        form the VSS hot path consumes.  The rng stream is consumed
        exactly as by :meth:`share`: ``t + 1`` draws per secret, the
        first overwritten by the secret.
        """
        order = self.field.order
        randrange = rng.randrange
        coeff_rows = []
        for secret in secrets:
            coeffs = [randrange(order) for _ in range(self.t + 1)]
            coeffs[0] = secret
            coeff_rows.append(coeffs)
        prof = get_profiler()
        if prof.enabled:
            prof.count("shamir", "deal", len(coeff_rows))
            prof.observe("shamir", "deal_batch", len(coeff_rows))
        return self.evaluate_matrix(coeff_rows)

    def evaluate_matrix(
        self, coeff_rows: Sequence[Sequence[int]]
    ) -> "list[list[int]]":
        """Evaluate coefficient rows at all n party points (batched)."""
        if not coeff_rows:
            return []
        vec = self._vector_backend()
        prof = get_profiler()
        if vec is None:
            if prof.enabled:
                # field.add/field.mul below route through the per-op
                # instrumented field methods, so fields/* is not counted
                # here — only the fallback marker is.
                prof.count("shamir", "eval_scalar_fallback", len(coeff_rows))
            field = self.field
            add, mul = field.add, field.mul
            xs = [p.value for p in self.points]
            table = []
            for coeffs in coeff_rows:
                row = []
                for x in xs:
                    acc = 0
                    for c in reversed(coeffs):  # Horner
                        acc = add(mul(acc, x), c)
                    row.append(acc)
                table.append(row)
            return table
        import numpy as np

        if prof.enabled:
            prof.count("shamir", "batch_eval", len(coeff_rows))
        if self._vandermonde is None:
            from repro.fields.vectorized import TABLES

            self._vandermonde = TABLES.vandermonde(
                vec, [p.value for p in self.points], self.t
            )
        out = vec.batch_eval(
            np.asarray(coeff_rows, dtype=vec.dtype),
            vandermonde=self._vandermonde,
        )
        return out.tolist()

    def share_vector_batched(
        self, secrets: Sequence[FieldElement], rng: random.Random
    ) -> list[list[Share]]:
        """Batched :meth:`share_vector`: same API, same outputs.

        All sharing polynomials are evaluated at all party points in a
        handful of numpy operations (one Vandermonde accumulation)
        instead of a Python loop per secret.
        """
        field = self.field
        table = self.share_matrix([s.value for s in secrets], rng)
        points = self.points
        return [
            [
                Share(x, FieldElement(field, int(v)))
                for x, v in zip(points, row)
            ]
            for row in table
        ]

    # -- reconstruction ----------------------------------------------------
    def _distinct_shares(self, shares: Sequence[Share]) -> list[Share]:
        """Validate and deduplicate shares by evaluation point.

        Duplicate points carrying the same value collapse to one share;
        conflicting values for one point are a malformed share list and
        raise ``ValueError`` (previously this surfaced as a deep
        ``interpolate_at`` error, or passed silently).
        """
        by_x: dict[int, int] = {}
        unique: list[Share] = []
        for share in shares:
            xv = share.x.value
            prev = by_x.get(xv)
            if prev is None:
                by_x[xv] = share.y.value
                unique.append(share)
            elif prev != share.y.value:
                raise ValueError(
                    f"conflicting shares at evaluation point {share.x!r}"
                )
        return unique

    def reconstruct(self, shares: Sequence[Share]) -> FieldElement:
        """Interpolate the secret from ``>= t + 1`` shares.

        Shares are deduplicated by evaluation point first (conflicting
        duplicates raise ``ValueError``); beyond that they are taken at
        face value.  Use
        :func:`repro.sharing.reedsolomon.berlekamp_welch` (via
        :meth:`reconstruct_robust` of the VSS layer) when some shares
        may be corrupted.
        """
        unique = self._distinct_shares(shares)
        if len(unique) < self.t + 1:
            raise ValueError(
                f"need at least {self.t + 1} shares at distinct points, "
                f"got {len(unique)} (from {len(shares)} shares)"
            )
        pts = [(s.x, s.y) for s in unique[: self.t + 1]]
        return interpolate_at(self.field, pts, 0)

    def reconstruct_all(self, shares: Sequence[Share]) -> FieldElement:
        """Reconstruct from all n shares using cached coefficients.

        Shares may arrive in any order: each is matched to its cached
        Lagrange coefficient by evaluation point.  Shares at unexpected
        or repeated points raise ``ValueError`` (previously a permuted
        share list silently reconstructed the wrong secret).
        """
        if len(shares) != self.n:
            raise ValueError(f"expected {self.n} shares, got {len(shares)}")
        f = self.field
        coeff_by_x = self._coeff_by_x
        seen = set()
        acc = 0
        for share in shares:
            xv = share.x.value
            coeff = coeff_by_x.get(xv)
            if coeff is None:
                raise ValueError(
                    f"share at unexpected evaluation point {share.x!r}"
                )
            if xv in seen:
                raise ValueError(
                    f"duplicate share for evaluation point {share.x!r}"
                )
            seen.add(xv)
            acc = f.add(acc, f.mul(coeff, share.y.value))
        return FieldElement(f, acc)

    def _lagrange_at_zero(self, xs: tuple[int, ...]) -> list[int]:
        """Cached Lagrange-at-zero coefficients for one point set."""
        coeffs = self._lagrange_cache.get(xs)
        if coeffs is None:
            from repro.fields.vectorized import TABLES

            coeffs = TABLES.lagrange_at_zero(self.field, xs)
            self._lagrange_cache[xs] = coeffs
        return coeffs

    def reconstruct_matrix(
        self, rows: Sequence[Sequence[int]], xs: Sequence[int]
    ) -> "list[int]":
        """Raw batched reconstruction: one secret per row of share values.

        ``rows[k][i]`` is the share value at evaluation point ``xs[i]``
        (the same, distinct, ``>= t + 1`` points for every row).  The
        Lagrange coefficients are computed once and all rows are
        recombined in one vectorized dot product — this is the form the
        VSS hot path consumes (no ``Share`` wrappers).
        """
        xs = tuple(xs)
        if len(set(xs)) != len(xs):
            raise ValueError("duplicate evaluation points in share rows")
        if len(xs) < self.t + 1:
            raise ValueError(
                f"need at least {self.t + 1} shares per row, got {len(xs)}"
            )
        coeffs = self._lagrange_at_zero(xs)
        vec = self._vector_backend()
        prof = get_profiler()
        if vec is None:
            if prof.enabled:
                prof.count("shamir", "reconstruct_scalar_fallback", len(rows))
            add, mul = self.field.add, self.field.mul
            results = []
            for row in rows:
                acc = 0
                for c, y in zip(coeffs, row):
                    acc = add(acc, mul(c, y))
                results.append(acc)
            return results
        import numpy as np

        if prof.enabled:
            prof.count("shamir", "reconstruct_batch", len(rows))
        ys = np.asarray(rows, dtype=vec.dtype)
        out = vec.interpolate_at_zero_batch(xs, ys, lagrange=vec.array(coeffs))
        return out.tolist()

    def reconstruct_batch(
        self, share_rows: Sequence[Sequence[Share]]
    ) -> list[FieldElement]:
        """Reconstruct many sharings at once (batched interpolation).

        Every row must hold shares at the *same* evaluation points in
        the same order (any ordering, at least ``t + 1`` distinct
        points); the Lagrange coefficients are computed once and all
        rows are recombined in one vectorized dot product.  Agrees
        exactly with per-row :meth:`reconstruct` /
        :meth:`reconstruct_all`.
        """
        if not share_rows:
            return []
        xs = tuple(s.x.value for s in share_rows[0])
        for row in share_rows[1:]:
            if tuple(s.x.value for s in row) != xs:
                raise ValueError(
                    "all rows must hold shares at the same evaluation "
                    "points in the same order"
                )
        field = self.field
        values = self.reconstruct_matrix(
            [[s.y.value for s in row] for row in share_rows], xs
        )
        return [FieldElement(field, int(v)) for v in values]

    def consistent(self, shares: Sequence[Share]) -> bool:
        """True iff the given shares all lie on one degree <= t polynomial.

        Shares are deduplicated by evaluation point first; conflicting
        duplicates raise ``ValueError`` (previously they could slip
        through the ``len(shares) <= t + 1`` early return unnoticed).
        """
        unique = self._distinct_shares(shares)
        if len(unique) <= self.t + 1:
            return True
        pts = [(s.x, s.y) for s in unique[: self.t + 1]]
        for share in unique[self.t + 1 :]:
            if interpolate_at(self.field, pts, share.x) != share.y:
                return False
        return True

    # -- linearity ----------------------------------------------------------
    @staticmethod
    def add_shares(a: Sequence[Share], b: Sequence[Share]) -> list[Share]:
        """Component-wise sum: shares of ``secret_a + secret_b``."""
        return [sa + sb for sa, sb in zip(a, b)]

    @staticmethod
    def scale_shares(shares: Sequence[Share], scalar: FieldElement) -> list[Share]:
        """Shares of ``scalar * secret``."""
        return [s.scale(scalar) for s in shares]

    def linear_combination(
        self,
        share_rows: Sequence[Sequence[Share]],
        coefficients: Sequence[FieldElement],
    ) -> list[Share]:
        """Shares of ``sum_k coefficients[k] * secret_k``.

        ``share_rows[k]`` must hold all n parties' shares of secret k.
        """
        if len(share_rows) != len(coefficients):
            raise ValueError("one coefficient per share row required")
        f = self.field
        acc = [0] * self.n
        for row, coeff in zip(share_rows, coefficients):
            cv = coeff.value
            for i, share in enumerate(row):
                acc[i] = f.add(acc[i], f.mul(cv, share.y.value))
        return [
            Share(x, FieldElement(f, v)) for x, v in zip(self.points, acc)
        ]
