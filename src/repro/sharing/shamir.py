"""Shamir secret sharing over an arbitrary finite field.

The (n, t) scheme hides a secret at ``f(0)`` of a random degree-``t``
polynomial and hands party ``P_i`` the evaluation ``f(alpha_i)``.  Any
``t + 1`` shares reconstruct; any ``t`` reveal nothing.  Linearity —
shares of a (public) linear combination of secrets are the same linear
combination of the shares — is what the paper's step 4 relies on to sum
the dart vectors "for free".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.fields import (
    Field,
    FieldElement,
    Polynomial,
    interpolate_at,
    lagrange_coefficients,
)


@dataclass(frozen=True)
class Share:
    """One party's Shamir share: the point ``(x, y)`` on the polynomial."""

    x: FieldElement
    y: FieldElement

    def __add__(self, other: "Share") -> "Share":
        if self.x != other.x:
            raise ValueError("cannot add shares at different evaluation points")
        return Share(self.x, self.y + other.y)

    def scale(self, scalar: FieldElement) -> "Share":
        """The share of ``scalar * secret``."""
        return Share(self.x, self.y * scalar)


class ShamirScheme:
    """An (n, t) Shamir sharing scheme with evaluation points 1..n.

    Parameters
    ----------
    field:
        Field with ``order > n`` (needed for n distinct non-zero points).
    n:
        Number of parties.
    t:
        Degree of the sharing polynomial; any ``t`` shares are
        independent of the secret, ``t + 1`` reconstruct it.
    """

    def __init__(self, field: Field, n: int, t: int):
        if n < 1:
            raise ValueError(f"need at least one party, got n={n}")
        if not 0 <= t < n:
            raise ValueError(f"threshold t={t} must satisfy 0 <= t < n={n}")
        if field.order <= n:
            raise ValueError(
                f"field of order {field.order} too small for n={n} parties"
            )
        self.field = field
        self.n = n
        self.t = t
        self.points = [field(i) for i in range(1, n + 1)]
        self._recon_coeffs_full = lagrange_coefficients(field, self.points, 0)

    # -- dealing ---------------------------------------------------------
    def share(
        self, secret: FieldElement, rng: random.Random
    ) -> list[Share]:
        """Deal shares of ``secret`` to all n parties."""
        poly = Polynomial.random(self.field, self.t, rng, constant=secret)
        return [Share(x, poly(x)) for x in self.points]

    def share_with_polynomial(
        self, secret: FieldElement, rng: random.Random
    ) -> tuple[list[Share], Polynomial]:
        """Deal shares and also return the sharing polynomial (dealer view)."""
        poly = Polynomial.random(self.field, self.t, rng, constant=secret)
        return [Share(x, poly(x)) for x in self.points], poly

    def share_vector(
        self, secrets: Sequence[FieldElement], rng: random.Random
    ) -> list[list[Share]]:
        """Deal many secrets in parallel: result[k][i] is P_i's k-th share."""
        return [self.share(s, rng) for s in secrets]

    # -- reconstruction ----------------------------------------------------
    def reconstruct(self, shares: Sequence[Share]) -> FieldElement:
        """Interpolate the secret from ``>= t + 1`` shares.

        No error handling: shares are taken at face value.  Use
        :func:`repro.sharing.reedsolomon.berlekamp_welch` (via
        :meth:`reconstruct_robust` of the VSS layer) when some shares
        may be corrupted.
        """
        if len(shares) < self.t + 1:
            raise ValueError(
                f"need at least {self.t + 1} shares, got {len(shares)}"
            )
        pts = [(s.x, s.y) for s in shares[: self.t + 1]]
        return interpolate_at(self.field, pts, 0)

    def reconstruct_all(self, shares: Sequence[Share]) -> FieldElement:
        """Reconstruct from exactly all n shares using cached coefficients."""
        if len(shares) != self.n:
            raise ValueError(f"expected {self.n} shares, got {len(shares)}")
        f = self.field
        acc = 0
        for coeff, share in zip(self._recon_coeffs_full, shares):
            acc = f.add(acc, f.mul(coeff.value, share.y.value))
        return FieldElement(f, acc)

    def consistent(self, shares: Sequence[Share]) -> bool:
        """True iff the given shares all lie on one degree <= t polynomial."""
        if len(shares) <= self.t + 1:
            return True
        pts = [(s.x, s.y) for s in shares[: self.t + 1]]
        for share in shares[self.t + 1 :]:
            if interpolate_at(self.field, pts, share.x) != share.y:
                return False
        return True

    # -- linearity ----------------------------------------------------------
    @staticmethod
    def add_shares(a: Sequence[Share], b: Sequence[Share]) -> list[Share]:
        """Component-wise sum: shares of ``secret_a + secret_b``."""
        return [sa + sb for sa, sb in zip(a, b)]

    @staticmethod
    def scale_shares(shares: Sequence[Share], scalar: FieldElement) -> list[Share]:
        """Shares of ``scalar * secret``."""
        return [s.scale(scalar) for s in shares]

    def linear_combination(
        self,
        share_rows: Sequence[Sequence[Share]],
        coefficients: Sequence[FieldElement],
    ) -> list[Share]:
        """Shares of ``sum_k coefficients[k] * secret_k``.

        ``share_rows[k]`` must hold all n parties' shares of secret k.
        """
        if len(share_rows) != len(coefficients):
            raise ValueError("one coefficient per share row required")
        f = self.field
        acc = [0] * self.n
        for row, coeff in zip(share_rows, coefficients):
            cv = coeff.value
            for i, share in enumerate(row):
                acc[i] = f.add(acc[i], f.mul(cv, share.y.value))
        return [
            Share(x, FieldElement(f, v)) for x, v in zip(self.points, acc)
        ]
