"""Symmetric bivariate polynomial sharing.

The statistical and perfect VSS backends both deal a secret through a
random symmetric bivariate polynomial ``F(x, y)`` of degree at most
``t`` in each variable with ``F(0, 0) = s``.  Party ``P_i`` receives the
row polynomial ``f_i(y) = F(i, y)``; symmetry gives the pairwise
consistency relation ``f_i(j) = f_j(i)`` that drives the
complaint/accusation phase, and ``f_i(0)`` are Shamir shares of ``s``
on the degree-``t`` polynomial ``F(x, 0)``.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.fields import Field, FieldElement, Polynomial


class SymmetricBivariate:
    """A symmetric bivariate polynomial over a finite field.

    Stored as a symmetric ``(t+1) x (t+1)`` coefficient matrix
    ``c[j][k]`` (raw encodings) with ``F(x, y) = sum c[j][k] x^j y^k``.
    """

    __slots__ = ("field", "t", "coeffs")

    def __init__(self, field: Field, coeffs: list[list[int]]):
        t = len(coeffs) - 1
        if any(len(row) != t + 1 for row in coeffs):
            raise ValueError("coefficient matrix must be square")
        for j in range(t + 1):
            for k in range(j):
                if coeffs[j][k] != coeffs[k][j]:
                    raise ValueError("coefficient matrix must be symmetric")
        self.field = field
        self.t = t
        self.coeffs = coeffs

    @classmethod
    def random(
        cls,
        field: Field,
        t: int,
        secret: FieldElement,
        rng: random.Random,
    ) -> "SymmetricBivariate":
        """Uniformly random symmetric F with degree <= t and F(0,0)=secret."""
        if t < 0:
            raise ValueError("degree must be >= 0")
        coeffs = [[0] * (t + 1) for _ in range(t + 1)]
        for j in range(t + 1):
            for k in range(j, t + 1):
                v = rng.randrange(field.order)
                coeffs[j][k] = v
                coeffs[k][j] = v
        coeffs[0][0] = secret.value
        return cls(field, coeffs)

    def __call__(self, x: FieldElement | int, y: FieldElement | int) -> FieldElement:
        """Evaluate F(x, y)."""
        return self.row(x)(y)

    def row(self, x: FieldElement | int) -> Polynomial:
        """The univariate row polynomial ``f_x(y) = F(x, y)``."""
        f = self.field
        xv = x.value if isinstance(x, FieldElement) else f.encode(x)
        # Evaluate in x per y-power: row_k = sum_j c[j][k] x^j.
        out = []
        for k in range(self.t + 1):
            acc = 0
            power = f.encode(1)
            for j in range(self.t + 1):
                acc = f.add(acc, f.mul(self.coeffs[j][k], power))
                power = f.mul(power, xv)
            out.append(FieldElement(f, acc))
        return Polynomial(f, out)

    def secret(self) -> FieldElement:
        """The shared secret ``F(0, 0)``."""
        return FieldElement(self.field, self.coeffs[0][0])

    def rows(self, xs: Sequence[FieldElement | int]) -> list[Polynomial]:
        """Row polynomials for each evaluation point."""
        return [self.row(x) for x in xs]


def rows_consistent(
    rows: dict[int, Polynomial], points: dict[int, FieldElement]
) -> bool:
    """Check pairwise symmetry ``f_i(j) == f_j(i)`` over the given rows.

    ``rows`` maps party id to its row polynomial and ``points`` maps
    party id to its evaluation point.
    """
    ids = sorted(rows)
    for a_idx, i in enumerate(ids):
        for j in ids[a_idx + 1 :]:
            if rows[i](points[j]) != rows[j](points[i]):
                return False
    return True


def interpolate_bivariate_from_rows(
    field: Field,
    t: int,
    rows: dict[int, Polynomial],
    points: dict[int, FieldElement],
) -> SymmetricBivariate:
    """Recover F from ``t + 1`` row polynomials.

    Each y-coefficient of F's rows is a degree-``t`` polynomial in x, so
    column-wise Lagrange interpolation over any ``t + 1`` rows pins the
    whole coefficient matrix.  Raises ``ValueError`` if fewer than
    ``t + 1`` rows are supplied or the result is not symmetric (i.e. the
    rows did not come from a symmetric bivariate polynomial).
    """
    from repro.fields import lagrange_interpolate

    ids = sorted(rows)[: t + 1]
    if len(ids) < t + 1:
        raise ValueError(f"need {t + 1} rows, got {len(rows)}")
    coeffs = [[0] * (t + 1) for _ in range(t + 1)]
    for k in range(t + 1):
        pts = [(points[i], rows[i].coefficient(k)) for i in ids]
        col = lagrange_interpolate(field, pts)
        if col.degree > t:
            raise ValueError("rows exceed degree bound")
        for j in range(t + 1):
            coeffs[j][k] = col.coefficient(j).value
    # Symmetry check (constructor enforces it).
    return SymmetricBivariate(field, coeffs)
