"""Secret-sharing substrates used by the VSS layer.

- :mod:`~repro.sharing.shamir` — plain (n, t) Shamir sharing.
- :mod:`~repro.sharing.bivariate` — symmetric bivariate sharing (the
  dealing structure of both VSS backends).
- :mod:`~repro.sharing.reedsolomon` — Berlekamp–Welch error-corrected
  reconstruction (robust reconstruction for t < n/3).
- :mod:`~repro.sharing.icp` — Rabin–Ben-Or information checking
  (unconditional share authentication for t < n/2).
"""

from .bivariate import (
    SymmetricBivariate,
    interpolate_bivariate_from_rows,
    rows_consistent,
)
from .icp import (
    ICPKey,
    ICPTag,
    forgery_probability,
    icp_combine,
    icp_generate,
    icp_verify,
)
from .linalg import matrix_rank, solve_linear_system
from .reedsolomon import DecodingError, berlekamp_welch, correct_shares
from .shamir import ShamirScheme, Share

__all__ = [
    "ShamirScheme",
    "Share",
    "SymmetricBivariate",
    "rows_consistent",
    "interpolate_bivariate_from_rows",
    "berlekamp_welch",
    "correct_shares",
    "DecodingError",
    "ICPTag",
    "ICPKey",
    "icp_generate",
    "icp_verify",
    "icp_combine",
    "forgery_probability",
    "solve_linear_system",
    "matrix_rank",
]
