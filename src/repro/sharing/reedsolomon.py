"""Reed–Solomon decoding via the Berlekamp–Welch algorithm.

Shamir shares are a Reed–Solomon codeword: ``n`` evaluations of a
degree-``t`` polynomial.  With ``e`` corrupted shares and
``n >= t + 1 + 2e``, Berlekamp–Welch recovers the polynomial and the
error positions.  This is the robust-reconstruction engine of the
perfect (t < n/3) VSS backend: there ``e <= t`` and ``n >= 3t + 1``.
"""

from __future__ import annotations

from typing import Sequence

from repro.fields import Field, FieldElement, Polynomial

from .linalg import solve_linear_system


class DecodingError(Exception):
    """Raised when no codeword lies within the decoding radius."""


def berlekamp_welch(
    field: Field,
    points: Sequence[tuple[FieldElement | int, FieldElement | int]],
    degree: int,
    max_errors: int | None = None,
) -> tuple[Polynomial, list[int]]:
    """Decode ``points`` as a degree-``degree`` polynomial with errors.

    Parameters
    ----------
    points:
        ``(x_i, y_i)`` pairs with distinct ``x_i``.
    degree:
        The degree bound ``t`` of the message polynomial.
    max_errors:
        Errors to tolerate; defaults to the maximum decodable
        ``floor((n - degree - 1) / 2)``.

    Returns
    -------
    (polynomial, error_positions):
        The decoded polynomial and the indices into ``points`` whose
        ``y`` disagrees with it.

    Raises
    ------
    DecodingError:
        If no polynomial of the given degree agrees with the points on
        all but ``max_errors`` positions.
    """
    f = field
    xs = [p[0].value if isinstance(p[0], FieldElement) else f.encode(p[0]) for p in points]
    ys = [p[1].value if isinstance(p[1], FieldElement) else f.encode(p[1]) for p in points]
    n = len(points)
    if len(set(xs)) != n:
        raise ValueError("duplicate x-coordinates")
    if degree < 0:
        raise ValueError("degree must be >= 0")
    cap = (n - degree - 1) // 2
    if max_errors is None:
        max_errors = max(cap, 0)
    if max_errors > cap:
        raise ValueError(
            f"cannot correct {max_errors} errors with n={n}, degree={degree} "
            f"(max {cap})"
        )

    for e in range(max_errors, -1, -1):
        result = _try_decode(f, xs, ys, degree, e)
        if result is not None:
            return result
    raise DecodingError(
        f"no degree-{degree} polynomial within {max_errors} errors of the "
        f"{n} given points"
    )


def _try_decode(
    f: Field, xs: list[int], ys: list[int], degree: int, e: int
) -> tuple[Polynomial, list[int]] | None:
    """One Berlekamp–Welch attempt with exactly ``e`` tolerated errors.

    Solve for ``E`` (monic, degree ``e``) and ``Q`` (degree ``<= degree + e``)
    with ``Q(x_i) = y_i * E(x_i)`` for all ``i``; then ``P = Q / E``.
    """
    num_q = degree + e + 1  # unknown coefficients of Q
    num_e = e  # unknown coefficients of E (leading coeff fixed to 1)
    matrix: list[list[int]] = []
    rhs: list[int] = []
    for xi, yi in zip(xs, ys):
        row = []
        # Q coefficients: x^0 .. x^(degree+e)
        power = f.encode(1)
        for _ in range(num_q):
            row.append(power)
            power = f.mul(power, xi)
        # E coefficients (negated, moved to LHS): -y * x^0 .. -y * x^(e-1)
        power = f.encode(1)
        for _ in range(num_e):
            row.append(f.neg(f.mul(yi, power)))
            power = f.mul(power, xi)
        matrix.append(row)
        # RHS: y * x^e  (from the monic leading term of E)
        rhs.append(f.mul(yi, f.pow(xi, e)))
    solution = solve_linear_system(f, matrix, rhs)
    if solution is None:
        return None
    q = Polynomial(f, [FieldElement(f, v) for v in solution[:num_q]])
    e_coeffs = [FieldElement(f, v) for v in solution[num_q:]] + [f.one()]
    e_poly = Polynomial(f, e_coeffs)
    p, remainder = q.divmod(e_poly)
    if not remainder.is_zero() or p.degree > degree:
        return None
    errors = [
        i
        for i, (xi, yi) in enumerate(zip(xs, ys))
        if p(FieldElement(f, xi)).value != yi
    ]
    if len(errors) > e:
        return None
    return p, errors


def correct_shares(
    field: Field,
    points: Sequence[tuple[FieldElement | int, FieldElement | int]],
    degree: int,
    max_errors: int | None = None,
) -> tuple[FieldElement, list[int]]:
    """Convenience wrapper: robustly reconstruct ``P(0)``.

    Returns the secret and the indices of corrupted points.
    """
    poly, errors = berlekamp_welch(field, points, degree, max_errors)
    return poly(0), errors
