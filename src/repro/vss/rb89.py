"""Executable statistical VSS for t < n/2 (Rabin–Ben-Or style).

The paper's regime is ``t < n/2``, where perfect VSS is impossible and
Reed–Solomon decoding no longer has the redundancy to correct ``t``
wrong shares (that needs ``n >= 3t+1``).  The classical fix [RB89] is
*information checking*: shares carry unconditional MACs so that wrong
shares are detected rather than corrected.

Structure (dealing mirrors :mod:`repro.vss.bgw`):

1. The dealer deals each secret through a random symmetric bivariate
   polynomial; ``P_i`` gets the row ``f_i``.  Alongside, for every
   ordered pair ``(i, j)``, the dealer generates ICP material
   authenticating ``P_i``'s share toward verifier ``P_j``: ``P_i``
   receives tags, ``P_j`` receives keys.  One key component ``b`` is
   reused per (i, j) across the whole batch, which makes the
   authentication *linear* in the shared values.
2. Pairwise crossing checks, broadcast complaints, dealer resolutions
   and the accusation loop are as in the perfect backend; additionally
   each pair checks one *auxiliary* ICP instance in round 2, so a
   dealer handing out mismatched tag/key material is complained about
   at sharing time.
3. Reconstruction is *verifier-local*: a party (or the designated
   receiver of the paper's step 4) accepts a revealed share iff its own
   ICP keys validate it (or the share became public during sharing),
   requires at least ``t + 1`` accepted shares, and checks the accepted
   set is consistent with one degree-``t`` polynomial.  Forging against
   an honest verifier succeeds with probability ``1/|F|`` per attempt.

Documented scope (DESIGN.md, notes 3-4): ICP keys are dealer-generated,
so a corrupt dealer colluding with corrupt shareholders can equivocate
*its own* secrets at reconstruction; the consistency check turns such
attempts into detected failures rather than silently wrong values.
Full RB89 closes this with two-level subsharing.  Cross-dealer sums
carry per-dealer tags, so private reconstruction of cross-dealer sums
reveals per-dealer components to the receiver — fine for public
openings and single-dealer use; AnonChan's anonymity-critical step 4
therefore runs on the ideal or perfect backends in this repository.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.fields import FieldElement, Polynomial, interpolate_at
from repro.network import Program, RoundOutput
from repro.sharing import ICPKey, ICPTag, SymmetricBivariate, icp_verify

from .base import (
    DEALER_DISQUALIFIED,
    ReconstructionError,
    SharedBatch,
    ShareView,
    VSSCost,
    VSSScheme,
    VSSSession,
)
from .costs import RB89_IMPL_COST

#: Terms identifying a linear combination: (batch_id, k) -> coefficient.
RBTerms = tuple[tuple[tuple[int, int], int], ...]


@dataclass(frozen=True)
class RB89ShareView(ShareView):
    """A party's share plus its per-(batch, verifier) ICP tags."""

    session: "RB89VSSSession"
    pid: int
    terms: RBTerms
    value: int
    #: tags[(batch_id, verifier)] -> aggregated ICPTag for that verifier.
    tags: tuple[tuple[tuple[int, int], ICPTag], ...]

    def _tag_dict(self) -> dict[tuple[int, int], ICPTag]:
        return dict(self.tags)

    def __add__(self, other: ShareView) -> "RB89ShareView":
        if not isinstance(other, RB89ShareView) or other.pid != self.pid:
            raise ValueError("cannot combine views of different parties")
        field = self.session.scheme.field
        terms = dict(self.terms)
        for key, coeff in other.terms:
            terms[key] = field.add(terms.get(key, 0), coeff)
        tags = self._tag_dict()
        for key, tag in other.tags:
            if key in tags:
                tags[key] = tags[key] + tag
            else:
                tags[key] = tag
        return RB89ShareView(
            session=self.session,
            pid=self.pid,
            terms=tuple(sorted((k, c) for k, c in terms.items() if c != 0)),
            value=field.add(self.value, other.value),
            tags=tuple(sorted(tags.items())),
        )

    def scale(self, scalar: FieldElement) -> "RB89ShareView":
        field = self.session.scheme.field
        sv = scalar.value
        terms = tuple(
            (k, field.mul(c, sv)) for k, c in self.terms if field.mul(c, sv)
        )
        tags = tuple((k, t.scale(scalar)) for k, t in self.tags)
        return RB89ShareView(
            session=self.session,
            pid=self.pid,
            terms=terms,
            value=field.mul(self.value, sv),
            tags=tags,
        )


class RB89VSSSession(VSSSession):
    """Session state: per-batch verification keys and public shares."""

    def __init__(self, scheme: "RB89VSS"):
        super().__init__(scheme)
        #: per-(pid, dealer) count of share_program calls; all parties
        #: invoke sharings in the same order, so (dealer, ordinal) is a
        #: consistent batch identifier across parties.
        self._ordinals: dict[tuple[int, int], int] = {}
        #: keys[(batch_id, int_pid, verifier)] -> per-secret ICPKeys,
        #: with one auxiliary key appended.
        self._keys: dict[tuple, list[ICPKey]] = {}
        #: shares that became public during sharing (adopted rows):
        #: public_shares[(batch_id, pid)] -> list of raw share values.
        self._public_shares: dict[tuple, list[int]] = {}

    def _row_ok(self, row: Any) -> bool:
        scheme = self.scheme
        return (
            isinstance(row, Polynomial)
            and row.field == scheme.field
            and row.degree <= scheme.t
        )

    # ------------------------------------------------------------------
    def share_program(
        self,
        pid: int,
        dealer: int,
        secrets: Sequence[FieldElement] | None,
        rng: random.Random,
        count: int = 1,
    ) -> Program:
        scheme = self.scheme
        field = scheme.field
        n, t = scheme.n, scheme.t
        others = [j for j in range(n) if j != pid]
        ordinal = self._ordinals.get((pid, dealer), 0)
        self._ordinals[(pid, dealer)] = ordinal + 1
        batch_id = (dealer, ordinal)

        # ---- round 1: dealer distributes rows + ICP material -------------
        aux_tags: dict[int, ICPTag] = {}  # per verifier j: auxiliary tag
        my_tags: dict[int, list[ICPTag]] = {}  # per verifier j, per secret
        if pid == dealer:
            if secrets is None:
                raise ValueError("dealer must supply secrets")
            if len(secrets) != count:
                raise ValueError("secrets/count mismatch")
            bivariates = [
                SymmetricBivariate.random(field, t, s, rng) for s in secrets
            ]
            rows_by_party = {
                i: [b.row(i + 1) for b in bivariates] for i in range(n)
            }
            # ICP material: per ordered pair (i, j), one b, a key+tag per
            # secret (authenticating f^k_i(0)) and one auxiliary instance.
            tag_msgs: dict[int, dict[int, list]] = {i: {} for i in range(n)}
            for i in range(n):
                for j in range(n):
                    if j == i:
                        continue
                    b = field.random_nonzero(rng)
                    tags, keys = [], []
                    for k in range(count):
                        share_value = FieldElement(
                            field, rows_by_party[i][k](0).value
                        )
                        y = field.random(rng)
                        c = share_value + b * y
                        tags.append(ICPTag(share_value, y))
                        keys.append(ICPKey(b, c))
                    aux_value = field.random(rng)
                    aux_y = field.random(rng)
                    aux_key = ICPKey(b, aux_value + b * aux_y)
                    tag_msgs[i][j] = [tags, ICPTag(aux_value, aux_y)]
                    # The verifier's auxiliary key rides along with the
                    # real keys in session storage.
                    self._keys[(batch_id, i, j)] = keys + [aux_key]
            row_msgs = {
                i: (rows_by_party[i], tag_msgs[i]) for i in range(n)
            }
            my_rows: list[Polynomial] | None = rows_by_party[pid]
            for j, payload in row_msgs[pid][1].items():
                my_tags[j] = payload[0]
                aux_tags[j] = payload[1]
            inbox = yield RoundOutput(
                private={j: row_msgs[j] for j in others}
            )
        else:
            inbox = yield RoundOutput.silent()
            raw = inbox.private.get(dealer)
            my_rows = None
            if (
                isinstance(raw, tuple)
                and len(raw) == 2
                and isinstance(raw[0], list)
                and len(raw[0]) == count
                and all(self._row_ok(r) for r in raw[0])
                and isinstance(raw[1], dict)
            ):
                my_rows = list(raw[0])
                for j, payload in raw[1].items():
                    if (
                        isinstance(payload, list)
                        and len(payload) == 2
                        and isinstance(payload[0], list)
                        and len(payload[0]) == count
                    ):
                        my_tags[j] = payload[0]
                        aux_tags[j] = payload[1]

        # ---- round 2: crossings + auxiliary ICP openings -------------------
        if my_rows is not None:
            msgs = {
                j: (
                    [row(j + 1).value for row in my_rows],
                    aux_tags.get(j),
                )
                for j in others
            }
        else:
            msgs = {}
        inbox = yield RoundOutput(private=msgs)
        crossings: dict[int, list[int]] = {}
        icp_complaints: list[int] = []
        for j in others:
            payload = inbox.private.get(j)
            if (
                isinstance(payload, tuple)
                and len(payload) == 2
                and isinstance(payload[0], list)
            ):
                crossings[j] = payload[0]
                aux = payload[1]
                my_aux_keys = self._keys.get((batch_id, j, pid))
                if my_aux_keys is not None:
                    aux_key = my_aux_keys[-1]
                    if not isinstance(aux, ICPTag) or not icp_verify(aux, aux_key):
                        icp_complaints.append(j)

        # ---- round 3: broadcast complaints ------------------------------
        complaints: list[tuple[str, Any]] = []
        if my_rows is None:
            complaints.append(("bad-row", None))
        else:
            for j in others:
                got = crossings.get(j)
                if got is None or len(got) != count:
                    complaints.append(("cross", j))
                    continue
                for k, row in enumerate(my_rows):
                    if row(j + 1).value != got[k]:
                        complaints.append(("cross", j))
                        break
            for j in icp_complaints:
                # The dealer keyed the (j -> me) authentication wrongly.
                complaints.append(("icp", j))
        inbox = yield RoundOutput(broadcast=complaints if complaints else None)
        all_complaints: dict[int, list[tuple[str, Any]]] = {}
        for sender, payload in inbox.broadcast.items():
            if isinstance(payload, list):
                all_complaints[sender] = [
                    c for c in payload if isinstance(c, tuple) and len(c) == 2
                ]

        if not all_complaints:
            return self._finish(pid, dealer, batch_id, my_rows, {}, my_tags, count)

        # ---- round 4: dealer resolves ------------------------------------
        if pid == dealer:
            resolutions: dict[str, Any] = {"values": {}, "rows": {}}
            for complainer, items in all_complaints.items():
                for kind, arg in items:
                    if kind == "bad-row":
                        resolutions["rows"][complainer] = rows_by_party[complainer]
                    elif kind in ("cross", "icp") and isinstance(arg, int) and 0 <= arg < n:
                        # An ICP complaint by j about i makes i's shares
                        # public (the simple resolution: no secrecy is
                        # lost beyond i's own shares).
                        if kind == "icp":
                            resolutions["rows"][arg] = rows_by_party[arg]
                        else:
                            for k, b in enumerate(bivariates):
                                resolutions["values"][(k, complainer, arg)] = b(
                                    complainer + 1, arg + 1
                                ).value
            inbox = yield RoundOutput(broadcast=resolutions)
        else:
            inbox = yield RoundOutput.silent()
        public = inbox.broadcast.get(dealer)
        if not isinstance(public, dict) or "values" not in public or "rows" not in public:
            return DEALER_DISQUALIFIED
        public_values = {
            key: value
            for key, value in dict(public["values"]).items()
            if isinstance(key, tuple)
            and len(key) == 3
            and all(isinstance(v, int) for v in key)
            and isinstance(value, int)
        }
        public_rows: dict[int, list[Polynomial]] = {
            i: rows
            for i, rows in dict(public["rows"]).items()
            if isinstance(i, int) and 0 <= i < n and isinstance(rows, list)
        }

        def complaint_answered(complainer: int, kind: str, arg: Any) -> bool:
            if kind == "bad-row":
                return complainer in public_rows
            if kind == "icp":
                return arg in public_rows
            if kind == "cross":
                if complainer in public_rows or arg in public_rows:
                    return True
                return all(
                    (k, complainer, arg) in public_values for k in range(count)
                )
            return True

        unresolved = any(
            not complaint_answered(c, kind, arg)
            for c, items in all_complaints.items()
            for kind, arg in items
        )
        unhappy: set[int] = set(public_rows)
        disqualified = unresolved or not self._public_consistent(
            public_values, public_rows, count
        )

        def i_am_unhappy() -> bool:
            if pid in unhappy or pid == dealer:
                return False
            if my_rows is None or len(my_rows) != count:
                return True
            for (k, i, j), value in public_values.items():
                if i == pid and k < count and my_rows[k](j + 1).value != value:
                    return True
                if j == pid and k < count and my_rows[k](i + 1).value != value:
                    return True
            for m, rows in public_rows.items():
                if len(rows) != count:
                    continue
                for k in range(count):
                    if rows[k](pid + 1) != my_rows[k](m + 1):
                        return True
            return False

        while True:
            accuse = (not disqualified) and i_am_unhappy()
            inbox = yield RoundOutput(broadcast="accuse" if accuse else None)
            new_accusers = {
                s
                for s, p in inbox.broadcast.items()
                if p == "accuse" and s not in unhappy and s != dealer
            }
            if not new_accusers:
                break
            unhappy |= new_accusers
            if pid == dealer:
                answer = {
                    m: rows_by_party[m] for m in new_accusers
                }
                inbox = yield RoundOutput(broadcast=answer)
            else:
                inbox = yield RoundOutput.silent()
            answer = inbox.broadcast.get(dealer)
            if not isinstance(answer, dict) or set(answer) != new_accusers:
                disqualified = True
                continue
            for m, rows in answer.items():
                if (
                    isinstance(rows, list)
                    and len(rows) == count
                    and all(self._row_ok(r) for r in rows)
                ):
                    public_rows[m] = rows
                else:
                    disqualified = True
            if not self._public_consistent(public_values, public_rows, count):
                disqualified = True

        if disqualified or len(unhappy) > t:
            return DEALER_DISQUALIFIED
        return self._finish(
            pid, dealer, batch_id, my_rows, public_rows, my_tags, count
        )

    def _public_consistent(self, values, rows, count) -> bool:
        for _m, rlist in rows.items():
            if len(rlist) != count or not all(self._row_ok(r) for r in rlist):
                return False
        for (k, i, j), value in values.items():
            if not 0 <= k < count:
                return False
            for party, point in ((i, j), (j, i)):
                if party in rows and rows[party][k](point + 1).value != value:
                    return False
        ids = sorted(rows)
        for a_idx, a in enumerate(ids):
            for b in ids[a_idx + 1 :]:
                for k in range(count):
                    if rows[a][k](b + 1) != rows[b][k](a + 1):
                        return False
        return True

    def _finish(
        self, pid, dealer, batch_id, my_rows, public_rows, my_tags, count
    ) -> SharedBatch:
        field = self.scheme.field
        n = self.scheme.n
        # Record publicly known shares for reconstruction-time use.
        for m, rows in public_rows.items():
            self._public_shares[(batch_id, m)] = [
                row(0).value for row in rows
            ]
        rows = public_rows.get(pid, my_rows)
        if rows is None or len(rows) != count:
            rows = None
        one = field.encode(1)
        views = []
        for k in range(count):
            value = rows[k](0).value if rows is not None else 0
            tags = []
            for j in range(n):
                if j == pid:
                    continue
                tag_list = my_tags.get(j)
                if tag_list is not None and k < len(tag_list) and isinstance(
                    tag_list[k], ICPTag
                ):
                    tags.append(((batch_id, j), tag_list[k]))
            views.append(
                RB89ShareView(
                    session=self,
                    pid=pid,
                    terms=(((batch_id, k), one),),
                    value=value,
                    tags=tuple(sorted(tags)),
                )
            )
        return SharedBatch(dealer=dealer, views=views)

    # ------------------------------------------------------------------
    def zero_view(self, pid: int) -> RB89ShareView:
        return RB89ShareView(self, pid, terms=(), value=0, tags=())

    def reveal_payload(self, pid: int, view: ShareView) -> Any:
        if not isinstance(view, RB89ShareView):
            raise TypeError("expected an RB89ShareView")
        return (pid, view.terms, view.value, view.tags)

    def _public_value_of_terms(self, terms: RBTerms, sender: int) -> int | None:
        """If every term's share of ``sender`` is public, compute it."""
        field = self.scheme.field
        acc = 0
        try:
            for (batch_id, k), coeff in terms:
                public = self._public_shares.get((batch_id, sender))
                if public is None or not 0 <= k < len(public):
                    return None
                acc = field.add(acc, field.mul(coeff, public[k]))
        except (TypeError, ValueError):
            return None
        return acc

    def _verify_payload(self, sender: int, payload: Any, verifier: int) -> int | None:
        """Return the accepted share value, or None if rejected."""
        if (
            not isinstance(payload, tuple)
            or len(payload) != 4
            or payload[0] != sender
        ):
            return None
        _, terms, value, tags = payload
        if not isinstance(terms, tuple) or not isinstance(value, int):
            return None
        try:
            _ = [(key, coeff) for key, coeff in terms]
        except (TypeError, ValueError):
            return None
        public = self._public_value_of_terms(terms, sender)
        if public is not None:
            return public  # the public record overrides the claim
        if sender == verifier:
            return value  # a party trusts its own share
        if verifier is None:
            return None  # cannot verify without keys
        field = self.scheme.field
        try:
            tag_map = dict(tags) if isinstance(tags, tuple) else {}
        except (TypeError, ValueError):
            return None
        # Aggregate keys per batch and check every batch's tag.
        per_batch: dict[Any, list[tuple[int, int]]] = {}
        try:
            for (batch_id, k), coeff in terms:
                per_batch.setdefault(batch_id, []).append((k, coeff))
        except (TypeError, ValueError):
            return None
        total = 0
        for batch_id, items in per_batch.items():
            keys = self._keys.get((batch_id, sender, verifier))
            if keys is None:
                return None
            agg_key: ICPKey | None = None
            for k, coeff in items:
                if k >= len(keys) - 1:  # last key is the auxiliary one
                    return None
                scaled = keys[k].scale(FieldElement(field, coeff))
                agg_key = scaled if agg_key is None else agg_key + scaled
            tag = tag_map.get((batch_id, verifier))
            if agg_key is None or not isinstance(tag, ICPTag):
                return None
            if not icp_verify(tag, agg_key):
                return None
            total = field.add(total, tag.value.value)
        if total != value:
            return None
        return value

    def verify_and_combine(
        self, payloads: Mapping[int, Any], verifier: int | None = None
    ) -> FieldElement:
        field = self.scheme.field
        t = self.scheme.t
        accepted: list[tuple[int, int]] = []
        for sender, payload in payloads.items():
            value = self._verify_payload(sender, payload, verifier)
            if value is not None:
                accepted.append((sender + 1, value))
        if len(accepted) < t + 1:
            raise ReconstructionError(
                f"only {len(accepted)} authenticated shares; need {t + 1}"
            )
        # Consistency: all accepted shares on one degree-t polynomial.
        base = accepted[: t + 1]
        for x, y in accepted[t + 1 :]:
            predicted = interpolate_at(field, base, FieldElement(field, x))
            if predicted.value != y:
                raise ReconstructionError(
                    "authenticated shares are inconsistent (corrupt dealer "
                    "equivocation detected)"
                )
        return interpolate_at(field, base, 0)


class RB89VSS(VSSScheme):
    """Statistical, linear VSS for t < n/2 (fully executable)."""

    def __init__(self, field, n: int, t: int, cost: VSSCost | None = None):
        if 2 * t >= n:
            raise ValueError(f"requires t < n/2, got n={n}, t={t}")
        super().__init__(field, n, t, cost or RB89_IMPL_COST)

    def new_session(self, rng: random.Random) -> RB89VSSSession:
        return RB89VSSSession(self)
