"""Ideal-functionality VSS backend (hybrid-model composition).

The paper composes AnonChan with VSS *black-box* and inherits its
round/broadcast cost.  This backend mirrors that hybrid-world
methodology: a trusted in-process functionality holds the dealt
polynomials and enforces Commitment (a dealer cannot change a dealt
value) and share authenticity (a corrupted party cannot open a wrong
share without detection), while the party programs consume exactly the
round/broadcast schedule of a chosen *cost profile* (RB89, Rab94,
GGOR13, ...).  This lets the experiments scale AnonChan far beyond what
a full message-level VSS execution could simulate, with metrics that
match the real composition.

The real message-passing backends (:mod:`repro.vss.bgw`,
:mod:`repro.vss.rb89`) validate the VSS properties themselves; their
tests plus this hybrid model together reproduce the paper's
composition claim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.fields import FieldElement
from repro.network import Program, RoundOutput

from .base import (
    DEALER_DISQUALIFIED,
    ReconstructionError,
    SharedBatch,
    ShareView,
    VSSCost,
    VSSScheme,
    VSSSession,
)


class RefuseType:
    """Sentinel a (corrupt) dealer passes to refuse to share properly."""

    def __repr__(self) -> str:
        return "REFUSE"


#: Pass as ``secrets`` to model a dealer that gets publicly disqualified.
REFUSE = RefuseType()

#: Terms of a linear combination: serial -> raw coefficient encoding.
Terms = tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class IdealShareView(ShareView):
    """A party's view: symbolic terms plus its concrete share value."""

    session: "IdealVSSSession"
    pid: int
    terms: Terms
    value: int  # raw encoding of this party's Shamir share of the combo

    def __add__(self, other: ShareView) -> "IdealShareView":
        if not isinstance(other, IdealShareView) or other.session is not self.session:
            raise ValueError("cannot combine views from different sessions")
        if other.pid != self.pid:
            raise ValueError("cannot combine views of different parties")
        field = self.session.scheme.field
        merged = dict(self.terms)
        for serial, coeff in other.terms:
            merged[serial] = field.add(merged.get(serial, 0), coeff)
        terms = tuple(sorted((s, c) for s, c in merged.items() if c != 0))
        return IdealShareView(
            self.session, self.pid, terms, field.add(self.value, other.value)
        )

    def scale(self, scalar: FieldElement) -> "IdealShareView":
        field = self.session.scheme.field
        sv = scalar.value
        terms = tuple(
            (serial, field.mul(coeff, sv)) for serial, coeff in self.terms if field.mul(coeff, sv) != 0
        )
        return IdealShareView(
            self.session, self.pid, terms, field.mul(self.value, sv)
        )


class IdealVSSSession(VSSSession):
    """Shared trusted functionality + per-party program frontends."""

    def __init__(self, scheme: "IdealVSS"):
        super().__init__(scheme)
        # Per dealt value: its share evaluations at x = 0..n (index 0 is
        # the secret itself).  Polynomials are never materialized — the
        # functionality only ever needs these n+1 points.
        self._evals: list[list[int]] = []
        self._batches: dict[tuple[int, int], int | RefuseType | None] = {}
        self._batch_lengths: dict[tuple[int, int], int] = {}
        self._counters: dict[tuple[int, int], int] = {}
        self._lagrange_cache: dict[tuple[int, ...], list[int]] = {}
        self._vector = None
        self._vector_checked = False
        self._evals_np = None  # cached numpy view of _evals

    def _vector_backend(self):
        """Lazily construct the numpy backend (table-backed fields only)."""
        if not self._vector_checked:
            self._vector_checked = True
            try:
                from repro.fields.vectorized import VectorGF2k

                self._vector = VectorGF2k(self.scheme.field)
            except (ValueError, AttributeError, ImportError):
                self._vector = None
        return self._vector

    # -- functionality internals ------------------------------------------
    def _deal(
        self,
        dealer: int,
        batch_index: int,
        secrets: Sequence[FieldElement] | RefuseType,
        rng: random.Random,
    ) -> None:
        key = (dealer, batch_index)
        if key in self._batches:
            raise ValueError(f"dealer {dealer} already dealt batch {batch_index}")
        if isinstance(secrets, RefuseType):
            self._batches[key] = REFUSE
            return
        first = len(self._evals)
        field = self.scheme.field
        t = self.scheme.t
        n = self.scheme.n
        order = field.order
        points = [field.encode(x) for x in range(n + 1)]
        randrange = rng.randrange
        coeff_rows = [
            [secret.value] + [randrange(order) for _ in range(t)]
            for secret in secrets
        ]
        vec = self._vector_backend()
        if vec is not None and len(coeff_rows) >= 32:
            # Large batch on a table-backed field: evaluate all sharing
            # polynomials at all party points in a few numpy gathers.
            import numpy as np

            table = vec.eval_at_points(
                np.asarray(coeff_rows, dtype=np.uint32), points
            )
            self._evals.extend(row.tolist() for row in table)
        else:
            add, mul = field.add, field.mul
            for coeffs in coeff_rows:
                evals = []
                for x in points:
                    acc = 0
                    for c in reversed(coeffs):  # Horner
                        acc = add(mul(acc, x), c)
                    evals.append(acc)
                self._evals.append(evals)
        self._batches[key] = first
        self._batch_lengths[key] = len(secrets)

    def _eval_terms(self, terms: Terms, x_index: int) -> int:
        """Value of a linear combination at party point index (0 = secret)."""
        field = self.scheme.field
        evals = self._evals
        add, mul = field.add, field.mul
        acc = 0
        for serial, coeff in terms:
            acc = add(acc, mul(coeff, evals[serial][x_index]))
        return acc

    def _point(self, pid: int) -> int:
        return self.scheme.field.encode(pid + 1)

    # -- VSSSession interface ----------------------------------------------
    def share_program(
        self,
        pid: int,
        dealer: int,
        secrets: Sequence[FieldElement] | RefuseType | None,
        rng: random.Random,
        count: int = 1,
    ) -> Program:
        scheme: IdealVSS = self.scheme  # type: ignore[assignment]
        batch_index = self._counters.get((pid, dealer), 0)
        self._counters[(pid, dealer)] = batch_index + 1

        if pid == dealer:
            if secrets is None:
                raise ValueError("dealer must supply secrets (or REFUSE)")
            if not isinstance(secrets, RefuseType) and len(secrets) != count:
                raise ValueError(
                    f"dealer supplied {len(secrets)} secrets for a batch of {count}"
                )
            self._deal(dealer, batch_index, secrets, rng)

        cost = scheme.cost
        for r in range(cost.share_rounds):
            if pid == dealer and r < cost.share_broadcast_rounds:
                yield RoundOutput(broadcast="vss-share")
            else:
                yield RoundOutput.silent()

        record = self._batches.get((dealer, batch_index))
        if record is None or isinstance(record, RefuseType):
            return DEALER_DISQUALIFIED
        first = record
        count = self._batch_lengths[(dealer, batch_index)]
        one = self.scheme.field.encode(1)
        views = [
            IdealShareView(
                self,
                pid,
                terms=((first + k, one),),
                value=self._evals[first + k][pid + 1],
            )
            for k in range(count)
        ]
        return SharedBatch(dealer=dealer, views=views)

    def zero_view(self, pid: int) -> IdealShareView:
        return IdealShareView(self, pid, terms=(), value=0)

    def open_program(self, pid: int, views):
        """Batched public opening (numpy fast path).

        Semantically identical to the base implementation: honest
        parties all open the same views, so a payload is accepted iff it
        matches the verifier's expected ``(terms, value)`` for that
        position; positions where the expected group misses quorum fall
        back to the generic per-value logic (which also handles senders
        forming alternative terms-groups).
        """
        from repro.network import RoundOutput

        vec = self._vector_backend()
        n = self.scheme.n
        payloads = [self.reveal_payload(pid, v) for v in views]
        inbox = yield RoundOutput(
            private={j: payloads for j in range(n) if j != pid}
        )
        columns: list[tuple[int, Any]] = [(pid, payloads)]
        for sender, payload in inbox.private.items():
            if isinstance(payload, (list, tuple)) and len(payload) == len(views):
                columns.append((sender, payload))

        if vec is None or len(views) < 64:
            return self._combine_columns(columns, views, pid)

        import numpy as np

        field = self.scheme.field
        quorum = self.scheme.t + 1
        # Flatten the verifier's own terms: arrays over (value, term).
        ks, serials, coeffs = [], [], []
        for k, view in enumerate(views):
            for serial, coeff in view.terms:
                ks.append(k)
                serials.append(serial)
                coeffs.append(coeff)
        if self._evals_np is None or self._evals_np.shape[0] != len(self._evals):
            self._evals_np = np.asarray(self._evals, dtype=np.uint32)
        evals_arr = self._evals_np
        serial_idx = np.asarray(serials, dtype=np.int64)
        coeff_arr = np.asarray(coeffs, dtype=np.uint32)
        # Segment boundaries per value (terms were appended in k order).
        ks_arr = np.asarray(ks, dtype=np.int64)
        boundaries = np.searchsorted(ks_arr, np.arange(len(views)))

        def expected_for_point(x_index: int) -> np.ndarray:
            if len(serial_idx) == 0:
                return np.zeros(len(views), dtype=np.uint32)
            prod = vec.mul(evals_arr[serial_idx, x_index], coeff_arr)
            segments = np.bitwise_xor.reduceat(prod, boundaries)
            # reduceat misbehaves for empty segments (views with no
            # terms); patch those to zero.
            out = np.zeros(len(views), dtype=np.uint32)
            counts = np.diff(np.append(boundaries, len(prod)))
            out[counts > 0] = segments[counts > 0]
            return out

        expected_terms = [v.terms for v in views]
        accepted: list[list[tuple[int, int]]] = [[] for _ in views]
        num_views = len(views)
        for sender, column in columns:
            expected_vals = expected_for_point(sender + 1).tolist()
            point = sender + 1
            for k in range(num_views):
                row = accepted[k]
                if len(row) >= quorum:
                    continue
                payload = column[k]
                if (
                    type(payload) is tuple
                    and len(payload) == 3
                    and payload[0] == sender
                    and payload[2] == expected_vals[k]
                    and payload[1] == expected_terms[k]
                ):
                    row.append((point, payload[2]))

        results = []
        for k in range(len(views)):
            pts = accepted[k]
            if len(pts) < quorum:
                # Rare/adversarial: defer to the generic logic.
                results.append(
                    self.verify_and_combine(
                        {sender: column[k] for sender, column in columns},
                        verifier=pid,
                    )
                )
                continue
            xs = tuple(p[0] for p in pts)
            lag = self._lagrange_cache.get(xs)
            if lag is None:
                from repro.fields import lagrange_coefficients

                lag = [c.value for c in lagrange_coefficients(field, xs, 0)]
                self._lagrange_cache[xs] = lag
            add, mul = field.add, field.mul
            acc = 0
            for (_, value), c in zip(pts, lag):
                acc = add(acc, mul(c, value))
            results.append(FieldElement(field, acc))
        return results

    def _combine_columns(self, columns, views, pid):
        """Scalar path shared with the base class's semantics."""
        results = []
        for k in range(len(views)):
            results.append(
                self.verify_and_combine(
                    {sender: column[k] for sender, column in columns},
                    verifier=pid,
                )
            )
        return results

    def reveal_payload(self, pid: int, view: ShareView) -> Any:
        if not isinstance(view, IdealShareView):
            raise TypeError("expected an IdealShareView")
        return (pid, view.terms, view.value)

    def verify_and_combine(
        self, payloads: Mapping[int, Any], verifier: int | None = None
    ) -> FieldElement:
        """Models the w.h.p. guarantees of a real statistical VSS-Rec.

        A payload from party ``i`` is accepted iff its claimed share
        value matches the functionality's record for the claimed terms
        at ``i``'s evaluation point (real schemes achieve this check via
        ICP / error correction).  The value of the terms-group with at
        least ``t + 1`` accepted payloads is reconstructed by Lagrange
        interpolation of the accepted points.
        """
        field = self.scheme.field
        quorum = self.scheme.t + 1
        groups: dict[Terms, list[tuple[int, int]]] = {}
        for sender, payload in payloads.items():
            if (
                type(payload) is not tuple
                or len(payload) != 3
                or payload[0] != sender
                or type(payload[2]) is not int
            ):
                continue  # malformed or mis-attributed payload: rejected
            groups.setdefault(payload[1], []).append((sender, payload[2]))

        evals = self._evals
        num_values = len(evals)
        add, mul = field.add, field.mul
        # Largest claimed group first; within a group, verify members
        # lazily — with >= t+1 honest contributors the first quorum of
        # verifications already succeeds.
        for terms, members in sorted(groups.items(), key=lambda kv: -len(kv[1])):
            if len(members) < quorum:
                break
            if type(terms) is not tuple or not all(
                type(term) is tuple
                and len(term) == 2
                and type(term[0]) is int
                and 0 <= term[0] < num_values
                and type(term[1]) is int
                for term in terms
            ):
                continue  # references to non-existent sharings: rejected
            pts: list[tuple[int, int]] = []
            for sender, value in members:
                x_index = sender + 1
                expected = 0
                for serial, coeff in terms:
                    expected = add(expected, mul(coeff, evals[serial][x_index]))
                if expected != value:
                    continue  # forged share value: rejected (w.h.p. in reality)
                pts.append((x_index, value))
                if len(pts) == quorum:
                    break
            if len(pts) < quorum:
                continue
            xs = tuple(p[0] for p in pts)
            coeffs = self._lagrange_cache.get(xs)
            if coeffs is None:
                from repro.fields import lagrange_coefficients

                coeffs = [c.value for c in lagrange_coefficients(field, xs, 0)]
                self._lagrange_cache[xs] = coeffs
            acc = 0
            for (_, value), c in zip(pts, coeffs):
                acc = add(acc, mul(c, value))
            return FieldElement(field, acc)
        raise ReconstructionError(
            f"no terms-group reached {quorum} verified payloads"
        )


class IdealVSS(VSSScheme):
    """Ideal linear VSS with a pluggable round/broadcast cost profile."""

    def __init__(self, field, n: int, t: int, cost: VSSCost | None = None):
        if cost is None:
            cost = VSSCost(share_rounds=1, share_broadcast_rounds=0)
        super().__init__(field, n, t, cost)

    def new_session(self, rng: random.Random) -> IdealVSSSession:
        return IdealVSSSession(self)
