"""Ideal-functionality VSS backend (hybrid-model composition).

The paper composes AnonChan with VSS *black-box* and inherits its
round/broadcast cost.  This backend mirrors that hybrid-world
methodology: a trusted in-process functionality holds the dealt
polynomials and enforces Commitment (a dealer cannot change a dealt
value) and share authenticity (a corrupted party cannot open a wrong
share without detection), while the party programs consume exactly the
round/broadcast schedule of a chosen *cost profile* (RB89, Rab94,
GGOR13, ...).  This lets the experiments scale AnonChan far beyond what
a full message-level VSS execution could simulate, with metrics that
match the real composition.

The real message-passing backends (:mod:`repro.vss.bgw`,
:mod:`repro.vss.rb89`) validate the VSS properties themselves; their
tests plus this hybrid model together reproduce the paper's
composition claim.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.fields import VECTOR_BACKEND_MODES, FieldElement
from repro.network import Program, RoundOutput, SizedPayload
from repro.obs.profiler import get_profiler

from .base import (
    DEALER_DISQUALIFIED,
    ReconstructionError,
    SharedBatch,
    ShareView,
    VSSCost,
    VSSScheme,
    VSSSession,
)


class RefuseType:
    """Sentinel a (corrupt) dealer passes to refuse to share properly."""

    def __repr__(self) -> str:
        return "REFUSE"


#: Pass as ``secrets`` to model a dealer that gets publicly disqualified.
REFUSE = RefuseType()

#: Terms of a linear combination: serial -> raw coefficient encoding.
Terms = tuple[tuple[int, int], ...]

#: Smallest batch for which the numpy dealing path beats the scalar one
#: (array setup costs dominate below it); ``"vectorized"`` mode ignores
#: the threshold so tests can force the kernels on tiny batches.
VECTOR_DEAL_MIN = 32

#: Same, for batched openings/reconstructions.
VECTOR_OPEN_MIN = 64

#: Same, for batched view combination (diffs/sums of whole offset
#: arrays in the AnonChan cut-and-choose and step-4 hot paths).
VECTOR_COMBINE_MIN = 64


@dataclass(frozen=True)
class IdealShareView(ShareView):
    """A party's view: symbolic terms plus its concrete share value."""

    session: "IdealVSSSession"
    pid: int
    terms: Terms
    value: int  # raw encoding of this party's Shamir share of the combo

    def __add__(self, other: ShareView) -> "IdealShareView":
        if not isinstance(other, IdealShareView) or other.session is not self.session:
            raise ValueError("cannot combine views from different sessions")
        if other.pid != self.pid:
            raise ValueError("cannot combine views of different parties")
        field = self.session.scheme.field
        merged = dict(self.terms)
        for serial, coeff in other.terms:
            merged[serial] = field.add(merged.get(serial, 0), coeff)
        terms = tuple(sorted((s, c) for s, c in merged.items() if c != 0))
        return IdealShareView(
            self.session, self.pid, terms, field.add(self.value, other.value)
        )

    def scale(self, scalar: FieldElement) -> "IdealShareView":
        field = self.session.scheme.field
        sv = scalar.value
        terms = tuple(
            (serial, field.mul(coeff, sv)) for serial, coeff in self.terms if field.mul(coeff, sv) != 0
        )
        return IdealShareView(
            self.session, self.pid, terms, field.mul(self.value, sv)
        )


class _LazyBatchViews(Sequence):
    """Batch views materialized on demand.

    A dealt batch holds one view per secret, but the batched protocol
    paths touch only a fraction of them individually: the offset
    algebra (``diff_offsets_batch`` / ``sum_offsets_batch``) works on
    the batch handle, and openings slice out sub-ranges.  Constructing
    every :class:`IdealShareView` eagerly is pure waste at scale, so
    this sequence builds each view when (and only when) it is indexed.
    Construction is deterministic — repeated access yields equal views
    (``IdealShareView`` equality is by value) — so laziness is
    observationally identical to the eager list.
    """

    __slots__ = ("_session", "_pid", "_first", "_count", "_one")

    def __init__(self, session, pid, first, count, one):
        self._session = session
        self._pid = pid
        self._first = first
        self._count = count
        self._one = one

    def _make(self, k: int) -> "IdealShareView":
        serial = self._first + k
        return IdealShareView(
            self._session,
            self._pid,
            ((serial, self._one),),
            self._session._evals[serial][self._pid + 1],
        )

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._make(k) for k in range(*index.indices(self._count))]
        k = index.__index__()
        if k < 0:
            k += self._count
        if not 0 <= k < self._count:
            raise IndexError("batch view index out of range")
        return self._make(k)

    def __iter__(self):
        return map(self._make, range(self._count))


class IdealVSSSession(VSSSession):
    """Shared trusted functionality + per-party program frontends."""

    def __init__(self, scheme: "IdealVSS"):
        super().__init__(scheme)
        # Per dealt value: its share evaluations at x = 0..n (index 0 is
        # the secret itself).  Polynomials are never materialized — the
        # functionality only ever needs these n+1 points.
        self._evals: list[list[int]] = []
        self._batches: dict[tuple[int, int], int | RefuseType | None] = {}
        self._batch_lengths: dict[tuple[int, int], int] = {}
        self._counters: dict[tuple[int, int], int] = {}
        self._lagrange_cache: dict[tuple[int, ...], list[int]] = {}
        self._backend_mode = scheme.backend
        self._vector = None
        self._vector_checked = False
        self._vandermonde = None  # cached powers of the points 0..n
        self._evals_np = None  # cached numpy view of _evals
        # Cross-verifier open caches.  All n verifiers of one public
        # opening verify the same senders against the same expected
        # content, and everything cached here — the honest reference
        # column per sender and the opened values per quorum point set —
        # is derived from the opened terms and the functionality's eval
        # table alone, never from received payloads.  The first verifier
        # builds each entry and the other n-1 reuse it; verdicts about
        # *received* columns are still recomputed per call, so mutated
        # or adversarial payloads cannot poison the cache.
        self._honest_cache: dict[tuple, tuple[list[int], list]] = {}
        self._opened_cache: dict[tuple, list] = {}
        if self._backend_mode == "vectorized":
            from repro.fields.vectorized import vector_backend

            self._vector = vector_backend(scheme.field)  # raises if unsupported
            self._vector_checked = True

    def configure_backend(self, mode: str) -> None:
        """Select the batch-kernel policy for this session.

        ``"auto"`` (default) uses the numpy kernels for large batches on
        fields that support them, ``"vectorized"`` requires and always
        uses them (``ValueError`` if the field has no vectorized
        substrate), ``"scalar"`` forces the pure-Python reference path.
        """
        if mode not in VECTOR_BACKEND_MODES:
            raise ValueError(
                f"unknown backend {mode!r}, expected one of "
                f"{VECTOR_BACKEND_MODES}"
            )
        if mode == "vectorized":
            from repro.fields.vectorized import vector_backend

            self._vector = vector_backend(self.scheme.field)
            self._vector_checked = True
        self._backend_mode = mode

    def _vector_backend(self):
        """Lazily construct the numpy backend per the session's mode."""
        if self._backend_mode == "scalar":
            return None
        if not self._vector_checked:
            self._vector_checked = True
            try:
                from repro.fields.vectorized import vector_backend

                self._vector = vector_backend(self.scheme.field)
            except (ValueError, ImportError):
                self._vector = None
        return self._vector

    def _use_vector(self, batch_size: int, threshold: int):
        """The backend to use for a batch of ``batch_size``, or ``None``."""
        vec = self._vector_backend()
        if vec is None:
            return None
        if self._backend_mode != "vectorized":
            from repro.fields.vectorized import force_scalar

            if force_scalar():
                # REPRO_FORCE_SCALAR pins "auto" to the reference path
                # (explicit "vectorized" mode still wins, so tests can
                # keep forcing the kernels).
                return None
            if batch_size < threshold:
                return None
        return vec

    def _lagrange_at_zero(self, xs: tuple[int, ...]) -> list[int]:
        """Cached Lagrange-at-zero coefficients for one point set.

        Two levels: a per-session dict (no locking on the hot path)
        over the process-wide :data:`repro.fields.vectorized.TABLES`
        cache, so the coefficients survive across protocol epochs.
        """
        coeffs = self._lagrange_cache.get(xs)
        if coeffs is None:
            from repro.fields.vectorized import TABLES

            coeffs = TABLES.lagrange_at_zero(self.scheme.field, xs)
            self._lagrange_cache[xs] = coeffs
        return coeffs

    def _evals_matrix(self, vec):
        """The functionality's eval table as a cached numpy matrix."""
        import numpy as np

        if not self._evals:
            return np.zeros((0, self.scheme.n + 1), dtype=vec.dtype)
        if self._evals_np is None or self._evals_np.shape[0] != len(self._evals):
            self._evals_np = np.asarray(self._evals, dtype=vec.dtype)
        return self._evals_np

    # -- functionality internals ------------------------------------------
    def _deal(
        self,
        dealer: int,
        batch_index: int,
        secrets: Sequence[FieldElement] | RefuseType,
        rng: random.Random,
    ) -> None:
        key = (dealer, batch_index)
        if key in self._batches:
            raise ValueError(f"dealer {dealer} already dealt batch {batch_index}")
        if isinstance(secrets, RefuseType):
            self._batches[key] = REFUSE
            return
        first = len(self._evals)
        field = self.scheme.field
        t = self.scheme.t
        n = self.scheme.n
        order = field.order
        points = [field.encode(x) for x in range(n + 1)]
        randrange = rng.randrange
        coeff_rows = [
            [secret.value] + [randrange(order) for _ in range(t)]
            for secret in secrets
        ]
        vec = self._use_vector(len(coeff_rows), VECTOR_DEAL_MIN)
        prof = get_profiler()
        if vec is not None:
            # Large batch on a vectorizable field: evaluate all sharing
            # polynomials at all party points against the cached
            # Vandermonde table in a few numpy operations.
            import numpy as np

            if prof.enabled:
                prof.count("vss", "deal_batched", len(coeff_rows))
                prof.observe("vss", "deal_batch_size", len(coeff_rows))
            if self._vandermonde is None:
                from repro.fields.vectorized import TABLES

                self._vandermonde = TABLES.vandermonde(vec, points, t)
            table = vec.batch_eval(
                np.asarray(coeff_rows, dtype=vec.dtype),
                vandermonde=self._vandermonde,
            )
            self._evals.extend(row.tolist() for row in table)
        else:
            if prof.enabled:
                # field.add/field.mul below hit the instrumented field
                # methods, so fields/* is counted there, not here.
                prof.count("vss", "deal_scalar_fallback", len(coeff_rows))
            add, mul = field.add, field.mul
            for coeffs in coeff_rows:
                evals = []
                for x in points:
                    acc = 0
                    for c in reversed(coeffs):  # Horner
                        acc = add(mul(acc, x), c)
                    evals.append(acc)
                self._evals.append(evals)
        self._batches[key] = first
        self._batch_lengths[key] = len(secrets)

    def _eval_terms(self, terms: Terms, x_index: int) -> int:
        """Value of a linear combination at party point index (0 = secret)."""
        field = self.scheme.field
        evals = self._evals
        add, mul = field.add, field.mul
        acc = 0
        for serial, coeff in terms:
            acc = add(acc, mul(coeff, evals[serial][x_index]))
        return acc

    def _point(self, pid: int) -> int:
        return self.scheme.field.encode(pid + 1)

    # -- VSSSession interface ----------------------------------------------
    def share_program(
        self,
        pid: int,
        dealer: int,
        secrets: Sequence[FieldElement] | RefuseType | None,
        rng: random.Random,
        count: int = 1,
    ) -> Program:
        scheme: IdealVSS = self.scheme  # type: ignore[assignment]
        batch_index = self._counters.get((pid, dealer), 0)
        self._counters[(pid, dealer)] = batch_index + 1

        if pid == dealer:
            if secrets is None:
                raise ValueError("dealer must supply secrets (or REFUSE)")
            if not isinstance(secrets, RefuseType) and len(secrets) != count:
                raise ValueError(
                    f"dealer supplied {len(secrets)} secrets for a batch of {count}"
                )
            self._deal(dealer, batch_index, secrets, rng)

        cost = scheme.cost
        for r in range(cost.share_rounds):
            if pid == dealer and r < cost.share_broadcast_rounds:
                yield RoundOutput(broadcast="vss-share")
            else:
                yield RoundOutput.silent()

        record = self._batches.get((dealer, batch_index))
        if record is None or isinstance(record, RefuseType):
            return DEALER_DISQUALIFIED
        first = record
        count = self._batch_lengths[(dealer, batch_index)]
        one = self.scheme.field.encode(1)
        # Views materialize lazily: the batched view algebra works on the
        # handle (the batch's contiguous serial range, driving numpy
        # gathers) and openings slice sub-ranges, so most views are never
        # constructed at all.
        views = _LazyBatchViews(self, pid, first, count, one)
        return SharedBatch(
            dealer=dealer, views=views, handle=(first, count, pid)
        )

    def zero_view(self, pid: int) -> IdealShareView:
        return IdealShareView(self, pid, terms=(), value=0)

    def open_program(self, pid: int, views):
        """Batched public opening (numpy fast path).

        Semantically identical to the base implementation: honest
        parties all open the same views, so a payload is accepted iff it
        matches the verifier's expected ``(terms, value)`` for that
        position; positions where the expected group misses quorum fall
        back to the generic per-value logic (which also handles senders
        forming alternative terms-groups).
        """
        from repro.network import RoundOutput

        n = self.scheme.n
        payloads = self.reveal_payloads_batch(pid, views)
        inbox = yield RoundOutput(
            private={j: payloads for j in range(n) if j != pid}
        )
        columns: list[tuple[int, Any]] = [(pid, payloads)]
        for sender, payload in inbox.private.items():
            if isinstance(payload, (list, tuple)) and len(payload) == len(views):
                columns.append((sender, payload))
        return self._reconstruct_columns(columns, views, pid, strict=True)

    def reconstruct_private_batch(
        self,
        columns: Mapping[int, Any],
        count: int,
        verifier: int | None = None,
        views=None,
    ) -> list[FieldElement | None]:
        """Batch private reconstruction (paper step 4) — numpy fast path.

        When the reconstructing party supplies its own ``views`` (it
        always holds shares of the values being opened), the batched
        verification/recombination of :meth:`open_program` is reused;
        positions that miss quorum fall back to the generic logic and
        yield ``None`` on failure instead of raising.
        """
        if views is not None and len(views) == count:
            cols = [(s, column) for s, column in columns.items()]
            return self._reconstruct_columns(cols, views, verifier, strict=False)
        return super().reconstruct_private_batch(
            columns, count, verifier=verifier, views=views
        )

    def _reconstruct_columns(self, columns, views, pid, strict):
        """Verify and recombine payload columns against the verifier's views.

        ``strict`` controls failure handling: ``True`` propagates
        :class:`ReconstructionError` (public openings must abort),
        ``False`` substitutes ``None`` per failed position (private
        step-4 reconstruction tolerates corrupted coordinates).
        """
        vec = self._use_vector(len(views), VECTOR_OPEN_MIN)
        prof = get_profiler()
        if vec is None:
            if prof.enabled:
                prof.count("vss", "open_scalar_fallback", len(views))
            return self._combine_columns(columns, views, pid, strict)

        import numpy as np

        if prof.enabled:
            prof.count("vss", "open_batched", len(views))
            prof.observe("vss", "open_batch_size", len(views))

        field = self.scheme.field
        quorum = self.scheme.t + 1
        # Flatten the verifier's own terms: arrays over (value, term).
        ks, serials, coeffs = [], [], []
        for k, view in enumerate(views):
            for serial, coeff in view.terms:
                ks.append(k)
                serials.append(serial)
                coeffs.append(coeff)
        evals_arr = self._evals_matrix(vec)
        serial_idx = np.asarray(serials, dtype=np.int64)
        coeff_arr = np.asarray(coeffs, dtype=vec.dtype)
        # Segment boundaries per value (terms were appended in k order).
        ks_arr = np.asarray(ks, dtype=np.int64)
        boundaries = np.searchsorted(ks_arr, np.arange(len(views)))
        counts = np.diff(np.append(boundaries, len(ks)))

        def expected_for_point(x_index: int) -> np.ndarray:
            if len(serial_idx) == 0:
                return np.zeros(len(views), dtype=vec.dtype)
            if prof.enabled:
                # Raw kernel (not batch_eval), so the replaced field ops
                # are accounted analytically: one mul + add per term.
                prof.count("fields", "mul", int(serial_idx.shape[0]))
                prof.count("fields", "add", int(serial_idx.shape[0]))
            prod = vec.mul(evals_arr[serial_idx, x_index], coeff_arr)
            # Per-view field sums of the term products; reduceat
            # misbehaves for empty segments (views with no terms), so
            # patch those to zero.
            out = np.zeros(len(views), dtype=vec.dtype)
            nonempty = counts > 0
            segments = vec.reduceat(prod, boundaries)
            out[nonempty] = segments[nonempty]
            return out

        expected_terms = [v.terms for v in views]
        num_views = len(views)

        # Content signature of this opening: what is being opened (the
        # flattened terms) determines every verifier-independent cached
        # quantity below.  Hashing the raw arrays is O(bytes) in C.
        sig = (
            num_views,
            hash(serial_idx.tobytes()),
            hash(coeff_arr.tobytes()),
        )
        if len(self._honest_cache) > 4096:
            self._honest_cache.clear()
            self._opened_cache.clear()

        # Honest fast path: a sender's whole column is typically exactly
        # the expected honest payload list, so one C-level list
        # comparison per column replaces the per-position Python loop.
        # Fully matching columns carry the verifier's own ground-truth
        # evaluations, and interpolating any ``quorum`` of those at zero
        # yields the same values position-by-position acceptance would —
        # so the first ``quorum`` fully matching columns settle every
        # position with a single batched recombination.
        from itertools import repeat

        expected_cache: dict[int, list[int]] = {}
        full_columns = []
        # Scan in sender order, not arrival order: every verifier of the
        # same opening then settles on the same quorum point set, so the
        # opened-values cache below hits across all n verifiers.  (Any
        # quorum of fully matching columns interpolates to the same
        # values, so the choice is free.)
        for sender, column in sorted(columns, key=lambda sc: sc[0]):
            if len(full_columns) >= quorum:
                break
            hit = self._honest_cache.get((sig, sender))
            if hit is None:
                vals_list = expected_for_point(sender + 1).tolist()
                honest = list(zip(repeat(sender), expected_terms, vals_list))
                self._honest_cache[(sig, sender)] = hit = (vals_list, honest)
            vals_list, honest = hit
            expected_cache[sender] = vals_list
            if column == honest:
                full_columns.append((sender + 1, vals_list))
        if len(full_columns) >= quorum:
            xs = tuple(x for x, _ in full_columns[:quorum])
            cached = self._opened_cache.get((sig, xs))
            if cached is not None:
                return list(cached)
            ys = np.asarray(
                [v for _, v in full_columns[:quorum]], dtype=vec.dtype
            ).T
            lag = vec.array(self._lagrange_at_zero(xs))
            opened = vec.interpolate_at_zero_batch(xs, ys, lagrange=lag)
            results = [FieldElement(field, v) for v in opened.tolist()]
            self._opened_cache[(sig, xs)] = results
            return list(results)

        accepted: list[list[tuple[int, int]]] = [[] for _ in views]
        for sender, column in columns:
            expected_vals = expected_cache.get(sender)
            if expected_vals is None:
                expected_vals = expected_for_point(sender + 1).tolist()
            point = sender + 1
            for k in range(num_views):
                row = accepted[k]
                if len(row) >= quorum:
                    continue
                payload = column[k]
                if (
                    type(payload) is tuple
                    and len(payload) == 3
                    and payload[0] == sender
                    and payload[2] == expected_vals[k]
                    and payload[1] == expected_terms[k]
                ):
                    row.append((point, payload[2]))

        results: list[FieldElement | None] = [None] * num_views
        # Group quorum positions by their accepted point set so each
        # distinct set pays for one Lagrange computation and one
        # batched recombination.
        by_points: dict[tuple[int, ...], list[int]] = {}
        for k in range(num_views):
            pts = accepted[k]
            if len(pts) < quorum:
                # Rare/adversarial: defer to the generic logic.
                try:
                    results[k] = self.verify_and_combine(
                        {sender: column[k] for sender, column in columns},
                        verifier=pid,
                    )
                except ReconstructionError:
                    if strict:
                        raise
                    results[k] = None
                continue
            by_points.setdefault(tuple(p[0] for p in pts), []).append(k)
        for xs, group in by_points.items():
            lag = vec.array(self._lagrange_at_zero(xs))
            ys = np.asarray(
                [[value for _, value in accepted[k]] for k in group],
                dtype=vec.dtype,
            )
            opened = vec.interpolate_at_zero_batch(xs, ys, lagrange=lag)
            for k, value in zip(group, opened.tolist()):
                results[k] = FieldElement(field, value)
        return results

    def _combine_columns(self, columns, views, pid, strict=True):
        """Scalar path shared with the base class's semantics."""
        results = []
        for k in range(len(views)):
            try:
                results.append(
                    self.verify_and_combine(
                        {sender: column[k] for sender, column in columns},
                        verifier=pid,
                    )
                )
            except (ReconstructionError, IndexError):
                if strict:
                    raise
                results.append(None)
        return results

    def reveal_payload(self, pid: int, view: ShareView) -> Any:
        if not isinstance(view, IdealShareView):
            raise TypeError("expected an IdealShareView")
        return (pid, view.terms, view.value)

    def reveal_payloads_batch(self, pid: int, views) -> list[Any]:
        payloads = []
        size = 0
        for view in views:
            if not isinstance(view, IdealShareView):
                raise TypeError("expected an IdealShareView")
            terms = view.terms
            # Accounting size of one item (pid, terms, value): two int
            # atoms plus two per (serial, coeff) pair — precomputed here
            # so the engine's per-atom walk is skipped for the protocol's
            # dominant payloads.
            size += 2 + 2 * len(terms)
            payloads.append((pid, terms, view.value))
        return SizedPayload(payloads, size)

    # -- batched view algebra (AnonChan hot path) ---------------------------
    # These produce views *identical* (terms, value) to the generic
    # view-by-view fallbacks in VSSSession — the differential harness in
    # tests/core/test_batched_equivalence.py pins that down — but read
    # the share values straight out of the functionality's eval matrix
    # via the batch handles instead of walking view objects.

    def diff_offsets_batch(self, batch, offsets_a, offsets_b):
        handle = getattr(batch, "handle", None)
        vec = self._use_vector(len(offsets_a), VECTOR_COMBINE_MIN)
        if vec is None or handle is None:
            return super().diff_offsets_batch(batch, offsets_a, offsets_b)

        import numpy as np

        first, count, pid = handle
        offs_a = np.asarray(offsets_a, dtype=np.int64)
        offs_b = np.asarray(offsets_b, dtype=np.int64)
        if (
            offs_a.ndim != 1
            or offs_a.shape != offs_b.shape
            or (offs_a.size and (offs_a.min() < 0 or offs_a.max() >= count))
            or (offs_b.size and (offs_b.min() < 0 or offs_b.max() >= count))
        ):
            # Odd shapes/offsets (negative indexing, mismatched arrays):
            # the generic path preserves exact scalar semantics.
            return super().diff_offsets_batch(batch, offsets_a, offsets_b)
        if offs_a.size == 0:
            return []

        field = self.scheme.field
        one = field.encode(1)
        minus_one = field.neg(one)
        serials_a = first + offs_a
        serials_b = first + offs_b
        evals = self._evals_matrix(vec)
        col = pid + 1
        va = evals[serials_a, col]
        vb = evals[serials_b, col]
        m = int(offs_a.size)
        prof = get_profiler()
        if minus_one == one:  # characteristic 2: a - b == a + b
            values = vec.add(va, vb)
            coeff_b = one
            if prof.enabled:
                prof.count("fields", "add", m)
        else:
            values = vec.add(va, vec.scale(vb, minus_one))
            coeff_b = minus_one
            if prof.enabled:
                prof.count("fields", "add", m)
                prof.count("fields", "mul", m)
        if prof.enabled:
            prof.count("vss", "combine_batched", m)

        out = []
        for sa, sb, value in zip(
            serials_a.tolist(), serials_b.tolist(), values.tolist()
        ):
            if sa == sb:
                terms: Terms = ()  # coefficients cancel (1 + (-1) = 0)
            elif sa < sb:
                terms = ((sa, one), (sb, coeff_b))
            else:
                terms = ((sb, coeff_b), (sa, one))
            out.append(IdealShareView(self, pid, terms, int(value)))
        return out

    def sum_offsets_batch(self, batches, offset_columns):
        if len(batches) != len(offset_columns):
            raise ValueError("one offset column per batch required")
        if not batches:
            return []
        m = len(offset_columns[0])
        vec = self._use_vector(m * len(batches), VECTOR_COMBINE_MIN)
        handles = [getattr(b, "handle", None) for b in batches]
        if vec is None or any(h is None for h in handles):
            return super().sum_offsets_batch(batches, offset_columns)
        pid = handles[0][2]
        if any(h[2] != pid for h in handles):
            return super().sum_offsets_batch(batches, offset_columns)

        import numpy as np

        serial_rows = []
        for handle, column in zip(handles, offset_columns):
            first, count, _ = handle
            offs = np.asarray(column, dtype=np.int64)
            if (
                offs.ndim != 1
                or offs.shape[0] != m
                or (offs.size and (offs.min() < 0 or offs.max() >= count))
            ):
                return super().sum_offsets_batch(batches, offset_columns)
            serial_rows.append(first + offs)
        serial_matrix = np.stack(serial_rows, axis=0)  # (num_batches, m)
        sorted_serials = np.sort(serial_matrix, axis=0)
        if (np.diff(sorted_serials, axis=0) == 0).any():
            # Duplicate serials in one sum would need coefficient
            # merging; distinct dealt batches never overlap, so this
            # only happens for hand-built inputs — defer.
            return super().sum_offsets_batch(batches, offset_columns)

        evals = self._evals_matrix(vec)
        values = vec.reduce_sum(evals[serial_matrix, pid + 1], axis=0)
        prof = get_profiler()
        if prof.enabled:
            prof.count("fields", "add", m * max(0, len(batches) - 1))
            prof.count("vss", "combine_batched", m)
        one = self.scheme.field.encode(1)
        out = []
        for col_serials, value in zip(
            sorted_serials.T.tolist(), values.tolist()
        ):
            terms = tuple((s, one) for s in col_serials)
            out.append(IdealShareView(self, pid, terms, int(value)))
        return out

    def verify_and_combine(
        self, payloads: Mapping[int, Any], verifier: int | None = None
    ) -> FieldElement:
        """Models the w.h.p. guarantees of a real statistical VSS-Rec.

        A payload from party ``i`` is accepted iff its claimed share
        value matches the functionality's record for the claimed terms
        at ``i``'s evaluation point (real schemes achieve this check via
        ICP / error correction).  The value of the terms-group with at
        least ``t + 1`` accepted payloads is reconstructed by Lagrange
        interpolation of the accepted points.
        """
        get_profiler().count("vss", "verify_and_combine")
        field = self.scheme.field
        quorum = self.scheme.t + 1
        groups: dict[Terms, list[tuple[int, int]]] = {}
        for sender, payload in payloads.items():
            if (
                type(payload) is not tuple
                or len(payload) != 3
                or payload[0] != sender
                or type(payload[2]) is not int
            ):
                continue  # malformed or mis-attributed payload: rejected
            groups.setdefault(payload[1], []).append((sender, payload[2]))

        evals = self._evals
        num_values = len(evals)
        add, mul = field.add, field.mul
        # Largest claimed group first; within a group, verify members
        # lazily — with >= t+1 honest contributors the first quorum of
        # verifications already succeeds.
        for terms, members in sorted(groups.items(), key=lambda kv: -len(kv[1])):
            if len(members) < quorum:
                break
            if type(terms) is not tuple or not all(
                type(term) is tuple
                and len(term) == 2
                and type(term[0]) is int
                and 0 <= term[0] < num_values
                and type(term[1]) is int
                for term in terms
            ):
                continue  # references to non-existent sharings: rejected
            pts: list[tuple[int, int]] = []
            for sender, value in members:
                x_index = sender + 1
                expected = 0
                for serial, coeff in terms:
                    expected = add(expected, mul(coeff, evals[serial][x_index]))
                if expected != value:
                    continue  # forged share value: rejected (w.h.p. in reality)
                pts.append((x_index, value))
                if len(pts) == quorum:
                    break
            if len(pts) < quorum:
                continue
            xs = tuple(p[0] for p in pts)
            coeffs = self._lagrange_at_zero(xs)
            acc = 0
            for (_, value), c in zip(pts, coeffs):
                acc = add(acc, mul(c, value))
            return FieldElement(field, acc)
        raise ReconstructionError(
            f"no terms-group reached {quorum} verified payloads"
        )


class IdealVSS(VSSScheme):
    """Ideal linear VSS with a pluggable round/broadcast cost profile.

    ``backend`` picks the batch-kernel policy of new sessions (see
    :meth:`IdealVSSSession.configure_backend`); per-session overrides
    remain possible via that method.
    """

    def __init__(
        self,
        field,
        n: int,
        t: int,
        cost: VSSCost | None = None,
        backend: str = "auto",
    ):
        if cost is None:
            cost = VSSCost(share_rounds=1, share_broadcast_rounds=0)
        if backend not in VECTOR_BACKEND_MODES:
            raise ValueError(
                f"unknown backend {backend!r}, expected one of "
                f"{VECTOR_BACKEND_MODES}"
            )
        super().__init__(field, n, t, cost)
        self.backend = backend

    def new_session(self, rng: random.Random) -> IdealVSSSession:
        return IdealVSSSession(self)
