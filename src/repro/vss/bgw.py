"""Executable perfect VSS for t < n/3 (BGW-style bivariate sharing).

A fully message-level linear VSS in the paper's model, following the
classical structure (cf. BGW88 as formalized by Asharov–Lindell):

1. The dealer picks, per secret, a random symmetric bivariate
   polynomial ``F(x, y)`` of degree ``t`` with ``F(0,0) = s`` and sends
   ``P_i`` the row ``f_i(y) = F(i, y)`` (private).
2. Parties exchange crossing values ``f_i(j)`` pairwise (private).
3. Parties broadcast complaints about mismatched crossings or
   missing/malformed rows.  *No complaints -> sharing complete after 3
   rounds and zero broadcast rounds (the honest-dealer fast path).*
4. The dealer broadcasts resolutions (true crossing values, or full
   rows of parties whose row was bad).
5. Parties whose private data contradicts the public record broadcast
   accusations; the dealer answers by broadcasting their full rows;
   this repeats while new accusations appear.  All control flow after
   step 3 depends only on broadcast data, so honest parties always
   agree on the schedule and on the verdict.

The dealer is disqualified iff the public record is inconsistent or
more than ``t`` parties ended up accused/unresolved.  Shares are the
row values at 0; with ``n >= 3t + 1`` reconstruction is error-corrected
by Berlekamp–Welch, which is what makes the paper's *private*
reconstruction at ``P*`` (step 4 of AnonChan) robust: the receiver just
decodes locally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.fields import FieldElement, Polynomial
from repro.network import Program, RoundOutput
from repro.sharing import DecodingError, SymmetricBivariate, berlekamp_welch

from .base import (
    DEALER_DISQUALIFIED,
    ReconstructionError,
    SharedBatch,
    ShareView,
    VSSScheme,
    VSSSession,
)
from .costs import BGW_COST


@dataclass(frozen=True)
class BGWShareView(ShareView):
    """A party's Shamir share of one value (point on ``F(x, 0)``)."""

    session: "BGWVSSSession"
    pid: int
    value: int  # raw field encoding

    def __add__(self, other: ShareView) -> "BGWShareView":
        if not isinstance(other, BGWShareView) or other.pid != self.pid:
            raise ValueError("cannot combine views of different parties")
        field = self.session.scheme.field
        return BGWShareView(
            self.session, self.pid, field.add(self.value, other.value)
        )

    def scale(self, scalar: FieldElement) -> "BGWShareView":
        field = self.session.scheme.field
        return BGWShareView(
            self.session, self.pid, field.mul(self.value, scalar.value)
        )


class BGWVSSSession(VSSSession):
    """Stateless session (all state lives in the party programs)."""

    # -- helpers -------------------------------------------------------------
    def _row_ok(self, row: Any) -> bool:
        """Syntactic validity of a received row polynomial."""
        scheme = self.scheme
        return (
            isinstance(row, Polynomial)
            and row.field == scheme.field
            and row.degree <= scheme.t
        )

    def share_program(
        self,
        pid: int,
        dealer: int,
        secrets: Sequence[FieldElement] | None,
        rng: random.Random,
        count: int = 1,
    ) -> Program:
        scheme = self.scheme
        field = scheme.field
        n, t = scheme.n, scheme.t
        others = [j for j in range(n) if j != pid]

        # ---- round 1: dealer distributes rows --------------------------------
        if pid == dealer:
            if secrets is None:
                raise ValueError("dealer must supply secrets")
            if len(secrets) != count:
                raise ValueError(
                    f"dealer supplied {len(secrets)} secrets for a batch of {count}"
                )
            bivariates = [
                SymmetricBivariate.random(field, t, s, rng) for s in secrets
            ]
            row_msgs = {
                j: [b.row(j + 1) for b in bivariates] for j in range(n)
            }
            my_rows: list[Polynomial] | None = row_msgs[pid]
            inbox = yield RoundOutput(
                private={j: row_msgs[j] for j in others}
            )
        else:
            inbox = yield RoundOutput.silent()
            raw = inbox.private.get(dealer)
            if (
                isinstance(raw, list)
                and len(raw) == count
                and all(self._row_ok(r) for r in raw)
            ):
                my_rows = list(raw)
            else:
                my_rows = None  # missing or malformed: will complain
        # ---- round 2: pairwise crossing exchange ------------------------------
        if my_rows is not None:
            crossings = {
                j: [row(j + 1).value for row in my_rows] for j in others
            }
        else:
            crossings = {}
        inbox = yield RoundOutput(private=crossings)
        received_crossings: dict[int, list[int]] = {}
        for j, payload in inbox.private.items():
            if isinstance(payload, list) and all(
                isinstance(v, int) for v in payload
            ):
                received_crossings[j] = payload

        # ---- round 3: broadcast complaints -----------------------------------
        complaints: list[tuple[str, Any]] = []
        if my_rows is None:
            complaints.append(("bad-row", None))
        else:
            for j in others:
                got = received_crossings.get(j)
                if got is None or len(got) != len(my_rows):
                    complaints.append(("cross", j))
                    continue
                for k, row in enumerate(my_rows):
                    if row(j + 1).value != got[k]:
                        complaints.append(("cross", j))
                        break
        inbox = yield RoundOutput(
            broadcast=complaints if complaints else None
        )
        all_complaints: dict[int, list[tuple[str, Any]]] = {}
        for sender, payload in inbox.broadcast.items():
            if isinstance(payload, list):
                all_complaints[sender] = [
                    c for c in payload
                    if isinstance(c, tuple) and len(c) == 2
                ]

        if not all_complaints:
            # Honest-dealer fast path: 3 rounds, no broadcast was used.
            return self._finish(pid, my_rows, {}, count)

        # ---- round 4: dealer broadcasts resolutions ---------------------------
        if pid == dealer:
            resolutions: dict[str, Any] = {"values": {}, "rows": {}}
            for complainer, items in all_complaints.items():
                for kind, arg in items:
                    if kind == "bad-row":
                        resolutions["rows"][complainer] = [
                            b.row(complainer + 1) for b in bivariates
                        ]
                    elif kind == "cross" and isinstance(arg, int) and 0 <= arg < n:
                        for k, b in enumerate(bivariates):
                            resolutions["values"][(k, complainer, arg)] = b(
                                complainer + 1, arg + 1
                            ).value
            inbox = yield RoundOutput(broadcast=resolutions)
        else:
            inbox = yield RoundOutput.silent()
        public = inbox.broadcast.get(dealer)
        if not isinstance(public, dict) or "values" not in public or "rows" not in public:
            return DEALER_DISQUALIFIED  # dealer failed to answer complaints
        public_values: dict[tuple[int, int, int], int] = {
            key: value
            for key, value in dict(public["values"]).items()
            if isinstance(key, tuple)
            and len(key) == 3
            and all(isinstance(v, int) for v in key)
            and isinstance(value, int)
        }
        public_rows: dict[int, list[Polynomial]] = {
            i: rows
            for i, rows in dict(public["rows"]).items()
            if isinstance(i, int) and 0 <= i < n and isinstance(rows, list)
        }

        # Dealer must have answered every complaint.
        def complaint_answered(complainer: int, kind: str, arg: Any) -> bool:
            if complainer in public_rows:
                return True
            if kind == "bad-row":
                return False
            if kind == "cross":
                return all(
                    (k, complainer, arg) in public_values for k in range(count)
                )
            return True  # malformed complaint needs no answer

        unresolved = any(
            not complaint_answered(c, kind, arg)
            for c, items in all_complaints.items()
            for kind, arg in items
        )

        # ---- accusation loop ---------------------------------------------------
        unhappy: set[int] = set(public_rows)
        disqualified = unresolved or not self._public_consistent(
            public_values, public_rows, count
        )

        def i_am_unhappy() -> bool:
            if pid in unhappy or pid == dealer:
                return False
            if my_rows is None or len(my_rows) != count:
                return True
            for (k, i, j), value in public_values.items():
                if i == pid and k < count and my_rows[k](j + 1).value != value:
                    return True
                if j == pid and k < count and my_rows[k](i + 1).value != value:
                    return True
            for m, rows in public_rows.items():
                if len(rows) != count:
                    continue
                for k in range(count):
                    if rows[k](pid + 1) != my_rows[k](m + 1):
                        return True
            return False

        while True:
            accuse = (not disqualified) and i_am_unhappy()
            inbox = yield RoundOutput(broadcast="accuse" if accuse else None)
            new_accusers = {
                sender
                for sender, payload in inbox.broadcast.items()
                if payload == "accuse" and sender not in unhappy and sender != dealer
            }
            if not new_accusers:
                break
            unhappy |= new_accusers
            if pid == dealer:
                answer = {
                    m: [b.row(m + 1) for b in bivariates] for m in new_accusers
                }
                inbox = yield RoundOutput(broadcast=answer)
            else:
                inbox = yield RoundOutput.silent()
            answer = inbox.broadcast.get(dealer)
            if not isinstance(answer, dict) or set(answer) != new_accusers:
                disqualified = True
                continue
            for m, rows in answer.items():
                if (
                    isinstance(rows, list)
                    and len(rows) == count
                    and all(self._row_ok(r) for r in rows)
                ):
                    public_rows[m] = rows
                else:
                    disqualified = True
            if not self._public_consistent(public_values, public_rows, count):
                disqualified = True

        if disqualified or len(unhappy) > self.scheme.t:
            return DEALER_DISQUALIFIED
        return self._finish(pid, my_rows, public_rows, count)

    def _public_consistent(
        self,
        values: Mapping[tuple[int, int, int], int],
        rows: Mapping[int, list[Polynomial]],
        count: int,
    ) -> bool:
        """Local consistency of all broadcast data (same for everyone)."""
        for m, rlist in rows.items():
            if len(rlist) != count or not all(self._row_ok(r) for r in rlist):
                return False
        # Broadcast rows must match broadcast crossing values...
        for (k, i, j), value in values.items():
            if not (0 <= k < count):
                return False
            for party, point in ((i, j), (j, i)):
                if party in rows and rows[party][k](point + 1).value != value:
                    return False
        # ...and be pairwise consistent with each other.
        ids = sorted(rows)
        for a_idx, a in enumerate(ids):
            for b in ids[a_idx + 1 :]:
                for k in range(count):
                    if rows[a][k](b + 1) != rows[b][k](a + 1):
                        return False
        return True

    def _finish(
        self,
        pid: int,
        my_rows: list[Polynomial] | None,
        public_rows: Mapping[int, list[Polynomial]],
        count: int,
    ) -> SharedBatch:
        rows = public_rows.get(pid, my_rows)
        if rows is None or len(rows) != count:
            # A party without a usable row holds zero shares; with an
            # honest dealer this never happens, and with a corrupt dealer
            # at most t (corrupt) parties are affected, which Berlekamp-
            # Welch absorbs at reconstruction.
            views = [
                BGWShareView(self, pid, 0) for _ in range(count)
            ]
            return SharedBatch(dealer=-1, views=views)
        views = [BGWShareView(self, pid, row(0).value) for row in rows]
        return SharedBatch(dealer=-1, views=views)

    def zero_view(self, pid: int) -> BGWShareView:
        return BGWShareView(self, pid, 0)

    def reveal_payload(self, pid: int, view: ShareView) -> Any:
        if not isinstance(view, BGWShareView):
            raise TypeError("expected a BGWShareView")
        return view.value

    def verify_and_combine(
        self, payloads: Mapping[int, Any], verifier: int | None = None
    ) -> FieldElement:
        """Berlekamp–Welch decoding of the received share points."""
        field = self.scheme.field
        t = self.scheme.t
        points = [
            (field(sender + 1), field(value))
            for sender, value in payloads.items()
            if isinstance(value, int) and 0 <= value < field.order
        ]
        if len(points) < 2 * t + 1:
            raise ReconstructionError(
                f"only {len(points)} well-formed payloads; need {2 * t + 1}"
            )
        try:
            poly, _errors = berlekamp_welch(field, points, degree=t)
        except DecodingError as exc:
            raise ReconstructionError(str(exc)) from exc
        return poly(0)


class BGWVSS(VSSScheme):
    """Perfect, linear VSS for t < n/3 (fully executable)."""

    def __init__(self, field, n: int, t: int):
        if 3 * t >= n:
            raise ValueError(f"perfect VSS requires t < n/3, got n={n}, t={t}")
        super().__init__(field, n, t, BGW_COST)

    def new_session(self, rng: random.Random) -> BGWVSSSession:
        return BGWVSSSession(self)
