"""Round/broadcast cost profiles of the VSS schemes the paper compares.

Sources (all figures as cited *in the paper*):

- RB89 (Rabin–Ben-Or): 7 sharing rounds (Section 1.1, Section 1.2).
- Rab94 (Rabin): 9 sharing rounds (footnote 7).
- GGOR13 (Garay–Givens–Ostrovsky–Raykov, ICITS'13): 21 sharing rounds
  and only **2 broadcast rounds in sharing, none in reconstruction**
  (Section 2.2); statically secure.

The paper does not state broadcast-round counts for RB89/Rab94; those
schemes use broadcast throughout their sharing phase, and we model them
with a conservative placeholder (broadcast in every sharing round).
Nothing reproduced here depends on the placeholder: the paper's
broadcast claim (E2) is specifically "2 broadcasts with the GGOR13
VSS", which is exact below.
"""

from __future__ import annotations

from dataclasses import dataclass

from .base import VSSCost

#: Rabin–Ben-Or STOC'89 statistical VSS, t < n/2 (7 sharing rounds).
RB89_COST = VSSCost(
    share_rounds=7,
    share_broadcast_rounds=7,  # placeholder upper bound, see module docs
    reconstruct_rounds=1,
    reconstruct_broadcast_rounds=0,
)

#: Rabin JACM'94 statistical VSS, t < n/2 (9 sharing rounds).
RAB94_COST = VSSCost(
    share_rounds=9,
    share_broadcast_rounds=9,  # placeholder upper bound, see module docs
    reconstruct_rounds=1,
    reconstruct_broadcast_rounds=0,
)

#: GGOR ICITS'13 broadcast-efficient statistical VSS, t < n/2.
GGOR13_COST = VSSCost(
    share_rounds=21,
    share_broadcast_rounds=2,
    reconstruct_rounds=1,
    reconstruct_broadcast_rounds=0,
)

#: Our executable perfect VSS (t < n/3), honest-dealer fast path
#: (3 rounds, no broadcast; faults trigger extra complaint rounds that
#: do use broadcast -- measured in experiment E7).
BGW_COST = VSSCost(
    share_rounds=3,
    share_broadcast_rounds=0,
    reconstruct_rounds=1,
    reconstruct_broadcast_rounds=0,
)

#: Our executable statistical VSS (t < n/2), honest-dealer fast path
#: (3 rounds, no broadcast; complaints add broadcast rounds).
RB89_IMPL_COST = VSSCost(
    share_rounds=3,
    share_broadcast_rounds=0,
    reconstruct_rounds=1,
    reconstruct_broadcast_rounds=0,
)


@dataclass(frozen=True)
class VSSProfile:
    """A named scheme profile for cost comparisons (experiment E7)."""

    name: str
    cost: VSSCost
    threshold: str  # "t < n/2" or "t < n/3"
    security: str  # "statistical" or "perfect"
    source: str  # where the figures come from


PROFILES: dict[str, VSSProfile] = {
    "RB89": VSSProfile(
        name="RB89",
        cost=RB89_COST,
        threshold="t < n/2",
        security="statistical",
        source="paper §1.1/§1.2 (7 rounds); broadcast count modeled",
    ),
    "Rab94": VSSProfile(
        name="Rab94",
        cost=RAB94_COST,
        threshold="t < n/2",
        security="statistical",
        source="paper footnote 7 (9 rounds); broadcast count modeled",
    ),
    "GGOR13": VSSProfile(
        name="GGOR13",
        cost=GGOR13_COST,
        threshold="t < n/2",
        security="statistical (static adversary)",
        source="paper §2.2 + footnote 7 (21 rounds, 2 broadcasts)",
    ),
    "BGW-impl": VSSProfile(
        name="BGW-impl",
        cost=BGW_COST,
        threshold="t < n/3",
        security="perfect",
        source="this repository (measured, honest-dealer fast path)",
    ),
    "RB89-impl": VSSProfile(
        name="RB89-impl",
        cost=RB89_IMPL_COST,
        threshold="t < n/2",
        security="statistical",
        source="this repository (measured, honest-dealer fast path)",
    ),
}
