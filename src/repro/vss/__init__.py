"""Linear verifiable secret sharing behind one interface.

Backends:

- :class:`IdealVSS` — ideal-functionality model with pluggable cost
  profiles (hybrid-model composition, used by large experiments).
- :class:`BGWVSS` — fully executable perfect VSS for ``t < n/3``.
- :class:`RB89VSS` — fully executable statistical VSS for ``t < n/2``
  (see :mod:`repro.vss.rb89`).
"""

from .base import (
    DEALER_DISQUALIFIED,
    ReconstructionError,
    SharedBatch,
    ShareView,
    VSSCost,
    VSSScheme,
    VSSSession,
    combine_views,
)
from .bgw import BGWVSS, BGWShareView, BGWVSSSession
from .costs import (
    BGW_COST,
    GGOR13_COST,
    PROFILES,
    RAB94_COST,
    RB89_COST,
    RB89_IMPL_COST,
    VSSProfile,
)
from .ideal import REFUSE, IdealShareView, IdealVSS, IdealVSSSession
from .rb89 import RB89VSS, RB89ShareView, RB89VSSSession

__all__ = [
    "VSSScheme",
    "VSSSession",
    "VSSCost",
    "ShareView",
    "SharedBatch",
    "combine_views",
    "DEALER_DISQUALIFIED",
    "ReconstructionError",
    "IdealVSS",
    "IdealVSSSession",
    "IdealShareView",
    "REFUSE",
    "BGWVSS",
    "BGWVSSSession",
    "BGWShareView",
    "RB89VSS",
    "RB89VSSSession",
    "RB89ShareView",
    "PROFILES",
    "VSSProfile",
    "RB89_COST",
    "RAB94_COST",
    "GGOR13_COST",
    "BGW_COST",
    "RB89_IMPL_COST",
]
