"""The linear VSS interface AnonChan is written against.

The paper uses VSS strictly black-box (Section 2.2): a pair
(VSS-Share, VSS-Rec) with Commitment, Privacy and Linearity, for
``t < n/2``.  This module fixes the programmatic shape of that black
box:

- :meth:`VSSScheme.new_session` starts a per-execution session.
- :meth:`VSSSession.share_program` is a party's code for (a batch of
  parallel) VSS-Share invocations by one dealer; it returns either a
  :class:`SharedBatch` of per-party :class:`ShareView` objects or the
  :data:`DEALER_DISQUALIFIED` sentinel (all honest parties agree which).
- :class:`ShareView` objects combine linearly *across dealers* without
  interaction (Linearity).
- Reconstruction is payload-based so it supports both public opening
  (everyone exchanges payloads — :meth:`VSSSession.open_program`) and
  the paper's step-4 *private* reconstruction, where parties send
  payloads to the receiver only and it "internally simulates VSS-Rec"
  via :meth:`VSSSession.verify_and_combine`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.fields import Field, FieldElement
from repro.network import Program, RoundOutput


class DealerDisqualifiedType:
    """Singleton marker: the dealer was publicly disqualified in sharing."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "DEALER_DISQUALIFIED"


#: Returned by ``share_program`` when the dealer was caught cheating.
DEALER_DISQUALIFIED = DealerDisqualifiedType()


class ReconstructionError(Exception):
    """Raised when robust reconstruction cannot identify the secret."""


@dataclass(frozen=True)
class VSSCost:
    """Round/broadcast cost profile of one VSS scheme.

    ``share_broadcast_rounds`` is the scarce resource of interest
    (GGOR13: 2; the whole point of the paper's reduction is that
    AnonChan adds *no* broadcast rounds beyond these).
    """

    share_rounds: int
    share_broadcast_rounds: int
    reconstruct_rounds: int = 1
    reconstruct_broadcast_rounds: int = 0

    def __post_init__(self):
        if self.share_broadcast_rounds > self.share_rounds:
            raise ValueError("more broadcast rounds than rounds in sharing")
        if self.reconstruct_broadcast_rounds > self.reconstruct_rounds:
            raise ValueError("more broadcast rounds than rounds in rec")


class ShareView(ABC):
    """One party's share of one verifiably-shared value.

    Supports the linear algebra the paper's step 4 needs: views of
    different values held by the *same* party combine into a view of the
    linear combination, with no interaction.
    """

    @abstractmethod
    def __add__(self, other: "ShareView") -> "ShareView": ...

    @abstractmethod
    def scale(self, scalar: FieldElement) -> "ShareView": ...


@dataclass
class SharedBatch:
    """A party's result of one batched VSS-Share: one view per secret.

    ``handle`` is backend-private fast-path metadata (e.g. the ideal
    backend stamps the contiguous serial range of the batch so offset
    arithmetic can run as numpy gathers).  It is ``None`` for
    hand-built batches and for backends without a batched fast path;
    consumers must treat it as opaque and fall back to the generic
    view-by-view path when absent.
    """

    dealer: int
    views: Sequence[ShareView]
    handle: Any = None

    def __len__(self) -> int:
        return len(self.views)

    def __getitem__(self, index: int) -> ShareView:
        return self.views[index]


class VSSSession(ABC):
    """Per-execution state of a VSS scheme for one party set."""

    def __init__(self, scheme: "VSSScheme"):
        self.scheme = scheme

    # -- sharing -----------------------------------------------------------
    @abstractmethod
    def share_program(
        self,
        pid: int,
        dealer: int,
        secrets: Sequence[FieldElement] | None,
        rng: random.Random,
        count: int = 1,
    ) -> Program:
        """Party ``pid``'s program for a batch of parallel VSS-Share.

        ``secrets`` is the dealer's input (``None`` for non-dealers);
        ``count`` is the publicly known batch length — a protocol
        parameter, so honest parties always agree on it even when the
        dealer misbehaves.  Returns a :class:`SharedBatch` or
        :data:`DEALER_DISQUALIFIED`.
        """

    # -- reconstruction -----------------------------------------------------
    @abstractmethod
    def reveal_payload(self, pid: int, view: ShareView) -> Any:
        """The payload ``pid`` contributes when opening ``view``."""

    @abstractmethod
    def verify_and_combine(
        self, payloads: Mapping[int, Any], verifier: int | None = None
    ) -> FieldElement:
        """Robustly reconstruct a value from reveal payloads.

        Pure function of the payloads (plus session verification state),
        so the designated receiver can run it locally on privately
        received payloads — the paper's "internally simulate VSS-Rec".
        Corrupted payloads are detected and ignored; raises
        :class:`ReconstructionError` if no value is identifiable.

        ``verifier`` identifies the reconstructing party for backends
        whose share authentication is verifier-specific (the statistical
        backend's ICP keys); backends with verifier-independent
        robustness (error correction, the ideal functionality) ignore it.
        """

    def zero_view(self, pid: int) -> ShareView:
        """A view of the constant 0 (identity for linear combination)."""
        raise NotImplementedError

    def reconstruct_private_batch(
        self,
        columns: Mapping[int, Sequence[Any]],
        count: int,
        verifier: int | None = None,
        views: Sequence[ShareView] | None = None,
    ) -> list[FieldElement | None]:
        """Robustly reconstruct ``count`` values from payload columns.

        ``columns`` maps each sender to its list of ``count`` reveal
        payloads (senders with malformed column lengths must be
        filtered by the caller).  This is the batch form of the paper's
        step-4 private reconstruction: the designated receiver runs it
        locally on privately received payloads.  Positions where no
        value is identifiable yield ``None`` instead of raising, so one
        corrupted coordinate cannot abort the whole opening.  ``views``
        optionally carries the verifier's own share views for backends
        with a batched fast path; this generic implementation ignores
        it.
        """
        results: list[FieldElement | None] = []
        for k in range(count):
            try:
                results.append(
                    self.verify_and_combine(
                        {s: column[k] for s, column in columns.items()},
                        verifier=verifier,
                    )
                )
            except (ReconstructionError, IndexError):
                results.append(None)
        return results

    # -- batched linear algebra ---------------------------------------------
    # Generic implementations: correct for every backend, view-by-view.
    # Backends with a vectorized substrate override these with numpy
    # fast paths that produce *identical* view objects (the differential
    # harness pins this down); callers must not depend on timing.

    def reveal_payloads_batch(
        self, pid: int, views: Sequence[ShareView]
    ) -> list[Any]:
        """Reveal payloads for many views at once."""
        return [self.reveal_payload(pid, v) for v in views]

    def diff_views_batch(
        self,
        minuends: Sequence[ShareView],
        subtrahends: Sequence[ShareView],
    ) -> list[ShareView]:
        """Element-wise view differences ``minuends[k] - subtrahends[k]``."""
        from repro.obs.profiler import get_profiler

        field = self.scheme.field
        one = field(field.encode(1))
        minus_one = field(field.neg(one.value))
        prof = get_profiler()
        if prof.enabled and minuends:
            prof.count("vss", "combine_scalar_fallback", len(minuends))
        if minus_one.value == one.value:  # char 2: subtraction is addition
            return [
                a + b for a, b in zip(minuends, subtrahends, strict=True)
            ]
        return [
            a + b.scale(minus_one)
            for a, b in zip(minuends, subtrahends, strict=True)
        ]

    def diff_offsets_batch(
        self,
        batch: SharedBatch,
        offsets_a: Sequence[int],
        offsets_b: Sequence[int],
    ) -> list[ShareView]:
        """Differences ``batch[a_k] - batch[b_k]`` over offset arrays."""
        views = batch.views
        return self.diff_views_batch(
            [views[int(o)] for o in offsets_a],
            [views[int(o)] for o in offsets_b],
        )

    def sum_views_rows(
        self, rows: Sequence[Sequence[ShareView]]
    ) -> list[ShareView]:
        """Per-row linear-combination sums (one ``combine_views`` each)."""
        from repro.obs.profiler import get_profiler

        prof = get_profiler()
        if prof.enabled and rows:
            prof.count("vss", "combine_scalar_fallback", len(rows))
        return [combine_views(row) for row in rows]

    def sum_offsets_batch(
        self,
        batches: Sequence[SharedBatch],
        offset_columns: Sequence[Sequence[int]],
    ) -> list[ShareView]:
        """Cross-batch sums ``out[k] = sum_i batches[i][columns[i][k]]``.

        One offset column per batch, all of equal length ``m``; this is
        the shape of the paper's step-4 receiver sum (one batch per
        passing prover, one offset column per prover permutation).
        """
        if len(batches) != len(offset_columns):
            raise ValueError("one offset column per batch required")
        m = len(offset_columns[0]) if offset_columns else 0
        rows = [
            [
                batch.views[int(col[k])]
                for batch, col in zip(batches, offset_columns)
            ]
            for k in range(m)
        ]
        return self.sum_views_rows(rows)

    # -- canonical public opening -------------------------------------------
    def open_program(self, pid: int, views: Sequence[ShareView]) -> Program:
        """Publicly reconstruct several values in one round.

        Every party sends its reveal payloads to every other party over
        the private channels (no broadcast needed: robustness of
        ``verify_and_combine`` makes equivocation ineffective) and
        locally combines.  Returns the list of reconstructed values.
        """
        n = self.scheme.n
        payloads = self.reveal_payloads_batch(pid, views)
        inbox = yield RoundOutput(
            private={j: payloads for j in range(n) if j != pid}
        )
        columns: list[tuple[int, Any]] = [(pid, payloads)]
        for sender, payload in inbox.private.items():
            if isinstance(payload, (list, tuple)) and len(payload) == len(views):
                columns.append((sender, payload))
        results = []
        for k in range(len(views)):
            results.append(
                self.verify_and_combine(
                    {sender: payload[k] for sender, payload in columns},
                    verifier=pid,
                )
            )
        return results


class VSSScheme(ABC):
    """A linear verifiable secret sharing scheme for n parties, t < n/2."""

    def __init__(self, field: Field, n: int, t: int, cost: VSSCost):
        if not 0 <= t < n:
            raise ValueError(f"invalid threshold t={t} for n={n}")
        if field.order <= n:
            raise ValueError("field too small for the party set")
        self.field = field
        self.n = n
        self.t = t
        self.cost = cost

    @abstractmethod
    def new_session(self, rng: random.Random) -> VSSSession:
        """Start a fresh session (per protocol execution)."""

    @property
    def name(self) -> str:
        return type(self).__name__


def combine_views(
    views: Sequence[ShareView],
    coefficients: Sequence[FieldElement] | None = None,
) -> ShareView:
    """Linear combination of share views (local, no interaction).

    With ``coefficients`` omitted computes the plain sum.  At least one
    view is required (use ``session.zero_view`` for empty sums).
    """
    if not views:
        raise ValueError("need at least one view (use zero_view for empty sums)")
    if coefficients is None:
        acc = views[0]
        for v in views[1:]:
            acc = acc + v
        return acc
    if len(coefficients) != len(views):
        raise ValueError("one coefficient per view required")
    acc = views[0].scale(coefficients[0])
    for v, c in zip(views[1:], coefficients[1:]):
        acc = acc + v.scale(c)
    return acc
