"""Synchronous network simulator.

Realizes the paper's communication model: ``n`` parties on a complete
network of secure (private, authenticated) point-to-point channels plus
a physical broadcast channel, computing in synchronous rounds against a
rushing active adversary.

Guarantees enforced by construction:

- **Privacy/authenticity of channels** — a party only ever sees payloads
  addressed to it, attributed to their true sender; the adversary sees
  only broadcasts and traffic addressed to corrupted parties.
- **Broadcast consistency** — one payload per broadcaster per round is
  delivered identically to everyone (no equivocation on the physical
  channel).
- **Rushing** — honest round outputs are fixed before the adversary
  chooses the corrupted parties' outputs for the same round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from .adversary import Adversary, RushedView
from .messages import LamportClock, RoundInput, RoundOutput, payload_size
from .metrics import ProtocolMetrics
from .program import Program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> network)
    from repro.obs import Tracer


@dataclass
class ExecutionResult:
    """Outcome of one protocol execution.

    Attributes
    ----------
    outputs:
        Honest parties' protocol outputs, by party id.
    metrics:
        Round/broadcast/message accounting for the whole execution.
    adversary:
        The adversary instance (its recorded views are what the
        anonymity and privacy experiments analyze), or ``None``.
    """

    outputs: dict[int, Any]
    metrics: ProtocolMetrics
    adversary: Adversary | None = None


class ProtocolViolation(Exception):
    """Raised when an execution exceeds sanity limits (likely a bug)."""


def run_protocol(
    programs: Mapping[int, Program],
    adversary: Adversary | None = None,
    max_rounds: int = 100_000,
    count_elements: bool = True,
    tracer: "Tracer | None" = None,
) -> ExecutionResult:
    """Execute a synchronous protocol to completion.

    Parameters
    ----------
    programs:
        One program per party id.  Programs of corrupted parties are
        ignored (the adversary speaks for them); by convention attack
        adversaries receive their own copies at construction time.
    adversary:
        Optional active rushing adversary.  ``None`` runs all parties
        honestly.
    max_rounds:
        Safety valve against non-terminating programs.
    count_elements:
        When ``False``, skip the per-payload bandwidth recursion
        (``field_elements_sent`` stays 0); rounds/broadcasts/message
        counts are unaffected.  Useful for large experiment sweeps.
    tracer:
        Optional :class:`repro.obs.Tracer`.  When attached, every
        completed round is reported with its broadcaster set and a
        per-sending-party message/element breakdown (attributed to the
        tracer's current span/phase).  ``None`` — the default — keeps
        the untraced hot path untouched: the only cost is this one
        ``is not None`` check per round.

    Returns
    -------
    ExecutionResult with honest outputs and cost metrics.
    """
    corrupted = adversary.corrupted if adversary is not None else frozenset()
    unknown = corrupted - programs.keys()
    if unknown:
        raise ValueError(f"adversary corrupts unknown parties: {sorted(unknown)}")

    honest: dict[int, Program] = {
        pid: prog for pid, prog in programs.items() if pid not in corrupted
    }
    outputs: dict[int, Any] = {}
    metrics = ProtocolMetrics()
    # Per-party logical clocks (maintained only when traced: causal
    # stamps are observability, not protocol state — the untraced hot
    # path never touches them).
    clocks: dict[int, LamportClock] = {}

    pending: dict[int, RoundOutput] = {}
    for pid, prog in list(honest.items()):
        try:
            pending[pid] = next(prog)
        except StopIteration as stop:
            outputs[pid] = stop.value
            del honest[pid]

    round_index = 0
    while honest:
        if round_index >= max_rounds:
            raise ProtocolViolation(
                f"protocol exceeded {max_rounds} rounds; still running: "
                f"{sorted(honest)}"
            )

        # -- rushing: adversary sees honest outputs first ----------------
        honest_broadcasts = {
            pid: out.broadcast
            for pid, out in pending.items()
            if out.broadcast is not None
        }
        to_corrupted: dict[int, dict[int, Any]] = {pid: {} for pid in corrupted}
        for sender, out in pending.items():
            for recipient, payload in out.private.items():
                if recipient in corrupted:
                    to_corrupted[recipient][sender] = payload
        corrupt_outputs: dict[int, RoundOutput] = {}
        if adversary is not None:
            view = RushedView(
                round_index=round_index,
                broadcasts=honest_broadcasts,
                to_corrupted=to_corrupted,
            )
            corrupt_outputs = adversary.act(view)
            extra = corrupt_outputs.keys() - corrupted
            if extra:
                raise ProtocolViolation(
                    f"adversary produced output for uncorrupted {sorted(extra)}"
                )

        all_outputs = dict(pending)
        all_outputs.update(corrupt_outputs)

        # -- delivery ------------------------------------------------------
        broadcasts = {
            pid: out.broadcast
            for pid, out in all_outputs.items()
            if out.broadcast is not None
        }
        inboxes: dict[int, dict[int, Any]] = {pid: {} for pid in programs}
        delivered = 0
        elements = 0
        size_cache: dict[int, int] = {}  # same object sent to many parties
        for sender, out in all_outputs.items():
            for recipient, payload in out.private.items():
                if recipient not in inboxes:
                    continue  # payload to a non-existent party: dropped
                inboxes[recipient][sender] = payload
                delivered += 1
                if count_elements:
                    size = size_cache.get(id(payload))
                    if size is None:
                        size = payload_size(payload)
                        size_cache[id(payload)] = size
                    elements += size
        if count_elements:
            elements += sum(
                payload_size(b) for b in broadcasts.values()
            ) * max(len(programs) - 1, 1)
        metrics.record_round(
            broadcasters=len(broadcasts),
            private_messages=delivered,
            elements=elements,
        )
        if tracer is not None:
            fanout = max(len(programs) - 1, 1)
            # Lamport send events: every party emitting anything this
            # round ticks once; all its messages carry that stamp.
            stamps: dict[int, int] = {}
            for sender, out in all_outputs.items():
                if out.private or out.broadcast is not None:
                    clock = clocks.get(sender)
                    if clock is None:
                        clock = clocks[sender] = LamportClock()
                    stamps[sender] = clock.tick()
            per_party: dict[int, dict[str, Any]] = {}
            for sender, out in all_outputs.items():
                sent = sum(1 for r in out.private if r in inboxes)
                volume = 0
                if count_elements:
                    volume = sum(
                        size_cache.get(id(p)) or payload_size(p)
                        for r, p in out.private.items()
                        if r in inboxes
                    )
                    if out.broadcast is not None:
                        volume += payload_size(out.broadcast) * fanout
                if sent or volume or out.broadcast is not None:
                    per_party[sender] = {
                        "messages": sent,
                        "elements": volume,
                        "broadcast": out.broadcast is not None,
                    }
            # One msg event per delivery (schema v3): broadcasts carry
            # receiver=None and their full wire volume (payload x
            # fan-out), so per-round msg volumes sum exactly to the
            # round event's elements.
            for sender in sorted(all_outputs):
                out = all_outputs[sender]
                stamp = stamps.get(sender, 0)
                if out.broadcast is not None:
                    size = (
                        payload_size(out.broadcast) * fanout
                        if count_elements
                        else 0
                    )
                    tracer.record_message(
                        round_index, sender, None, size, stamp
                    )
                for recipient in sorted(out.private):
                    if recipient not in inboxes:
                        continue
                    size = 0
                    if count_elements:
                        payload = out.private[recipient]
                        size = size_cache.get(id(payload), 0)
                    tracer.record_message(
                        round_index, sender, recipient, size, stamp
                    )
            tracer.record_round(
                round_index,
                broadcasters=sorted(broadcasts),
                messages=delivered,
                elements=elements,
                per_party={
                    str(pid): per_party[pid] for pid in sorted(per_party)
                },
            )
            # Lamport receive events: each party merges the stamps of
            # everything delivered to it (private + broadcast), so its
            # next send is causally after all of them.
            for pid in programs:
                seen = [
                    stamps[s] for s in inboxes[pid] if s in stamps
                ] + [stamps[b] for b in broadcasts if b in stamps]
                if seen:
                    clock = clocks.get(pid)
                    if clock is None:
                        clock = clocks[pid] = LamportClock()
                    clock.observe(seen)

        round_inputs = {
            pid: RoundInput(private=inboxes[pid], broadcast=broadcasts)
            for pid in programs
        }
        if adversary is not None:
            adversary.observe_inputs(
                {pid: round_inputs[pid] for pid in corrupted}
            )

        # -- resume honest parties ------------------------------------------
        pending = {}
        for pid in list(honest):
            prog = honest[pid]
            try:
                pending[pid] = prog.send(round_inputs[pid])
            except StopIteration as stop:
                outputs[pid] = stop.value
                del honest[pid]

        # -- adaptive corruption between rounds ------------------------------
        if adversary is not None:
            budget_used = len(adversary.corrupted)
            new = adversary.maybe_corrupt(
                round_index + 1, len(programs), budget_used
            )
            for pid in new:
                if pid in honest:
                    takeover = getattr(adversary, "receive_takeover", None)
                    if takeover is not None:
                        takeover(pid, honest[pid], pending.get(pid))
                    del honest[pid]
                    pending.pop(pid, None)
                adversary.corrupted = frozenset(adversary.corrupted | {pid})
            corrupted = adversary.corrupted

        round_index += 1

    if adversary is not None:
        adversary.finalize(outputs)
    return ExecutionResult(outputs=outputs, metrics=metrics, adversary=adversary)
