"""Synchronous network execution (transport dispatch).

Realizes the paper's communication model: ``n`` parties on a complete
network of secure (private, authenticated) point-to-point channels plus
a physical broadcast channel, computing in synchronous rounds against a
rushing active adversary.

Guarantees enforced by construction (by every transport):

- **Privacy/authenticity of channels** — a party only ever sees payloads
  addressed to it, attributed to their true sender; the adversary sees
  only broadcasts and traffic addressed to corrupted parties.
- **Broadcast consistency** — one payload per broadcaster per round is
  delivered identically to everyone (no equivocation on the physical
  channel).
- **Rushing** — honest round outputs are fixed before the adversary
  chooses the corrupted parties' outputs for the same round.

The actual execution engines live in :mod:`repro.network.runtime`;
:func:`run_protocol` here dispatches to a pluggable transport — the
deterministic lockstep loop by default, or the asyncio runtime via
``transport="async"`` (see :func:`~repro.network.runtime.resolve_transport`
for the resolution rules, including the ``REPRO_DEFAULT_TRANSPORT``
environment override).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from .adversary import Adversary
from .program import Program
from .runtime import (
    ExecutionResult,
    ProtocolViolation,
    Transport,
    resolve_transport,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> network)
    from repro.obs import Tracer

__all__ = ["ExecutionResult", "ProtocolViolation", "run_protocol"]


def run_protocol(
    programs: Mapping[int, Program],
    adversary: Adversary | None = None,
    max_rounds: int = 100_000,
    count_elements: bool = True,
    tracer: "Tracer | None" = None,
    transport: "Transport | str | None" = None,
) -> ExecutionResult:
    """Execute a synchronous protocol to completion.

    Parameters
    ----------
    programs:
        One program per party id.  Programs of corrupted parties are
        ignored (the adversary speaks for them); by convention attack
        adversaries receive their own copies at construction time.
    adversary:
        Optional active rushing adversary.  ``None`` runs all parties
        honestly.
    max_rounds:
        Safety valve against non-terminating programs.
    count_elements:
        When ``False``, skip the per-payload bandwidth recursion
        (``field_elements_sent`` stays 0); rounds/broadcasts/message
        counts are unaffected.  Useful for large experiment sweeps.
    tracer:
        Optional :class:`repro.obs.Tracer`.  When attached, every
        completed round is reported with its broadcaster set, a
        per-sending-party message/element breakdown, and Lamport-
        stamped per-message events (attributed to the tracer's current
        span/phase).  ``None`` — the default — keeps the untraced hot
        path untouched.
    transport:
        Execution engine: a :class:`~repro.network.runtime.Transport`
        instance, a registered name (``"lockstep"``, ``"async"``), or
        ``None`` for the default (``REPRO_DEFAULT_TRANSPORT`` env var,
        else the deterministic lockstep loop).

    Returns
    -------
    ExecutionResult with honest outputs and cost metrics.
    """
    return resolve_transport(transport).run(
        programs,
        adversary=adversary,
        max_rounds=max_rounds,
        count_elements=count_elements,
        tracer=tracer,
    )
