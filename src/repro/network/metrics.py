"""Cost accounting for protocol executions.

The paper's headline claims are *round* and *broadcast-round* counts, so
the simulator tracks them first-class, along with message and bandwidth
totals for the communication-complexity discussion in Section 1.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ProtocolMetrics:
    """Aggregate costs of one protocol execution.

    Attributes
    ----------
    rounds:
        Total synchronous rounds executed.
    broadcast_rounds:
        Rounds in which at least one party used the physical broadcast
        channel.  This is the scarce resource the paper minimizes
        (two broadcast rounds with the GGOR13 VSS).
    broadcasts_sent:
        Individual broadcast invocations (party-rounds using broadcast).
    private_messages:
        Non-empty point-to-point payloads delivered.
    field_elements_sent:
        Approximate bandwidth in field elements (private + broadcast).
    makespan_ms:
        End-to-end virtual duration of the execution under the
        transport's latency/compute models (``0.0`` for lockstep and
        other zero-model runs — virtual time then degenerates to the
        round schedule).
    """

    rounds: int = 0
    broadcast_rounds: int = 0
    broadcasts_sent: int = 0
    private_messages: int = 0
    field_elements_sent: int = 0
    makespan_ms: float = 0.0
    extra: dict = field(default_factory=dict)

    def record_round(
        self,
        broadcasters: int,
        private_messages: int,
        elements: int,
    ) -> None:
        """Account one completed round.

        All three counts are occurrences of real events, so negative
        values can only come from a bookkeeping bug upstream — reject
        them loudly instead of silently corrupting the totals.
        """
        if broadcasters < 0 or private_messages < 0 or elements < 0:
            raise ValueError(
                "round counts must be non-negative, got "
                f"broadcasters={broadcasters}, "
                f"private_messages={private_messages}, elements={elements}"
            )
        self.rounds += 1
        if broadcasters:
            self.broadcast_rounds += 1
            self.broadcasts_sent += broadcasters
        self.private_messages += private_messages
        self.field_elements_sent += elements

    def merge(self, other: "ProtocolMetrics") -> "ProtocolMetrics":
        """Sequential composition: costs add up.

        ``extra`` entries are carried over from both operands; numeric
        values shared by both add up (they are costs too), any other
        collision keeps ``other``'s value (later execution wins).
        """
        extra = dict(self.extra)
        for key, value in other.extra.items():
            mine = extra.get(key)
            if (
                isinstance(mine, (int, float))
                and isinstance(value, (int, float))
                and not isinstance(mine, bool)
                and not isinstance(value, bool)
            ):
                extra[key] = mine + value
            else:
                extra[key] = value
        return ProtocolMetrics(
            rounds=self.rounds + other.rounds,
            broadcast_rounds=self.broadcast_rounds + other.broadcast_rounds,
            broadcasts_sent=self.broadcasts_sent + other.broadcasts_sent,
            private_messages=self.private_messages + other.private_messages,
            field_elements_sent=(
                self.field_elements_sent + other.field_elements_sent
            ),
            # Sequential composition: the second execution starts after
            # the first finishes, so virtual durations add.
            makespan_ms=self.makespan_ms + other.makespan_ms,
            extra=extra,
        )

    def summary(self) -> str:
        """One-line human-readable cost summary."""
        line = (
            f"rounds={self.rounds} broadcast_rounds={self.broadcast_rounds} "
            f"broadcasts={self.broadcasts_sent} "
            f"messages={self.private_messages} "
            f"elements={self.field_elements_sent}"
        )
        if self.makespan_ms:
            line += f" makespan_ms={self.makespan_ms:.3f}"
        return line
