"""Protocol programs as generators, and their parallel composition.

A *program* is a Python generator representing one party's code: it
``yield``s a :class:`~repro.network.messages.RoundOutput` for each round
and is resumed with the corresponding
:class:`~repro.network.messages.RoundInput`; its ``return`` value is the
party's protocol output.

Synchronous protocols in this codebase are *fixed-round*: every party's
program yields the same number of times (honest parties always know the
round schedule).  The :func:`parallel` combinator multiplexes several
sub-programs into shared rounds — this is how the paper runs
"O(l*kappa) parallel invocations of VSS-Share" at the round cost of a
single invocation.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Hashable, Mapping

from .messages import RoundInput, RoundOutput

#: A party's protocol code: yields RoundOutput, receives RoundInput,
#: returns its output.
Program = Generator[RoundOutput, RoundInput, Any]


def silent_rounds(count: int) -> Program:
    """A program that idles for ``count`` rounds (stays in lockstep)."""
    for _ in range(count):
        yield RoundOutput.silent()
    return None


def parallel(programs: Mapping[Hashable, Program]) -> Program:
    """Run sub-programs concurrently in the same rounds.

    Each round, every still-running sub-program's outgoing messages are
    wrapped in a dict keyed by its label, and incoming payloads are
    demultiplexed by the same label.  Sub-programs may finish in
    different rounds; finished ones simply stop sending.  The composed
    program finishes when all sub-programs have finished and returns a
    dict mapping label to sub-program result.

    Composition nests: a sub-program may itself be a ``parallel(...)``.
    """
    active: dict[Hashable, Program] = {}
    results: dict[Hashable, Any] = {}
    pending_outputs: dict[Hashable, RoundOutput] = {}

    for label, prog in programs.items():
        try:
            pending_outputs[label] = next(prog)
            active[label] = prog
        except StopIteration as stop:
            results[label] = stop.value

    while active:
        combined_private: dict[int, dict[Hashable, Any]] = {}
        combined_broadcast: dict[Hashable, Any] = {}
        for label, out in pending_outputs.items():
            for recipient, payload in out.private.items():
                combined_private.setdefault(recipient, {})[label] = payload
            if out.broadcast is not None:
                combined_broadcast[label] = out.broadcast

        inbox: RoundInput = yield RoundOutput(
            private=combined_private,
            broadcast=combined_broadcast if combined_broadcast else None,
        )

        pending_outputs = {}
        for label in list(active):
            prog = active[label]
            sub_private = {
                sender: payloads[label]
                for sender, payloads in inbox.private.items()
                if isinstance(payloads, Mapping) and label in payloads
            }
            sub_broadcast = {
                sender: payloads[label]
                for sender, payloads in inbox.broadcast.items()
                if isinstance(payloads, Mapping) and label in payloads
            }
            try:
                pending_outputs[label] = prog.send(
                    RoundInput(private=sub_private, broadcast=sub_broadcast)
                )
            except StopIteration as stop:
                results[label] = stop.value
                del active[label]

    return results


def map_result(program: Program, fn: Callable[[Any], Any]) -> Program:
    """A program identical to ``program`` but with its result mapped."""
    result = yield from program
    return fn(result)


def sequence(*programs: Program) -> Program:
    """Run programs one after the other; returns the list of results."""
    results = []
    for prog in programs:
        results.append((yield from prog))
    return results
