"""Asyncio party runtime: each party is an independent task.

Parties exchange :class:`RoundOutput`/:class:`RoundInput` over per-link
``asyncio.Queue`` pairs; a coordinator — the *round synchronizer* —
drives the paper's synchronous schedule on top of asynchronous
delivery, in the HoneyBadgerMPC per-party-task shape:

1. collect every live party's round output (rushing: honest outputs
   are fixed before the adversary acts),
2. let the adversary act on the rushed view,
3. apply fault models, compute the round's delivery plan with the
   shared engine (identical accounting/tracing to lockstep),
4. enqueue each private message onto its link with a sampled latency
   (which fixes arrival *order*; in wall-clock mode it is also slept),
5. release each party with a round header ``(expected, broadcasts)``;
   the party assembles its :class:`RoundInput` as messages arrive and
   advances its generator concurrently with every other party.

With the default zero-latency model and no faults this reproduces the
lockstep transport bit-for-bit: per-recipient arrival order equals the
engine's canonical delivery order, so honest outputs, metrics, and
traces are identical.  Latency jitter reorders deliveries within a
round; fault models add delay, partitions, and crashes on top.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from ..adversary import Adversary
from ..messages import LamportClock, RoundInput, RoundOutput
from ..metrics import ProtocolMetrics
from ..program import Program
from .base import ExecutionResult, ProtocolViolation, Transport, register_transport
from .engine import (
    VirtualClock,
    advance_virtual_time,
    compute_delivery,
    record_round_observability,
    rushed_view,
    sample_delays,
)
from .models import (
    ComputeModel,
    Crash,
    LatencyModel,
    LinkFault,
    ReorderWithinRound,
    ZeroCost,
    ZeroLatency,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> network)
    from repro.obs import Tracer

#: Round header telling a party task to return, leaving its generator
#: suspended (used for crashes and adaptive-corruption takeover).
_HALT: Any = object()


@dataclass
class _Handle:
    """Coordinator-side endpoints of one party task."""

    header: asyncio.Queue
    inbox: asyncio.Queue
    task: asyncio.Task


async def _party_task(
    pid: int,
    prog: Program,
    header: asyncio.Queue,
    inbox: asyncio.Queue,
    coordinator: asyncio.Queue,
) -> None:
    """One party's life: pump the generator, then loop rounds.

    Per round: await the synchronizer's header, collect exactly the
    announced number of private messages from the link queue, resume
    the generator with the assembled :class:`RoundInput`, and report
    the next output (or termination / failure) to the coordinator.
    """
    try:
        out = next(prog)
    except StopIteration as stop:
        coordinator.put_nowait(("done", pid, stop.value))
        return
    except BaseException as exc:  # noqa: B036 - reported, then re-raised
        coordinator.put_nowait(("error", pid, exc))
        return
    coordinator.put_nowait(("out", pid, out))
    while True:
        msg = await header.get()
        if msg is _HALT:
            return
        expected, broadcasts = msg
        private: dict[int, Any] = {}
        for _ in range(expected):
            sender, payload = await inbox.get()
            private[sender] = payload
        try:
            out = prog.send(RoundInput(private=private, broadcast=broadcasts))
        except StopIteration as stop:
            coordinator.put_nowait(("done", pid, stop.value))
            return
        except BaseException as exc:  # noqa: B036 - reported, then re-raised
            coordinator.put_nowait(("error", pid, exc))
            return
        coordinator.put_nowait(("out", pid, out))


class InMemoryAsyncTransport(Transport):
    """Per-party asyncio tasks over in-memory per-link queues.

    Parameters
    ----------
    latency:
        :class:`~repro.network.runtime.models.LatencyModel` sampled per
        private message.  The default :class:`ZeroLatency` keeps the
        run bit-for-bit equal to the lockstep transport.
    faults:
        :class:`LinkFault` instances (``Delay``, ``Partition``,
        ``Crash``, ``ReorderWithinRound``) applied every round.
    compute:
        :class:`~repro.network.runtime.models.ComputeModel` charging
        each party local work per round before its messages hit the
        wire.  The default :class:`ZeroCost` matches lockstep's
        reference timing.
    seed:
        Seed for the transport's private rng (latency samples, fault
        shuffles) — a seeded async run is exactly replayable.
    realtime:
        When ``True``, sampled latencies are actually slept
        (``asyncio.sleep``), making wall-clock measurements meaningful;
        arrival order then follows the event loop's timers.  When
        ``False`` (the default), latencies are *virtual*: they decide
        per-round delivery order deterministically and the run never
        sleeps.
    """

    name = "async"

    def __init__(
        self,
        latency: LatencyModel | None = None,
        faults: Iterable[LinkFault] = (),
        seed: int = 0,
        realtime: bool = False,
        compute: ComputeModel | None = None,
    ):
        self.latency = latency if latency is not None else ZeroLatency()
        self.faults = tuple(faults)
        self.seed = seed
        self.realtime = realtime
        self.compute = compute if compute is not None else ZeroCost()

    def run(
        self,
        programs: Mapping[int, Program],
        adversary: Adversary | None = None,
        max_rounds: int = 100_000,
        count_elements: bool = True,
        tracer: "Tracer | None" = None,
    ) -> ExecutionResult:
        return asyncio.run(
            self._run(programs, adversary, max_rounds, count_elements, tracer)
        )

    async def _run(
        self,
        programs: Mapping[int, Program],
        adversary: Adversary | None,
        max_rounds: int,
        count_elements: bool,
        tracer: "Tracer | None",
    ) -> ExecutionResult:
        corrupted = adversary.corrupted if adversary is not None else frozenset()
        unknown = corrupted - programs.keys()
        if unknown:
            raise ValueError(
                f"adversary corrupts unknown parties: {sorted(unknown)}"
            )

        rng = random.Random(self.seed)
        crash_faults = [f for f in self.faults if isinstance(f, Crash)]
        reorder_faults = [
            f for f in self.faults if isinstance(f, ReorderWithinRound)
        ]
        link_faults = [
            f for f in self.faults if not isinstance(f, ReorderWithinRound)
        ]

        party_order = list(programs)
        coordinator: asyncio.Queue = asyncio.Queue()
        handles: dict[int, _Handle] = {}
        for pid in party_order:
            if pid in corrupted:
                continue
            header: asyncio.Queue = asyncio.Queue()
            inbox: asyncio.Queue = asyncio.Queue()
            task = asyncio.create_task(
                _party_task(pid, programs[pid], header, inbox, coordinator)
            )
            handles[pid] = _Handle(header=header, inbox=inbox, task=task)

        outputs: dict[int, Any] = {}
        metrics = ProtocolMetrics()
        clocks: dict[int, LamportClock] = {}
        vclock = VirtualClock()
        wall_start = time.perf_counter()
        if tracer is not None:
            tracer.record_timing_model(
                latency=self.latency.describe(),
                compute=self.compute.describe(),
                realtime=self.realtime,
            )
        live: set[int] = set(handles)

        async def collect(waiting: set[int]) -> dict[int, RoundOutput]:
            """Gather one report per waited-on party, in any order."""
            received: dict[int, RoundOutput] = {}
            while waiting:
                kind, pid, value = await coordinator.get()
                waiting.discard(pid)
                if kind == "out":
                    received[pid] = value
                elif kind == "done":
                    outputs[pid] = value
                    live.discard(pid)
                else:  # "error": fail the whole execution, like lockstep
                    raise value
            return received

        try:
            received = await collect(set(live))
            round_index = 0
            while live:
                if round_index >= max_rounds:
                    raise ProtocolViolation(
                        f"protocol exceeded {max_rounds} rounds; still "
                        f"running: {sorted(live)}"
                    )

                # -- crash faults: halt parties before they send ----------
                for fault in crash_faults:
                    for pid in sorted(live):
                        if fault.crashed(round_index, pid):
                            handles[pid].header.put_nowait(_HALT)
                            live.discard(pid)
                            received.pop(pid, None)
                if not live:
                    break

                # Canonical (lockstep) sender order, independent of the
                # order reports drained from the coordinator queue.
                pending = {
                    pid: received[pid]
                    for pid in party_order
                    if pid in received
                }

                # -- rushing: adversary sees honest outputs first ---------
                corrupt_outputs: dict[int, RoundOutput] = {}
                if adversary is not None:
                    view = rushed_view(round_index, pending, corrupted)
                    corrupt_outputs = adversary.act(view)
                    extra = corrupt_outputs.keys() - corrupted
                    if extra:
                        raise ProtocolViolation(
                            f"adversary produced output for uncorrupted "
                            f"{sorted(extra)}"
                        )

                all_outputs = dict(pending)
                all_outputs.update(corrupt_outputs)

                # -- link faults, then the shared delivery/accounting -----
                effective = self._apply_link_faults(
                    all_outputs, round_index, link_faults
                )
                delivery = compute_delivery(
                    effective, programs, count_elements
                )
                # Sample every delivered message's arrival offset up
                # front (sorted pair order — seed-deterministic) and
                # persist it on the plan: ordering below, virtual time,
                # and post-hoc timing reports all read the same value.
                delivery.delays = sample_delays(
                    rng,
                    self.latency,
                    link_faults,
                    round_index,
                    effective,
                    delivery,
                    count_elements,
                )
                timing = advance_virtual_time(
                    vclock,
                    round_index,
                    effective,
                    delivery,
                    self.compute,
                    count_elements,
                )
                metrics.record_round(
                    broadcasters=len(delivery.broadcasts),
                    private_messages=delivery.delivered,
                    elements=delivery.elements,
                )
                if tracer is not None:
                    record_round_observability(
                        tracer,
                        clocks,
                        round_index,
                        effective,
                        delivery,
                        count_elements,
                        timing=timing,
                        t_wall_ms=(
                            (time.perf_counter() - wall_start) * 1000.0
                            if self.realtime
                            else None
                        ),
                    )

                # -- enqueue deliveries in latency order ------------------
                plan: list[tuple[float, int, int, int, Any]] = []
                seq = 0
                for sender, out in effective.items():
                    for recipient, payload in out.private.items():
                        if recipient not in live:
                            continue
                        delay = delivery.delays[(sender, recipient)]
                        plan.append((delay, seq, sender, recipient, payload))
                        seq += 1
                if any(f.active(round_index) for f in reorder_faults):
                    rng.shuffle(plan)
                else:
                    plan.sort(key=lambda entry: (entry[0], entry[1]))

                sleepers: list[asyncio.Task] = []
                for delay, _seq, sender, recipient, payload in plan:
                    link = handles[recipient].inbox
                    if self.realtime and delay > 0.0:
                        sleepers.append(
                            asyncio.create_task(
                                _deliver_later(
                                    link, delay / 1000.0, sender, payload
                                )
                            )
                        )
                    else:
                        link.put_nowait((sender, payload))

                # -- release the round: header per live party -------------
                broadcasts = delivery.broadcasts
                for pid in live:
                    expected = len(delivery.inboxes[pid])
                    handles[pid].header.put_nowait((expected, broadcasts))
                if adversary is not None:
                    adversary.observe_inputs(
                        {
                            pid: RoundInput(
                                private=delivery.inboxes[pid],
                                broadcast=broadcasts,
                            )
                            for pid in corrupted
                        }
                    )

                if sleepers:
                    await asyncio.gather(*sleepers)
                received = await collect(set(live))

                # -- adaptive corruption between rounds -------------------
                if adversary is not None:
                    budget_used = len(adversary.corrupted)
                    new = adversary.maybe_corrupt(
                        round_index + 1, len(programs), budget_used
                    )
                    for pid in new:
                        if pid in live:
                            takeover = getattr(
                                adversary, "receive_takeover", None
                            )
                            if takeover is not None:
                                takeover(
                                    pid, programs[pid], received.get(pid)
                                )
                            handles[pid].header.put_nowait(_HALT)
                            live.discard(pid)
                            received.pop(pid, None)
                        adversary.corrupted = frozenset(
                            adversary.corrupted | {pid}
                        )
                    corrupted = adversary.corrupted

                round_index += 1
        finally:
            for handle in handles.values():
                handle.task.cancel()
            await asyncio.gather(
                *(h.task for h in handles.values()), return_exceptions=True
            )

        if adversary is not None:
            adversary.finalize(outputs)
        metrics.makespan_ms = vclock.makespan_ms
        return ExecutionResult(
            outputs=outputs, metrics=metrics, adversary=adversary
        )

    @staticmethod
    def _apply_link_faults(
        all_outputs: Mapping[int, RoundOutput],
        round_index: int,
        link_faults: Sequence[LinkFault],
    ) -> dict[int, RoundOutput]:
        """Drop faulted private messages; dropped traffic is not counted.

        Crashed senders are removed wholesale (``Crash.drops`` matches
        every link either way); broadcasts survive partitions — the
        physical broadcast channel is a separate medium.
        """
        if not link_faults:
            return dict(all_outputs)
        effective: dict[int, RoundOutput] = {}
        for sender, out in all_outputs.items():
            if any(
                isinstance(f, Crash) and f.crashed(round_index, sender)
                for f in link_faults
            ):
                continue
            kept = {
                recipient: payload
                for recipient, payload in out.private.items()
                if not any(
                    f.drops(round_index, sender, recipient)
                    for f in link_faults
                )
            }
            if len(kept) == len(out.private):
                effective[sender] = out
            else:
                effective[sender] = RoundOutput(
                    private=kept, broadcast=out.broadcast
                )
        return effective


async def _deliver_later(
    link: asyncio.Queue, delay_s: float, sender: int, payload: Any
) -> None:
    await asyncio.sleep(delay_s)
    link.put_nowait((sender, payload))


register_transport("async", InMemoryAsyncTransport)
