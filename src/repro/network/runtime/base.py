"""Transport abstraction for the party runtime.

A :class:`Transport` executes a synchronous-rounds protocol — one
generator :class:`~repro.network.program.Program` per party — and
returns honest outputs plus cost accounting.  The paper's model
(synchronous rounds, secure pairwise channels, physical broadcast,
rushing adversary) is a *contract on observable behavior*; how messages
actually move between parties is the transport's business:

- :class:`~repro.network.runtime.lockstep.LockstepTransport` runs every
  party in a single deterministic loop (the original simulator),
  bit-for-bit reproducible for seeded campaigns and trace diffing.
- :class:`~repro.network.runtime.asyncio_runtime.InMemoryAsyncTransport`
  runs each party as an independent asyncio task exchanging messages
  over per-link queues, with configurable latency/jitter/bandwidth
  models and fault injection (delay, reorder, partition, crash).

Both transports preserve the adversary API (rushing view, adaptive
corruption) and the trace schema (per-round events, per-message Lamport
stamps): causal bookkeeping lives here in the transport layer, not in
protocol code.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from ..adversary import Adversary
from ..metrics import ProtocolMetrics
from ..program import Program

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> network)
    from repro.obs import Tracer


@dataclass
class ExecutionResult:
    """Outcome of one protocol execution.

    Attributes
    ----------
    outputs:
        Honest parties' protocol outputs, by party id.
    metrics:
        Round/broadcast/message accounting for the whole execution.
    adversary:
        The adversary instance (its recorded views are what the
        anonymity and privacy experiments analyze), or ``None``.
    """

    outputs: dict[int, Any]
    metrics: ProtocolMetrics
    adversary: Adversary | None = None


class ProtocolViolation(Exception):
    """Raised when an execution exceeds sanity limits (likely a bug)."""


class Transport(ABC):
    """Executes a protocol; see the module docstring for the contract.

    Subclasses set :attr:`name` (the registry key, also used to
    annotate traces and campaign configs) and implement :meth:`run`
    with :func:`~repro.network.simulator.run_protocol` semantics.
    """

    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        programs: Mapping[int, Program],
        adversary: Adversary | None = None,
        max_rounds: int = 100_000,
        count_elements: bool = True,
        tracer: "Tracer | None" = None,
    ) -> ExecutionResult:
        """Execute the protocol to completion and return the result."""


#: Registry of named transport factories.  Factories (not instances):
#: every resolution gets a fresh transport, so per-run state (rng,
#: queues) never leaks between executions.
TRANSPORTS: dict[str, Callable[[], Transport]] = {}

#: Environment override consumed when ``resolve_transport(None)`` is
#: asked for the default — lets CI run the whole tier-1 suite on the
#: async transport without touching call sites.
DEFAULT_TRANSPORT_ENV = "REPRO_DEFAULT_TRANSPORT"


def register_transport(name: str, factory: Callable[[], Transport]) -> None:
    """Register a transport factory under ``name`` (overwrites)."""
    TRANSPORTS[name] = factory


def resolve_transport(spec: "Transport | str | None") -> Transport:
    """Resolve a ``transport=`` argument to a live transport.

    ``None`` selects the default: the transport named by the
    ``REPRO_DEFAULT_TRANSPORT`` environment variable if set, else
    ``"lockstep"``.  A string is looked up in :data:`TRANSPORTS`; a
    :class:`Transport` instance is returned as-is.
    """
    if isinstance(spec, Transport):
        return spec
    if spec is None:
        spec = os.environ.get(DEFAULT_TRANSPORT_ENV) or "lockstep"
    factory = TRANSPORTS.get(spec)
    if factory is None:
        raise ValueError(
            f"unknown transport {spec!r}; available: {sorted(TRANSPORTS)}"
        )
    return factory()
