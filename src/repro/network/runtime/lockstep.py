"""Deterministic single-process lockstep transport.

The original synchronous simulator loop: every party's generator is
advanced in one deterministic pass per round.  This transport is the
reference semantics — seeded campaigns, trace diffing, and the obs
schedule/comm verification all assume its bit-for-bit reproducibility —
and the asyncio runtime is validated against it by the transport
equivalence suite.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from ..adversary import Adversary
from ..messages import LamportClock, RoundInput, RoundOutput
from ..metrics import ProtocolMetrics
from ..program import Program
from .base import ExecutionResult, ProtocolViolation, Transport, register_transport
from .engine import (
    VirtualClock,
    advance_virtual_time,
    compute_delivery,
    record_round_observability,
    rushed_view,
)
from .models import ZeroCost, ZeroLatency

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> network)
    from repro.obs import Tracer


class LockstepTransport(Transport):
    """Runs all parties in one deterministic in-process loop."""

    name = "lockstep"

    def run(
        self,
        programs: Mapping[int, Program],
        adversary: Adversary | None = None,
        max_rounds: int = 100_000,
        count_elements: bool = True,
        tracer: "Tracer | None" = None,
    ) -> ExecutionResult:
        corrupted = adversary.corrupted if adversary is not None else frozenset()
        unknown = corrupted - programs.keys()
        if unknown:
            raise ValueError(
                f"adversary corrupts unknown parties: {sorted(unknown)}"
            )

        honest: dict[int, Program] = {
            pid: prog for pid, prog in programs.items() if pid not in corrupted
        }
        outputs: dict[int, Any] = {}
        metrics = ProtocolMetrics()
        # Per-party logical clocks (maintained only when traced: causal
        # stamps are observability, not protocol state — the untraced
        # hot path never touches them).
        clocks: dict[int, LamportClock] = {}
        # Lockstep is the reference timing semantics: zero latency and
        # zero compute, so every virtual stamp is 0.0 and the schedule
        # itself is the only notion of time.  Running the same
        # virtual-time machinery as the async transport keeps the two
        # canonically identical under equivalent models.
        vclock = VirtualClock()
        compute = ZeroCost()
        if tracer is not None:
            tracer.record_timing_model(
                latency=ZeroLatency().describe(),
                compute=compute.describe(),
                realtime=False,
            )

        pending: dict[int, RoundOutput] = {}
        for pid, prog in list(honest.items()):
            try:
                pending[pid] = next(prog)
            except StopIteration as stop:
                outputs[pid] = stop.value
                del honest[pid]

        round_index = 0
        while honest:
            if round_index >= max_rounds:
                raise ProtocolViolation(
                    f"protocol exceeded {max_rounds} rounds; still running: "
                    f"{sorted(honest)}"
                )

            # -- rushing: adversary sees honest outputs first -------------
            corrupt_outputs: dict[int, RoundOutput] = {}
            if adversary is not None:
                view = rushed_view(round_index, pending, corrupted)
                corrupt_outputs = adversary.act(view)
                extra = corrupt_outputs.keys() - corrupted
                if extra:
                    raise ProtocolViolation(
                        f"adversary produced output for uncorrupted "
                        f"{sorted(extra)}"
                    )

            all_outputs = dict(pending)
            all_outputs.update(corrupt_outputs)

            # -- delivery -------------------------------------------------
            delivery = compute_delivery(all_outputs, programs, count_elements)
            metrics.record_round(
                broadcasters=len(delivery.broadcasts),
                private_messages=delivery.delivered,
                elements=delivery.elements,
            )
            if tracer is not None:
                timing = advance_virtual_time(
                    vclock,
                    round_index,
                    all_outputs,
                    delivery,
                    compute,
                    count_elements,
                )
                record_round_observability(
                    tracer,
                    clocks,
                    round_index,
                    all_outputs,
                    delivery,
                    count_elements,
                    timing=timing,
                )

            broadcasts = delivery.broadcasts
            round_inputs = {
                pid: RoundInput(
                    private=delivery.inboxes[pid], broadcast=broadcasts
                )
                for pid in programs
            }
            if adversary is not None:
                adversary.observe_inputs(
                    {pid: round_inputs[pid] for pid in corrupted}
                )

            # -- resume honest parties ------------------------------------
            pending = {}
            for pid in list(honest):
                prog = honest[pid]
                try:
                    pending[pid] = prog.send(round_inputs[pid])
                except StopIteration as stop:
                    outputs[pid] = stop.value
                    del honest[pid]

            # -- adaptive corruption between rounds -----------------------
            if adversary is not None:
                budget_used = len(adversary.corrupted)
                new = adversary.maybe_corrupt(
                    round_index + 1, len(programs), budget_used
                )
                for pid in new:
                    if pid in honest:
                        takeover = getattr(adversary, "receive_takeover", None)
                        if takeover is not None:
                            takeover(pid, honest[pid], pending.get(pid))
                        del honest[pid]
                        pending.pop(pid, None)
                    adversary.corrupted = frozenset(
                        adversary.corrupted | {pid}
                    )
                corrupted = adversary.corrupted

            round_index += 1

        if adversary is not None:
            adversary.finalize(outputs)
        return ExecutionResult(
            outputs=outputs, metrics=metrics, adversary=adversary
        )


register_transport("lockstep", LockstepTransport)
