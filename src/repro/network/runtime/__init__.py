"""Pluggable party runtime: transports executing the round model.

Importing this package registers the built-in transports
(``"lockstep"`` and ``"async"``); :func:`resolve_transport` turns a
``transport=`` argument (instance, name, or ``None`` for the default)
into a live :class:`Transport`.
"""

from .asyncio_runtime import InMemoryAsyncTransport
from .base import (
    DEFAULT_TRANSPORT_ENV,
    TRANSPORTS,
    ExecutionResult,
    ProtocolViolation,
    Transport,
    register_transport,
    resolve_transport,
)
from .engine import cached_payload_size
from .lockstep import LockstepTransport
from .models import (
    Crash,
    Delay,
    FixedLatency,
    LatencyModel,
    LinkFault,
    Partition,
    ReorderWithinRound,
    UniformLatency,
    ZeroLatency,
)

__all__ = [
    "Transport",
    "TRANSPORTS",
    "DEFAULT_TRANSPORT_ENV",
    "register_transport",
    "resolve_transport",
    "ExecutionResult",
    "ProtocolViolation",
    "LockstepTransport",
    "InMemoryAsyncTransport",
    "cached_payload_size",
    "LatencyModel",
    "ZeroLatency",
    "FixedLatency",
    "UniformLatency",
    "LinkFault",
    "Delay",
    "Partition",
    "Crash",
    "ReorderWithinRound",
]
