"""Latency, bandwidth, and fault models for asynchronous transports.

The async runtime separates *what* is delivered (the engine's channel
guarantees, identical across transports) from *when* and *whether* each
message arrives.  Latency models answer "when": each private message
gets a virtual delay sampled from the transport's seeded rng, which
determines arrival order within a round (and real sleep time in
wall-clock mode).  Fault models answer "whether": link faults drop or
further delay specific messages, and crash faults halt whole parties.

All models are frozen dataclasses sampled through an explicit
``random.Random`` — no global entropy, so a seeded async run is exactly
replayable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class LatencyModel:
    """Per-message virtual latency, in milliseconds."""

    def sample(
        self,
        rng: random.Random,
        round_index: int,
        sender: int,
        recipient: int,
        size: int,
    ) -> float:
        raise NotImplementedError

    def describe(self) -> dict:
        """Public parameters, embedded in the trace's timing-model note.

        The timing observatory (:mod:`repro.obs.timing`) reads this back
        to compute the analytic predicted makespan, so two transports
        with equivalent timing semantics must describe identically.
        """
        raise NotImplementedError

    def expected_round_ms(self, messages: int, mean_size: float = 0.0) -> float:
        """Expected duration of a round that synchronizes on ``messages``
        concurrent deliveries of ``mean_size`` wire atoms each.

        A synchronous round ends when its *slowest* message arrives, so
        the analytic prediction is ``E[max of k samples]``, not the
        per-message mean.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class ZeroLatency(LatencyModel):
    """Instant delivery: arrival order equals send order (lockstep)."""

    def sample(
        self,
        rng: random.Random,
        round_index: int,
        sender: int,
        recipient: int,
        size: int,
    ) -> float:
        return 0.0

    def describe(self) -> dict:
        return {"model": "zero"}

    def expected_round_ms(self, messages: int, mean_size: float = 0.0) -> float:
        return 0.0


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Constant per-message delay (a uniform-RTT datacenter link)."""

    base_ms: float = 1.0

    def sample(
        self,
        rng: random.Random,
        round_index: int,
        sender: int,
        recipient: int,
        size: int,
    ) -> float:
        return self.base_ms

    def describe(self) -> dict:
        return {"model": "fixed", "base_ms": self.base_ms}

    def expected_round_ms(self, messages: int, mean_size: float = 0.0) -> float:
        return self.base_ms if messages > 0 else 0.0


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Base delay plus uniform jitter — reorders messages within a round.

    ``elements_per_ms`` adds a serialization (bandwidth) term: a
    payload of ``size`` wire atoms takes ``size / elements_per_ms``
    extra milliseconds, so bulk rounds spread out more than chatty
    ones.  ``0`` (the default) disables the bandwidth term.
    """

    base_ms: float = 1.0
    jitter_ms: float = 0.0
    elements_per_ms: float = 0.0

    def sample(
        self,
        rng: random.Random,
        round_index: int,
        sender: int,
        recipient: int,
        size: int,
    ) -> float:
        delay = self.base_ms
        if self.jitter_ms > 0.0:
            delay += rng.uniform(0.0, self.jitter_ms)
        if self.elements_per_ms > 0.0:
            delay += size / self.elements_per_ms
        return delay

    def describe(self) -> dict:
        return {
            "model": "uniform",
            "base_ms": self.base_ms,
            "jitter_ms": self.jitter_ms,
            "elements_per_ms": self.elements_per_ms,
        }

    def expected_round_ms(self, messages: int, mean_size: float = 0.0) -> float:
        if messages <= 0:
            return 0.0
        # Round end = max over k iid U(base, base+jitter) samples:
        # E[max] = base + jitter * k / (k + 1).
        expected = self.base_ms
        if self.jitter_ms > 0.0:
            expected += self.jitter_ms * messages / (messages + 1)
        if self.elements_per_ms > 0.0:
            expected += mean_size / self.elements_per_ms
        return expected


class ComputeModel:
    """Per-party local computation cost, in virtual milliseconds.

    Charged once per party per round *before* its messages are put on
    the wire: a party becomes ready at ``max(inbound arrivals)`` and
    sends at ``ready + cost_ms(...)``.  The reference model is zero so
    lockstep virtual time degenerates to the round schedule itself.
    """

    def cost_ms(
        self,
        round_index: int,
        party: int,
        messages: int,
        elements: int,
    ) -> float:
        raise NotImplementedError

    def describe(self) -> dict:
        raise NotImplementedError


@dataclass(frozen=True)
class ZeroCost(ComputeModel):
    """Free local computation (the lockstep/reference model)."""

    def cost_ms(
        self,
        round_index: int,
        party: int,
        messages: int,
        elements: int,
    ) -> float:
        return 0.0

    def describe(self) -> dict:
        return {"model": "zero"}


@dataclass(frozen=True)
class LinearCost(ComputeModel):
    """Fixed per-round cost plus a per-wire-element term.

    ``per_round_ms`` models constant protocol-step work (hashing the
    transcript, bookkeeping); ``per_element_ms`` scales with the
    party's outbound wire volume, approximating share-evaluation cost.
    """

    per_round_ms: float = 0.0
    per_element_ms: float = 0.0

    def cost_ms(
        self,
        round_index: int,
        party: int,
        messages: int,
        elements: int,
    ) -> float:
        return self.per_round_ms + self.per_element_ms * elements

    def describe(self) -> dict:
        return {
            "model": "linear",
            "per_round_ms": self.per_round_ms,
            "per_element_ms": self.per_element_ms,
        }


class LinkFault:
    """Per-message fault hook: drop and/or delay individual deliveries."""

    def drops(self, round_index: int, sender: int, recipient: int) -> bool:
        return False

    def extra_delay_ms(
        self, round_index: int, sender: int, recipient: int
    ) -> float:
        return 0.0


@dataclass(frozen=True)
class Delay(LinkFault):
    """Add ``delay_ms`` to matching links for ``rounds`` (None = always).

    ``senders``/``recipients`` of ``None`` match every party.
    """

    delay_ms: float
    rounds: tuple[int, int] | None = None
    senders: frozenset[int] | None = None
    recipients: frozenset[int] | None = None

    def _matches(self, round_index: int, sender: int, recipient: int) -> bool:
        if self.rounds is not None:
            lo, hi = self.rounds
            if not (lo <= round_index < hi):
                return False
        if self.senders is not None and sender not in self.senders:
            return False
        if self.recipients is not None and recipient not in self.recipients:
            return False
        return True

    def extra_delay_ms(
        self, round_index: int, sender: int, recipient: int
    ) -> float:
        return self.delay_ms if self._matches(round_index, sender, recipient) else 0.0


@dataclass(frozen=True)
class Partition(LinkFault):
    """Drop private messages crossing the cut for ``rounds``.

    ``group`` is one side of the partition; a message is dropped iff
    exactly one endpoint is inside it.  The physical broadcast channel
    is a separate medium in the paper's model and keeps working — a
    partition severs point-to-point links only.
    """

    group: frozenset[int]
    rounds: tuple[int, int] | None = None

    def drops(self, round_index: int, sender: int, recipient: int) -> bool:
        if self.rounds is not None:
            lo, hi = self.rounds
            if not (lo <= round_index < hi):
                return False
        return (sender in self.group) != (recipient in self.group)


@dataclass(frozen=True)
class Crash(LinkFault):
    """Halt party ``pid`` at the start of round ``round_index``.

    From that round on the party neither sends nor receives; its
    program is left suspended and it produces no output (a fail-stop
    fault, the async analogue of an honest party going dark).
    """

    pid: int
    round_index: int

    def crashed(self, round_index: int, pid: int) -> bool:
        return pid == self.pid and round_index >= self.round_index

    def drops(self, round_index: int, sender: int, recipient: int) -> bool:
        return self.crashed(round_index, sender) or self.crashed(
            round_index, recipient
        )


@dataclass(frozen=True)
class ReorderWithinRound(LinkFault):
    """Adversarial reordering: shuffle each inbox's arrival order.

    Marker fault consumed by the transport (it has no per-link effect):
    for matching ``rounds`` the transport applies a seeded shuffle to
    every recipient's delivery order instead of latency ordering.
    """

    rounds: tuple[int, int] | None = None

    def active(self, round_index: int) -> bool:
        if self.rounds is None:
            return True
        lo, hi = self.rounds
        return lo <= round_index < hi
