"""Shared per-round engine for all transports.

Every transport realizes the same synchronous-round semantics: honest
outputs are fixed first (rushing), the adversary acts, all outputs are
delivered according to the model's channel guarantees, and the round is
accounted and traced identically.  This module is that common core —
:class:`~repro.network.runtime.lockstep.LockstepTransport` and the
asyncio runtime both call these helpers, so metrics and trace events
agree bit-for-bit across transports by construction.

Lamport stamping lives here (the transport layer), not in protocol
code: logical clocks are a property of *delivery*, and keeping them
next to the delivery computation is what lets causal ordering survive
once delivery stops being lockstep.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

from ..adversary import RushedView
from ..messages import LamportClock, RoundOutput, payload_size
from .models import ComputeModel, LatencyModel, LinkFault

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (obs -> network)
    from repro.obs import Tracer

#: Sentinel distinguishing "not cached" from a cached size of 0.  An
#: empty payload legitimately has size 0, which is falsy — any truthy
#: test on the cached value (the old ``.get(id(p)) or payload_size(p)``)
#: silently recomputes and can drift from the delivery-time accounting.
_MISSING: Any = object()


def cached_payload_size(size_cache: dict[int, int], payload: Any) -> int:
    """Size of ``payload``, memoized by object identity.

    The same payload object is typically sent to many parties per
    round; the cache makes per-round accounting linear in *distinct*
    payloads.  Uses an explicit missing-sentinel so a cached size of 0
    (empty list/dict payloads) is honored rather than recomputed —
    per-party volumes and per-message events then agree with the round
    totals by construction.
    """
    size = size_cache.get(id(payload), _MISSING)
    if size is _MISSING:
        size = payload_size(payload)
        size_cache[id(payload)] = size
    return size


def rushed_view(
    round_index: int,
    pending: Mapping[int, RoundOutput],
    corrupted: Iterable[int],
) -> RushedView:
    """The rushing adversary's observation of honest round outputs."""
    honest_broadcasts = {
        pid: out.broadcast
        for pid, out in pending.items()
        if out.broadcast is not None
    }
    to_corrupted: dict[int, dict[int, Any]] = {pid: {} for pid in corrupted}
    for sender, out in pending.items():
        for recipient, payload in out.private.items():
            if recipient in to_corrupted:
                to_corrupted[recipient][sender] = payload
    return RushedView(
        round_index=round_index,
        broadcasts=honest_broadcasts,
        to_corrupted=to_corrupted,
    )


@dataclass
class Delivery:
    """One round's delivery plan plus its bandwidth accounting.

    ``inboxes`` preserves the transports' canonical delivery order
    (sender iteration order of ``all_outputs``): programs may iterate
    their inbox, so insertion order is part of bit-for-bit
    reproducibility across transports.
    """

    broadcasts: dict[int, Any]
    inboxes: dict[int, dict[int, Any]]
    delivered: int
    elements: int
    size_cache: dict[int, int] = field(default_factory=dict)
    #: Per-message arrival offsets in virtual ms, keyed
    #: ``(sender, recipient)``.  Persisted here (rather than discarded
    #: after ordering deliveries) so a round's timing is replayable and
    #: observable after the fact; ``None`` means all-zero (lockstep).
    delays: dict[tuple[int, int], float] | None = None


def compute_delivery(
    all_outputs: Mapping[int, RoundOutput],
    party_ids: Iterable[int],
    count_elements: bool,
) -> Delivery:
    """Apply the channel guarantees to one round's outputs.

    Broadcasts go to everyone (bandwidth counted once per receiving
    party); private payloads go only to existing recipients (payloads
    to non-existent parties are dropped).  ``party_ids`` must iterate
    in the execution's canonical party order.
    """
    broadcasts = {
        pid: out.broadcast
        for pid, out in all_outputs.items()
        if out.broadcast is not None
    }
    inboxes: dict[int, dict[int, Any]] = {pid: {} for pid in party_ids}
    delivered = 0
    elements = 0
    size_cache: dict[int, int] = {}  # same object sent to many parties
    for sender, out in all_outputs.items():
        for recipient, payload in out.private.items():
            if recipient not in inboxes:
                continue  # payload to a non-existent party: dropped
            inboxes[recipient][sender] = payload
            delivered += 1
            if count_elements:
                elements += cached_payload_size(size_cache, payload)
    if count_elements:
        elements += sum(
            payload_size(b) for b in broadcasts.values()
        ) * max(len(inboxes) - 1, 1)
    return Delivery(
        broadcasts=broadcasts,
        inboxes=inboxes,
        delivered=delivered,
        elements=elements,
        size_cache=size_cache,
    )


@dataclass
class VirtualClock:
    """Per-party virtual time, in milliseconds since run start.

    ``ready[p]`` is the earliest virtual instant at which party ``p``
    can act on everything delivered to it so far — the happens-before
    closure of all message chains ending at ``p``.  Under the zero
    latency/compute models every entry stays ``0.0``, which is how the
    lockstep transport keeps its traces bit-identical modulo the new
    timing fields.
    """

    ready: dict[int, float] = field(default_factory=dict)

    def now(self, pid: int) -> float:
        return self.ready.get(pid, 0.0)

    @property
    def makespan_ms(self) -> float:
        return max(self.ready.values(), default=0.0)


@dataclass(frozen=True)
class RoundTiming:
    """One round's virtual-time facts, as stamped into trace events.

    ``sends`` maps each sending party to its send instant; ``arrivals``
    maps each delivered private message ``(sender, recipient)`` to its
    arrival instant.  Broadcasts arrive at the send instant itself (the
    paper's physical broadcast channel is a separate synchronous
    medium, so it contributes no link delay).
    """

    t_start: float
    t_end: float
    sends: Mapping[int, float]
    arrivals: Mapping[tuple[int, int], float]


def sample_delays(
    rng: random.Random,
    latency: LatencyModel,
    link_faults: Sequence[LinkFault],
    round_index: int,
    all_outputs: Mapping[int, RoundOutput],
    delivery: Delivery,
    count_elements: bool,
) -> dict[tuple[int, int], float]:
    """Sample every delivered private message's arrival offset (ms).

    Iterates sorted ``(sender, recipient)`` pairs so the rng stream —
    and therefore each sampled delay — is a function of the seed alone,
    independent of dict iteration order.  Link-fault extra delay is
    folded in here so the persisted offset is the message's complete
    virtual transit time.
    """
    delays: dict[tuple[int, int], float] = {}
    inboxes = delivery.inboxes
    for sender in sorted(all_outputs):
        out = all_outputs[sender]
        for recipient in sorted(out.private):
            if recipient not in inboxes:
                continue
            size = (
                cached_payload_size(
                    delivery.size_cache, out.private[recipient]
                )
                if count_elements
                else 0
            )
            delay = latency.sample(rng, round_index, sender, recipient, size)
            for fault in link_faults:
                delay += fault.extra_delay_ms(round_index, sender, recipient)
            delays[(sender, recipient)] = delay
    return delays


def advance_virtual_time(
    clock: VirtualClock,
    round_index: int,
    all_outputs: Mapping[int, RoundOutput],
    delivery: Delivery,
    compute: ComputeModel,
    count_elements: bool,
) -> RoundTiming:
    """Advance per-party virtual time across one delivered round.

    A sender is charged the compute model's cost on top of its ready
    time and puts all its messages on the wire at that instant; each
    private message lands ``Delivery.delays`` later.  A party's new
    ready time is the max of its old one, its own send instant, every
    arrival addressed to it, and the latest broadcast instant — i.e.
    the round's happens-before closure.  The run's makespan is the
    final ``clock.makespan_ms``.
    """
    inboxes = delivery.inboxes
    broadcasts = delivery.broadcasts
    delays = delivery.delays or {}
    fanout = max(len(inboxes) - 1, 1)
    prev_makespan = clock.makespan_ms
    sends: dict[int, float] = {}
    for sender, out in all_outputs.items():
        if not out.private and out.broadcast is None:
            continue
        messages = sum(1 for r in out.private if r in inboxes)
        elements = 0
        if count_elements:
            elements = sum(
                cached_payload_size(delivery.size_cache, p)
                for r, p in out.private.items()
                if r in inboxes
            )
            if out.broadcast is not None:
                elements += payload_size(out.broadcast) * fanout
        if out.broadcast is not None:
            messages += 1
        sends[sender] = clock.now(sender) + compute.cost_ms(
            round_index, sender, messages, elements
        )
    arrivals: dict[tuple[int, int], float] = {}
    for sender, out in all_outputs.items():
        t_send = sends.get(sender)
        if t_send is None:
            continue
        for recipient in out.private:
            if recipient not in inboxes:
                continue
            arrivals[(sender, recipient)] = t_send + delays.get(
                (sender, recipient), 0.0
            )
    bcast_instant = max((sends[b] for b in broadcasts), default=0.0)
    for pid in inboxes:
        t = clock.now(pid)
        if pid in sends:
            t = max(t, sends[pid])
        if broadcasts:
            t = max(t, bcast_instant)
        clock.ready[pid] = t
    for (_sender, recipient), t_recv in arrivals.items():
        if t_recv > clock.ready[recipient]:
            clock.ready[recipient] = t_recv
    t_start = min(sends.values(), default=prev_makespan)
    t_end = max(clock.makespan_ms, t_start)
    return RoundTiming(
        t_start=t_start, t_end=t_end, sends=sends, arrivals=arrivals
    )


def record_round_observability(
    tracer: "Tracer",
    clocks: dict[int, LamportClock],
    round_index: int,
    all_outputs: Mapping[int, RoundOutput],
    delivery: Delivery,
    count_elements: bool,
    timing: RoundTiming | None = None,
    t_wall_ms: float | None = None,
) -> None:
    """Emit one round's trace events and advance the Lamport clocks.

    Produces the schema-v4 event stream: per-sender ``msg`` events
    (broadcasts as ``receiver=None`` carrying their fan-out-multiplied
    wire volume, so per-round msg volumes sum exactly to the round
    event's ``elements``), then the ``round`` event with the per-party
    breakdown.  Clocks tick once per sending party per round and merge
    on receipt, so stamps stay consistent with happens-before under any
    delivery order a transport produces.

    When ``timing`` is given (v4), msg events are stamped with their
    virtual send/arrival instants and the round event with its virtual
    window — the same values for both transports under zero models, so
    transport equivalence holds on full canonical lines.  ``t_wall_ms``
    additionally records the coordinator's wall-clock round timestamp
    in realtime mode.
    """
    inboxes = delivery.inboxes
    broadcasts = delivery.broadcasts
    size_cache = delivery.size_cache
    fanout = max(len(inboxes) - 1, 1)
    # Lamport send events: every party emitting anything this round
    # ticks once; all its messages carry that stamp.
    stamps: dict[int, int] = {}
    for sender, out in all_outputs.items():
        if out.private or out.broadcast is not None:
            clock = clocks.get(sender)
            if clock is None:
                clock = clocks[sender] = LamportClock()
            stamps[sender] = clock.tick()
    per_party: dict[int, dict[str, Any]] = {}
    for sender, out in all_outputs.items():
        sent = sum(1 for r in out.private if r in inboxes)
        volume = 0
        if count_elements:
            volume = sum(
                cached_payload_size(size_cache, p)
                for r, p in out.private.items()
                if r in inboxes
            )
            if out.broadcast is not None:
                volume += payload_size(out.broadcast) * fanout
        if sent or volume or out.broadcast is not None:
            per_party[sender] = {
                "messages": sent,
                "elements": volume,
                "broadcast": out.broadcast is not None,
            }
    # One msg event per delivery (schema v3): broadcasts carry
    # receiver=None and their full wire volume (payload x fan-out), so
    # per-round msg volumes sum exactly to the round event's elements.
    for sender in sorted(all_outputs):
        out = all_outputs[sender]
        stamp = stamps.get(sender, 0)
        t_send = timing.sends.get(sender) if timing is not None else None
        if out.broadcast is not None:
            size = (
                payload_size(out.broadcast) * fanout if count_elements else 0
            )
            tracer.record_message(
                round_index,
                sender,
                None,
                size,
                stamp,
                t_send=t_send,
                t_recv=t_send,  # broadcast channel: arrival == send
            )
        for recipient in sorted(out.private):
            if recipient not in inboxes:
                continue
            size = 0
            if count_elements:
                payload = out.private[recipient]
                size = cached_payload_size(size_cache, payload)
            t_recv = (
                timing.arrivals.get((sender, recipient))
                if timing is not None
                else None
            )
            tracer.record_message(
                round_index,
                sender,
                recipient,
                size,
                stamp,
                t_send=t_send,
                t_recv=t_recv,
            )
    tracer.record_round(
        round_index,
        broadcasters=sorted(broadcasts),
        messages=delivery.delivered,
        elements=delivery.elements,
        per_party={str(pid): per_party[pid] for pid in sorted(per_party)},
        t_start=timing.t_start if timing is not None else None,
        t_end=timing.t_end if timing is not None else None,
        t_wall_ms=t_wall_ms,
    )
    # Lamport receive events: each party merges the stamps of
    # everything delivered to it (private + broadcast), so its next
    # send is causally after all of them.
    for pid in inboxes:
        seen = [stamps[s] for s in inboxes[pid] if s in stamps] + [
            stamps[b] for b in broadcasts if b in stamps
        ]
        if seen:
            clock = clocks.get(pid)
            if clock is None:
                clock = clocks[pid] = LamportClock()
            clock.observe(seen)
