"""Synchronous network simulator with broadcast and a rushing adversary.

Protocols are written as generator *programs* (see
:mod:`~repro.network.program`); :func:`run_protocol` executes one
program per party under an optional active adversary and returns honest
outputs plus round/broadcast accounting.
"""

from .adversary import (
    Adversary,
    PassiveAdversary,
    RushedView,
    SilentAdversary,
    TamperingAdversary,
)
from .faults import (
    compose_tampers,
    crash_after,
    drop_messages,
    faulty_adversary,
    flip_integers,
    garble_everything,
    only_in_rounds,
)
from .messages import RoundInput, RoundOutput, SizedPayload, payload_size
from .metrics import ProtocolMetrics
from .program import Program, map_result, parallel, sequence, silent_rounds
from .runtime import (
    InMemoryAsyncTransport,
    LockstepTransport,
    Transport,
    register_transport,
    resolve_transport,
)
from .simulator import ExecutionResult, ProtocolViolation, run_protocol

__all__ = [
    "RoundInput",
    "RoundOutput",
    "SizedPayload",
    "payload_size",
    "Program",
    "parallel",
    "sequence",
    "silent_rounds",
    "map_result",
    "ProtocolMetrics",
    "Adversary",
    "PassiveAdversary",
    "TamperingAdversary",
    "SilentAdversary",
    "RushedView",
    "ExecutionResult",
    "ProtocolViolation",
    "run_protocol",
    "Transport",
    "LockstepTransport",
    "InMemoryAsyncTransport",
    "register_transport",
    "resolve_transport",
    "crash_after",
    "drop_messages",
    "garble_everything",
    "flip_integers",
    "only_in_rounds",
    "compose_tampers",
    "faulty_adversary",
]
