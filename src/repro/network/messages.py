"""Round message containers for the synchronous network model.

The paper's model (Section 2): a complete synchronous network of n
players pairwise connected by secure (private and authenticated)
channels, plus a physical broadcast channel.  Computation evolves in
rounds; in each round a party sends one (possibly empty) private payload
to each other party and optionally one broadcast payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class RoundOutput:
    """What one party emits in one round.

    Attributes
    ----------
    private:
        Mapping from recipient party id to payload, carried over the
        secure pairwise channels.  Only the recipient (and an adversary
        corrupting it) sees a private payload.
    broadcast:
        Optional payload for the physical broadcast channel; delivered
        identically to every party.  ``None`` means the broadcast
        channel is not used by this party this round.
    """

    private: Mapping[int, Any] = field(default_factory=dict)
    broadcast: Any = None

    @staticmethod
    def silent() -> "RoundOutput":
        """A round in which the party sends nothing."""
        return RoundOutput()


@dataclass(frozen=True)
class RoundInput:
    """What one party receives at the end of one round.

    Attributes
    ----------
    private:
        Mapping from sender id to the private payload addressed to this
        party (absent senders sent nothing).
    broadcast:
        Mapping from sender id to that sender's broadcast payload
        (absent senders did not broadcast).  By the broadcast channel's
        guarantee, every party receives the *same* mapping.
    """

    private: Mapping[int, Any] = field(default_factory=dict)
    broadcast: Mapping[int, Any] = field(default_factory=dict)


_ATOMS = (int, str, bool, float)
_CONTAINERS = (list, tuple, set, frozenset)


def payload_size(payload: Any) -> int:
    """Approximate payload size in field elements / atoms.

    Used for bandwidth accounting: ints and field elements count 1,
    containers count the sum of their items, ``None`` counts 0.  This
    sits on the simulator's per-message hot path, hence the flat,
    concrete-type dispatch.
    """
    if payload is None:
        return 0
    tp = type(payload)
    if tp in _ATOMS or tp.__name__ == "FieldElement":
        return 1
    if tp is dict:
        total = 0
        for v in payload.values():
            total += payload_size(v)
        return total
    if tp in _CONTAINERS:
        total = 0
        for v in payload:
            total += payload_size(v)
        return total
    if isinstance(payload, _ATOMS):
        return 1
    if isinstance(payload, Mapping):
        return sum(payload_size(v) for v in payload.values())
    if isinstance(payload, _CONTAINERS):
        return sum(payload_size(v) for v in payload)
    # Dataclass-like objects: count their public attributes.
    if hasattr(payload, "__dataclass_fields__"):
        return sum(
            payload_size(getattr(payload, name))
            for name in payload.__dataclass_fields__
        )
    if hasattr(payload, "coeffs"):  # Polynomial
        return len(payload.coeffs)
    return 1
