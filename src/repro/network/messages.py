"""Round message containers for the synchronous network model.

The paper's model (Section 2): a complete synchronous network of n
players pairwise connected by secure (private and authenticated)
channels, plus a physical broadcast channel.  Computation evolves in
rounds; in each round a party sends one (possibly empty) private payload
to each other party and optionally one broadcast payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class RoundOutput:
    """What one party emits in one round.

    Attributes
    ----------
    private:
        Mapping from recipient party id to payload, carried over the
        secure pairwise channels.  Only the recipient (and an adversary
        corrupting it) sees a private payload.
    broadcast:
        Optional payload for the physical broadcast channel; delivered
        identically to every party.  ``None`` means the broadcast
        channel is not used by this party this round.
    """

    private: Mapping[int, Any] = field(default_factory=dict)
    broadcast: Any = None

    @staticmethod
    def silent() -> "RoundOutput":
        """A round in which the party sends nothing."""
        return RoundOutput()


@dataclass(frozen=True)
class RoundInput:
    """What one party receives at the end of one round.

    Attributes
    ----------
    private:
        Mapping from sender id to the private payload addressed to this
        party (absent senders sent nothing).
    broadcast:
        Mapping from sender id to that sender's broadcast payload
        (absent senders did not broadcast).  By the broadcast channel's
        guarantee, every party receives the *same* mapping.
    """

    private: Mapping[int, Any] = field(default_factory=dict)
    broadcast: Mapping[int, Any] = field(default_factory=dict)


_ATOMS = (int, str, bool, float)
_CONTAINERS = (list, tuple, set, frozenset)


class SizedPayload(list):
    """A payload list whose accounting size was precomputed by its builder.

    Layers that assemble large, regularly-shaped payloads (the VSS
    reveal columns) know their :func:`payload_size` in O(1) per item at
    construction time; carrying it here lets the accounting skip the
    per-atom walk.  The precomputed value must equal what the generic
    walk would return — sizes are protocol-visible (traces, comm
    bounds), not advisory.  Any transformation (fault tampering,
    slicing) yields a plain ``list`` and falls back to generic sizing,
    so a stale size cannot survive content changes.
    """

    __slots__ = ("payload_elements",)

    def __init__(self, items: Any, payload_elements: int):
        super().__init__(items)
        self.payload_elements = payload_elements

    def __reduce__(self):
        # Serialized copies (wire transports) degrade to a plain list:
        # correct sizing beats carrying a size the receiver can't trust.
        return (list, (list(self),))


def payload_size(payload: Any) -> int:
    """Approximate payload size in field elements / atoms.

    Used for bandwidth accounting: ints and field elements count 1,
    containers count the sum of their items, ``None`` counts 0.  This
    sits on the simulator's per-message hot path, hence the flat,
    concrete-type dispatch.

    Mappings count *keys as well as values*: a transmitted dict's keys
    (recipient ids, sub-protocol labels, non-zero index lists) travel on
    the wire like any other atom, so ``{("deal", 3): "vss-share"}`` is
    3 elements, not 1.
    """
    if payload is None:
        return 0
    tp = type(payload)
    if tp is SizedPayload:
        return payload.payload_elements
    if tp in _ATOMS or tp.__name__ == "FieldElement":
        return 1
    if tp is dict:
        total = 0
        for k, v in payload.items():
            total += (1 if type(k) is int else payload_size(k)) + (
                1 if type(v) is int else payload_size(v)
            )
        return total
    if tp in _CONTAINERS:
        # Ints are by far the dominant leaves (share values, serials,
        # coefficients) and nested lists/tuples the dominant structure
        # (reveal payloads); an explicit stack walks them without
        # re-entering the full dispatch above per node.
        total = 0
        stack = [payload]
        while stack:
            for v in stack.pop():
                tv = type(v)
                if tv is int:
                    total += 1
                elif tv is tuple or tv is list:
                    stack.append(v)
                else:
                    total += payload_size(v)
        return total
    if isinstance(payload, _ATOMS):
        return 1
    if isinstance(payload, Mapping):
        return sum(payload_size(k) + payload_size(v) for k, v in payload.items())
    if isinstance(payload, _CONTAINERS):
        return sum(payload_size(v) for v in payload)
    # Dataclass-like objects: count their public attributes.
    if hasattr(payload, "__dataclass_fields__"):
        return sum(
            payload_size(getattr(payload, name))
            for name in payload.__dataclass_fields__
        )
    if hasattr(payload, "coeffs"):  # Polynomial
        return len(payload.coeffs)
    return 1


class LamportClock:
    """One party's logical clock (Lamport 1978).

    The simulator keeps one per party and stamps every emitted message
    with the sender's post-tick value, so the partial order of stamps is
    consistent with happens-before even once delivery stops being
    lockstep (the planned async runtime).  Rules:

    - ``tick()`` before sending; the returned value stamps every message
      the party emits that round.
    - ``observe(stamps)`` on receipt: the clock jumps past the largest
      stamp seen, so the party's *next* send is causally after every
      message it has received.
    """

    __slots__ = ("value",)

    def __init__(self, value: int = 0):
        self.value = value

    def tick(self) -> int:
        """Advance for a local/send event; returns the new stamp."""
        self.value += 1
        return self.value

    def observe(self, stamps: "Any") -> int:
        """Merge received stamps (iterable of ints); returns the clock.

        Sets the clock to the max of itself and every received stamp, so
        the next ``tick()`` — the party's next send — is strictly above
        everything it has seen.
        """
        for stamp in stamps:
            if stamp > self.value:
                self.value = stamp
        return self.value
