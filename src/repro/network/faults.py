"""Reusable fault-injection building blocks.

Tamper functions for :class:`~repro.network.adversary.TamperingAdversary`
expressing the standard failure models: message drops, crashes at a
given round, payload garbling.  They compose with :func:`compose_tampers`
(applied left to right).
"""

from __future__ import annotations

import random
from typing import Callable

from .adversary import RushedView, TamperingAdversary
from .messages import RoundOutput
from .program import Program

Tamper = Callable[[int, RushedView, RoundOutput], RoundOutput]


def crash_after(round_index: int) -> Tamper:
    """Behave honestly through ``round_index - 1``, then send nothing."""

    def tamper(pid, view, out):
        if view.round_index >= round_index:
            return RoundOutput.silent()
        return out

    return tamper


def drop_messages(probability: float, rng: random.Random) -> Tamper:
    """Drop each outgoing private payload independently w.p. ``probability``."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")

    def tamper(pid, view, out):
        kept = {
            j: payload
            for j, payload in out.private.items()
            if rng.random() >= probability
        }
        return RoundOutput(private=kept, broadcast=out.broadcast)

    return tamper


def garble_everything() -> Tamper:
    """Replace every payload (private and broadcast) with junk."""

    def tamper(pid, view, out):
        return RoundOutput(
            private={j: "garbage" for j in out.private},
            broadcast="garbage" if out.broadcast is not None else None,
        )

    return tamper


def flip_integers(mask: int) -> Tamper:
    """XOR ``mask`` into every int found at the top level of payloads.

    Models a bit-flipping (value-substituting) party: lists of ints and
    tuples ending in an int (the common share-payload shapes) are
    flipped; anything else passes through unchanged.
    """

    def flip(payload):
        if isinstance(payload, int):
            return payload ^ mask
        if isinstance(payload, list):
            return [flip(v) for v in payload]
        if isinstance(payload, tuple) and payload and isinstance(payload[-1], int):
            return payload[:-1] + (payload[-1] ^ mask,)
        return payload

    def tamper(pid, view, out):
        return RoundOutput(
            private={j: flip(p) for j, p in out.private.items()},
            broadcast=out.broadcast,
        )

    return tamper


def only_in_rounds(inner: Tamper, rounds: set[int]) -> Tamper:
    """Apply ``inner`` only in the given round indices."""

    def tamper(pid, view, out):
        if view.round_index in rounds:
            return inner(pid, view, out)
        return out

    return tamper


def compose_tampers(*tampers: Tamper) -> Tamper:
    """Apply several tamper functions left to right."""

    def tamper(pid, view, out):
        for t in tampers:
            out = t(pid, view, out)
        return out

    return tamper


def faulty_adversary(
    corrupted: set[int],
    honest_programs: dict[int, Program],
    *tampers: Tamper,
) -> TamperingAdversary:
    """Convenience constructor: honest programs + composed tampers."""
    return TamperingAdversary(
        corrupted, honest_programs, compose_tampers(*tampers)
    )
