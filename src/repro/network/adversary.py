"""Adversary models for the synchronous simulator.

The paper's adversary (Section 2) is a centralized, computationally
unbounded, *active*, *rushing* ``t``-adversary: it corrupts up to
``t < n/2`` parties, sees all honest messages addressed to corrupted
parties (and all broadcasts) *before* choosing the corrupted parties'
round messages, and may be static or adaptive.

The simulator realizes rushing by computing honest parties' round
outputs first and handing the adversary a :class:`RushedView` before the
corrupted parties' outputs are fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from .messages import RoundInput, RoundOutput
from .program import Program


@dataclass(frozen=True)
class RushedView:
    """What a rushing adversary observes before acting in a round.

    Attributes
    ----------
    round_index:
        Zero-based index of the current round.
    broadcasts:
        Honest parties' broadcast payloads this round (sender -> payload).
    to_corrupted:
        Private payloads honest parties addressed to corrupted parties:
        ``to_corrupted[corrupt_pid][honest_sender] -> payload``.  Honest
        to honest private traffic is *not* visible (secure channels).
    """

    round_index: int
    broadcasts: Mapping[int, Any]
    to_corrupted: Mapping[int, Mapping[int, Any]]


class Adversary:
    """Base adversary: controls a set of corrupted parties.

    Subclasses override :meth:`act` to choose the corrupted parties'
    round outputs.  The default implementation is *crash-like*: corrupted
    parties send nothing (the model's convention replaces missing
    messages with defaults at the protocol layer).
    """

    def __init__(self, corrupted: set[int] | frozenset[int]):
        self.corrupted = frozenset(corrupted)
        #: Complete view of every corrupted party, round by round.
        self.views: list[dict[int, RoundInput]] = []

    def observe_inputs(self, inputs: Mapping[int, RoundInput]) -> None:
        """Record corrupted parties' round inputs (their joint view)."""
        self.views.append(dict(inputs))

    def act(self, view: RushedView) -> dict[int, RoundOutput]:
        """Return this round's outputs for every corrupted party."""
        return {pid: RoundOutput.silent() for pid in self.corrupted}

    def maybe_corrupt(
        self, round_index: int, n: int, budget: int
    ) -> set[int]:
        """Adaptive hook: return additional party ids to corrupt.

        Called between rounds with the remaining corruption ``budget``;
        the default (static) adversary corrupts nobody new.
        """
        return set()

    def finalize(self, outputs: Mapping[int, Any]) -> None:
        """Called once with honest parties' protocol outputs (for analysis)."""


class PassiveAdversary(Adversary):
    """Honest-but-curious: corrupted parties follow the protocol.

    The adversary still records every corrupted party's view, which is
    what the anonymity/privacy experiments inspect.
    """

    def __init__(
        self,
        corrupted: set[int],
        programs: Mapping[int, Program],
    ):
        super().__init__(corrupted)
        self._programs = dict(programs)
        self._pending: dict[int, RoundOutput] = {}
        self._started = False
        self.results: dict[int, Any] = {}

    def _start(self) -> None:
        for pid, prog in list(self._programs.items()):
            try:
                self._pending[pid] = next(prog)
            except StopIteration as stop:
                self.results[pid] = stop.value
                del self._programs[pid]
        self._started = True

    def observe_inputs(self, inputs: Mapping[int, RoundInput]) -> None:
        super().observe_inputs(inputs)
        for pid, prog in list(self._programs.items()):
            if pid not in inputs:
                continue
            try:
                self._pending[pid] = prog.send(inputs[pid])
            except StopIteration as stop:
                self.results[pid] = stop.value
                del self._programs[pid]

    def act(self, view: RushedView) -> dict[int, RoundOutput]:
        if not self._started:
            self._start()
        outputs = {}
        for pid in self.corrupted:
            outputs[pid] = self._pending.pop(pid, RoundOutput.silent())
        return outputs


class TamperingAdversary(PassiveAdversary):
    """Runs given programs for corrupted parties but tampers with outputs.

    ``tamper(pid, view, output) -> RoundOutput`` is applied to each
    corrupted party's pending output after the rushed view is available,
    which suffices to express most concrete attacks (jamming, targeted
    equivocation, dependent-input injection).
    """

    def __init__(
        self,
        corrupted: set[int],
        programs: Mapping[int, Program],
        tamper: Callable[[int, RushedView, RoundOutput], RoundOutput],
    ):
        super().__init__(corrupted, programs)
        self._tamper = tamper

    def act(self, view: RushedView) -> dict[int, RoundOutput]:
        outputs = super().act(view)
        return {
            pid: self._tamper(pid, view, out) for pid, out in outputs.items()
        }


class SilentAdversary(Adversary):
    """Corrupted parties never send anything (fail-stop from round 0)."""
