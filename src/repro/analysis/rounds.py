"""Round-complexity models of every protocol the paper compares (E1/E2).

All figures are as the paper states them (Sections 1.1, 1.2):

- **This paper (AnonChan)**: round complexity "essentially equal to
  r_VSS-share".  Our implementation is exactly
  ``r_VSS-share + 5`` (challenge opening, two cut-and-choose opening
  steps, receiver-permutation opening, private transfer to P*) and
  adds **zero** broadcast rounds beyond the VSS's.
- **Zhang'11**: ``r_VSS-share + r_comp + r_eq + r_mult``; with the
  constant-round realizations the paper cites, comparison and equality
  testing need bit decomposition — 114 rounds with [DFK+06] — plus the
  multiplication sub-protocol.
- **PW96**: fault localization eliminates a single corrupt player or a
  corrupt pair per failed run; the adversary can force
  ``Omega(n^2)`` sequential runs (footnote 1; reducible to
  ``Omega(n)`` with player elimination [HMP00]).
- **vABH03**: constant rounds per attempt, but Reliability only 1/2
  per attempt; ``k`` attempts give reliability ``1 - 2^-k`` at the cost
  of malleability.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vss.base import VSSCost
from repro.vss.costs import RB89_COST

#: Rounds for bit decomposition in [DFK+06], as cited by the paper §1.2.
DFK06_BIT_DECOMPOSITION_ROUNDS = 114
#: Constant-round multiplication (Beaver-style with shared randomness);
#: modeled as a small constant on top of one reconstruction.
MULTIPLICATION_ROUNDS = 3
#: AnonChan's fixed overhead beyond the VSS sharing phase (measured on
#: this implementation: open r, cut-and-choose stage 1, stage 2, open g,
#: private transfer to the receiver).
ANONCHAN_FIXED_OVERHEAD = 5


@dataclass(frozen=True)
class RoundEstimate:
    """Rounds and broadcast rounds of one anonymous-channel protocol."""

    protocol: str
    rounds: int
    broadcast_rounds: int
    note: str = ""


def anonchan_rounds(vss: VSSCost = RB89_COST) -> RoundEstimate:
    """This paper: one VSS share phase + a 5-round fixed tail."""
    return RoundEstimate(
        protocol="GGOR14 (this paper)",
        rounds=vss.share_rounds + ANONCHAN_FIXED_OVERHEAD,
        broadcast_rounds=vss.share_broadcast_rounds,
        note="r_VSS-share + 5; broadcast-round-preserving reduction",
    )


def zhang11_rounds(vss: VSSCost = RB89_COST) -> RoundEstimate:
    """Zhang'11 obfuscated shuffle: VSS + comparison + equality + mult.

    Comparison and equality testing both require bit decomposition of
    shared values (114 rounds each with [DFK+06]).
    """
    r_comp = DFK06_BIT_DECOMPOSITION_ROUNDS
    r_eq = DFK06_BIT_DECOMPOSITION_ROUNDS
    r_mult = MULTIPLICATION_ROUNDS
    return RoundEstimate(
        protocol="Zhang11",
        rounds=vss.share_rounds + r_comp + r_eq + r_mult,
        broadcast_rounds=vss.share_broadcast_rounds,
        note="r_VSS + r_comp + r_eq + r_mult; bit decomposition dominates",
    )


def pw96_rounds(n: int, t: int | None = None, rounds_per_run: int = 4) -> RoundEstimate:
    """PW96 trap protocol: worst-case Omega(n^2) sequential runs.

    Each failed run publicly identifies one corrupt player or one pair
    containing a corrupt player; with an honest majority there are
    ``Omega(n^2)`` pairs with a corrupt member, each of which the
    adversary can burn one run on (paper, footnote 1).
    """
    if t is None:
        t = (n - 1) // 2
    worst_runs = max(t * (n - t), 1)  # pairs (corrupt, honest) the adversary can spend
    return RoundEstimate(
        protocol="PW96",
        rounds=worst_runs * rounds_per_run,
        broadcast_rounds=worst_runs,
        note="fault localization: one eliminated pair per failed run",
    )


def vabh03_rounds(target_reliability: float = 0.5) -> RoundEstimate:
    """vABH03 k-anonymous darts: constant rounds, reliability 1/2 per run.

    Reaching reliability ``1 - eps`` needs ``log2(1/eps)`` repetitions
    — and repetitions let the adversary inject fresh values each time
    (malleability), which is the paper's §1.2 criticism.
    """
    import math

    eps = 1 - target_reliability
    runs = max(1, math.ceil(math.log2(1 / eps))) if eps < 0.5 else 1
    return RoundEstimate(
        protocol="vABH03",
        rounds=runs * 3,
        broadcast_rounds=runs,
        note=f"{runs} repetition(s); each run is reliable w.p. 1/2",
    )


def comparison_table(n: int, vss: VSSCost = RB89_COST) -> list[RoundEstimate]:
    """The paper's §1.1/§1.2 comparison, for ``n`` parties (E1)."""
    return [
        anonchan_rounds(vss),
        zhang11_rounds(vss),
        pw96_rounds(n),
        vabh03_rounds(),
    ]
