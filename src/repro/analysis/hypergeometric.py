"""Hypergeometric tail bounds (Claim 2 of the paper).

Claim 2: let ``I_1, ..., I_n`` be random size-``d`` subsets of ``[l]``
and ``X_ij = |I_i ∩ I_j|``.  Then for any ``C >= 0``::

    Pr[ sum_{i != j} X_ij >= n^2 (d^2/l + C d) ] <= n^2 exp(-C^2 d)

The proof uses the Chvátal/Hoeffding/Skala tail of the hypergeometric
distribution, ``Pr[X >= (p + C) d] <= exp(-2 C^2 d)`` (Hoeffding's
form; the paper cites the weaker exponent ``C^2 d``, which we use for
the reproduced bound), plus a union bound.  This module provides the
exact pmf, both tails, and the paper's aggregate bound, all of which
experiment E3 compares against Monte-Carlo estimates.
"""

from __future__ import annotations

import math


def log_binomial(n: int, k: int) -> float:
    """Natural log of C(n, k); ``-inf`` when out of range."""
    if k < 0 or k > n or n < 0:
        return float("-inf")
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    )


def hypergeometric_pmf(population: int, successes: int, draws: int, k: int) -> float:
    """Pr[X = k] for X ~ Hypergeometric(population, successes, draws)."""
    if k < max(0, draws + successes - population) or k > min(draws, successes):
        return 0.0
    log_p = (
        log_binomial(successes, k)
        + log_binomial(population - successes, draws - k)
        - log_binomial(population, draws)
    )
    return math.exp(log_p)


def hypergeometric_tail(population: int, successes: int, draws: int, k: int) -> float:
    """Pr[X >= k], computed exactly by summing the pmf."""
    upper = min(draws, successes)
    if k <= max(0, draws + successes - population):
        return 1.0
    return sum(
        hypergeometric_pmf(population, successes, draws, i)
        for i in range(k, upper + 1)
    )


def chvatal_tail_bound(population: int, successes: int, draws: int, k: int) -> float:
    """Chvátal/Hoeffding upper bound on ``Pr[X >= k]``.

    With ``p = successes/population`` and ``k = (p + C) * draws``:
    ``Pr[X >= k] <= exp(-2 C^2 draws)`` (Hoeffding 1963 / Chvátal 1979;
    see also Skala 2013).
    """
    p = successes / population
    c = k / draws - p
    if c <= 0:
        return 1.0
    return math.exp(-2 * c * c * draws)


def paper_tail_bound(n: int, d: int, ell: int, c: float) -> float:
    """The aggregate bound of Claim 2: ``n^2 exp(-C^2 d)``."""
    if c < 0:
        raise ValueError("C must be non-negative")
    return min(1.0, n * n * math.exp(-c * c * d))


def paper_collision_budget(n: int, d: int, ell: int, c: float) -> float:
    """The collision budget of Claim 2: ``n^2 (d^2/l + C d)``."""
    return n * n * (d * d / ell + c * d)


def paper_c_for_budget(n: int, d: int, ell: int, budget: float) -> float:
    """Invert the budget: the C making ``n^2 (d^2/l + C d) = budget``."""
    return (budget / (n * n) - d * d / ell) / d


def collision_tail_bound(n: int, d: int, ell: int, budget: float) -> float:
    """Bound on Pr[one sender's darts suffer >= ``budget`` collisions].

    One sender's ``d`` darts intersect the union of the other senders'
    darts (at most ``(n-1) d`` marked cells); the intersection is
    stochastically dominated by ``Hypergeometric(l, (n-1) d, d)``, whose
    tail is bounded à la Chvátal.
    """
    marked = min((n - 1) * d, ell)
    k = math.ceil(budget)
    return chvatal_tail_bound(ell, marked, d, k)


def expected_pairwise_collisions(n: int, d: int, ell: int) -> float:
    """E[sum_{i != j} X_ij] = n (n-1) d^2 / l (ordered pairs)."""
    return n * (n - 1) * d * d / ell
