"""Quantitative analysis reproducing the paper's bounds and comparisons."""

from .hypergeometric import (
    chvatal_tail_bound,
    collision_tail_bound,
    expected_pairwise_collisions,
    hypergeometric_pmf,
    hypergeometric_tail,
    log_binomial,
    paper_c_for_budget,
    paper_collision_budget,
    paper_tail_bound,
)
from .rounds import (
    ANONCHAN_FIXED_OVERHEAD,
    DFK06_BIT_DECOMPOSITION_ROUNDS,
    RoundEstimate,
    anonchan_rounds,
    comparison_table,
    pw96_rounds,
    vabh03_rounds,
    zhang11_rounds,
)
from .security import (
    ErrorBudget,
    empirical_distribution,
    error_budget,
    required_checks_for,
    statistical_distance,
)

__all__ = [
    "hypergeometric_pmf",
    "hypergeometric_tail",
    "chvatal_tail_bound",
    "paper_tail_bound",
    "paper_collision_budget",
    "paper_c_for_budget",
    "collision_tail_bound",
    "expected_pairwise_collisions",
    "log_binomial",
    "RoundEstimate",
    "anonchan_rounds",
    "zhang11_rounds",
    "pw96_rounds",
    "vabh03_rounds",
    "comparison_table",
    "ANONCHAN_FIXED_OVERHEAD",
    "DFK06_BIT_DECOMPOSITION_ROUNDS",
    "ErrorBudget",
    "error_budget",
    "required_checks_for",
    "statistical_distance",
    "empirical_distribution",
]
