"""Error budgets for Theorem 1 — where the ``2^-Omega(kappa)`` goes.

Each security property of the anonymous channel fails with probability
bounded by a sum of identifiable terms; this module makes the budget
explicit so experiments can compare measured failure rates against each
term (E4, E5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import AnonChanParams


@dataclass(frozen=True)
class ErrorBudget:
    """Per-property failure-probability bounds for one parameter set."""

    #: An improper vector survives cut-and-choose (Claim 1).
    cheater_survival: float
    #: Some honest sender loses >= d/2 darts to collisions (Claim 2).
    collision_overflow: float
    #: Two honest tags collide (tags are uniform non-zero kappa-bit).
    tag_collision: float
    #: The underlying VSS fails (commitment/privacy), per the theorem's
    #: hypothesis on the VSS scheme.
    vss_failure: float

    @property
    def reliability(self) -> float:
        """Reliability fails only via collisions, tags, VSS, or a cheater
        jamming through (all four terms)."""
        return min(
            1.0,
            self.cheater_survival
            + self.collision_overflow
            + self.tag_collision
            + self.vss_failure,
        )

    @property
    def non_malleability(self) -> float:
        """Non-malleability fails via a surviving improper vector or VSS."""
        return min(1.0, self.cheater_survival + self.vss_failure)

    @property
    def anonymity(self) -> float:
        """Anonymity fails only if the VSS privacy fails."""
        return min(1.0, self.vss_failure)


def error_budget(
    params: AnonChanParams, vss_failure: float = 0.0
) -> ErrorBudget:
    """Compute the budget for a parameter set.

    ``vss_failure`` is the failure bound of the plugged-in VSS (0 for
    the ideal-functionality backend; ``2^-Omega(kappa)`` for real
    statistical schemes).
    """
    from .hypergeometric import collision_tail_bound

    t = params.t
    cheater = min(1.0, t * 2.0 ** (-params.num_checks))
    collision = min(
        1.0,
        params.n
        * collision_tail_bound(
            n=params.n, d=params.d, ell=params.ell, budget=params.d / 2
        ),
    )
    tags = min(1.0, params.n**2 / (2**params.kappa - 1))
    return ErrorBudget(
        cheater_survival=cheater,
        collision_overflow=collision,
        tag_collision=tags,
        vss_failure=vss_failure,
    )


def required_checks_for(target_exponent: int, t: int) -> int:
    """Challenge bits needed so ``t * 2^-checks <= 2^-target_exponent``."""
    return target_exponent + max(0, math.ceil(math.log2(max(t, 1))))


def statistical_distance(p: dict, q: dict) -> float:
    """Total variation distance between two finite distributions.

    Used by the anonymity/privacy experiments to compare receiver-view
    statistics across different sender-message assignments.
    """
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def empirical_distribution(samples: list) -> dict:
    """Normalized histogram of hashable samples."""
    from collections import Counter

    counts = Counter(samples)
    total = len(samples)
    if total == 0:
        return {}
    return {k: v / total for k, v in counts.items()}
