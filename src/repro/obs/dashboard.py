"""Dependency-free static HTML dashboard for campaign telemetry.

``python -m repro dashboard`` assembles one self-contained HTML page
(inline CSS, inline SVG, no external resources — safe as a CI artifact)
from whichever inputs are on hand:

- a conformance campaign report (``--campaign``): per-config verdicts
  and pass rates per adversary-strategy / fault axis;
- a per-trial telemetry store (``--telemetry``, see
  :mod:`repro.testkit.telemetry`): per-config communication aggregates;
- a BENCH history store (``--bench-history``, see
  :func:`repro.obs.bench.append_history`): per-metric trend sparklines;
- a schema-v3 trace (``--trace``): the per-link communication heatmap
  of :class:`repro.obs.comm.CommMatrix`, and — when the trace carries
  v4 virtual-time stamps — the timing panel (makespan verdict,
  straggler heatmap, critical path) of
  :class:`repro.obs.timing.TimingReport`, with a per-trial makespan
  sparkline when telemetry is also supplied.

Every renderer degrades to an explanatory placeholder when its input is
absent, so the page is useful from the very first smoke campaign.
"""

from __future__ import annotations

import html
import time
from typing import Any, Mapping, Sequence

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 72rem; color: #1a1a2e;
       background: #fafafa; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem;
     border-bottom: 2px solid #e0e0e8; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: .8rem 0; font-size: .85rem; }
th, td { border: 1px solid #d8d8e0; padding: .25rem .6rem;
         text-align: right; }
th { background: #eef0f6; } td.label, th.label { text-align: left; }
.ok { color: #1b7837; font-weight: 600; }
.fail { color: #b2182b; font-weight: 600; }
.muted { color: #888; font-style: italic; }
.bar { display: inline-block; height: .7rem; background: #4393c3;
       vertical-align: middle; }
.heat { width: 1.9rem; height: 1.4rem; }
svg.spark { vertical-align: middle; }
footer { margin-top: 3rem; font-size: .75rem; color: #888; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _heat_color(value: float, peak: float) -> str:
    """White -> deep blue ramp for the comm heatmap."""
    if peak <= 0 or value <= 0:
        return "#ffffff"
    frac = min(1.0, value / peak)
    # Interpolate 255 -> 33 on the red/green channels.
    channel = int(255 - frac * (255 - 33))
    return f"#{channel:02x}{channel:02x}ff"


def _sparkline(values: Sequence[float], width: int = 140, height: int = 28) -> str:
    """Inline SVG polyline over the value series."""
    if not values:
        return '<span class="muted">no data</span>'
    if len(values) == 1:
        values = [values[0], values[0]]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = width / (len(values) - 1)
    points = " ".join(
        f"{i * step:.1f},{height - 3 - (v - lo) / span * (height - 6):.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="#4393c3" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


# -- sections ---------------------------------------------------------------

def _campaign_section(campaign: Mapping[str, Any] | None) -> list[str]:
    out = ["<h2>Conformance campaign</h2>"]
    if not campaign:
        out.append(
            '<p class="muted">no campaign report supplied '
            "(--campaign conformance-smoke.json)</p>"
        )
        return out
    totals = campaign.get("totals", {})
    verdict = (
        '<span class="ok">all invariants hold</span>'
        if totals.get("ok")
        else '<span class="fail">INVARIANT VIOLATIONS</span>'
    )
    out.append(
        f"<p>grid <b>{_esc(campaign.get('grid'))}</b>, seed "
        f"{_esc(campaign.get('campaign_seed'))} — "
        f"{_esc(totals.get('configs'))} configs, "
        f"{_esc(totals.get('runs'))} protocol runs: {verdict}</p>"
    )
    configs = campaign.get("configs", [])
    # Pass rates per campaign axis (strategy / fault / substrate).
    for axis in ("strategy", "fault", "substrate"):
        buckets: dict[str, list[bool]] = {}
        for entry in configs:
            value = str(entry.get("config", {}).get(axis, "?"))
            buckets.setdefault(value, []).append(bool(entry.get("ok")))
        if len(buckets) < 1:
            continue
        out.append(f"<h3>pass rate by {_esc(axis)}</h3>")
        out.append(
            '<table><tr><th class="label">value</th><th>configs</th>'
            "<th>pass</th><th>rate</th><th></th></tr>"
        )
        for value in sorted(buckets):
            oks = buckets[value]
            rate = sum(oks) / len(oks)
            out.append(
                f'<tr><td class="label">{_esc(value)}</td>'
                f"<td>{len(oks)}</td><td>{sum(oks)}</td>"
                f"<td>{rate:.0%}</td>"
                f'<td class="label"><span class="bar" '
                f'style="width:{rate * 8:.1f}rem"></span></td></tr>'
            )
        out.append("</table>")
    violating = [e for e in configs if not e.get("ok")]
    if violating:
        out.append("<h3>violations</h3><ul>")
        for entry in violating:
            out.append(
                f"<li><b>{_esc(entry.get('config', {}).get('name'))}</b>: "
                f"{_esc(', '.join(entry.get('violations', [])))}</li>"
            )
        out.append("</ul>")
    return out


def _telemetry_section(telemetry: Sequence[Mapping[str, Any]] | None) -> list[str]:
    out = ["<h2>Per-trial telemetry</h2>"]
    if not telemetry:
        out.append(
            '<p class="muted">no telemetry store supplied '
            "(--telemetry telemetry.jsonl)</p>"
        )
        return out
    by_config: dict[str, list[Mapping[str, Any]]] = {}
    for record in telemetry:
        by_config.setdefault(str(record.get("config", "?")), []).append(record)
    out.append(
        f"<p>{len(telemetry)} trial records across "
        f"{len(by_config)} config(s)</p>"
    )
    out.append(
        '<table><tr><th class="label">config</th><th>trials</th>'
        "<th>rounds</th><th>bc rounds</th><th>msgs/trial</th>"
        "<th>elements/trial</th><th>delivered</th></tr>"
    )
    for name in sorted(by_config):
        records = by_config[name]
        count = len(records)

        def mean(key: str) -> float:
            return sum(float(r.get(key, 0) or 0) for r in records) / count

        delivered = sum(1 for r in records if r.get("honest_delivered"))
        out.append(
            f'<tr><td class="label">{_esc(name)}</td><td>{count}</td>'
            f"<td>{mean('rounds'):.0f}</td>"
            f"<td>{mean('broadcast_rounds'):.0f}</td>"
            f"<td>{mean('private_messages'):.0f}</td>"
            f"<td>{mean('field_elements_sent'):.0f}</td>"
            f"<td>{delivered}/{count}</td></tr>"
        )
    out.append("</table>")
    return out


def _bench_section(history: Sequence[Mapping[str, Any]] | None) -> list[str]:
    out = ["<h2>BENCH trend lines</h2>"]
    if not history:
        out.append(
            '<p class="muted">no BENCH history supplied '
            "(--bench-history bench-history.jsonl; append snapshots with "
            "repro.obs.bench.append_history)</p>"
        )
        return out
    by_experiment: dict[str, list[Mapping[str, Any]]] = {}
    for snap in history:
        by_experiment.setdefault(str(snap.get("experiment", "?")), []).append(
            snap
        )
    for experiment in sorted(by_experiment):
        snaps = by_experiment[experiment]
        out.append(f"<h3>{_esc(experiment)} ({len(snaps)} snapshots)</h3>")
        metrics: dict[str, list[float]] = {}
        for snap in snaps:
            for key, value in snap.get("metrics", {}).items():
                if isinstance(value, (int, float)):
                    metrics.setdefault(str(key), []).append(float(value))
        out.append(
            '<table><tr><th class="label">metric</th><th>latest</th>'
            '<th class="label">trend</th></tr>'
        )
        for key in sorted(metrics):
            series = metrics[key]
            out.append(
                f'<tr><td class="label">{_esc(key)}</td>'
                f"<td>{series[-1]:g}</td>"
                f'<td class="label">{_sparkline(series)}</td></tr>'
            )
        out.append("</table>")
    return out


def _comm_section(comm: Mapping[str, Any] | None) -> list[str]:
    out = ["<h2>Communication heatmap</h2>"]
    if not comm:
        out.append(
            '<p class="muted">no trace supplied '
            "(--trace quickstart-trace.jsonl, schema v3)</p>"
        )
        return out
    links = comm.get("matrix", comm).get("links", [])
    if not links:
        out.append(
            '<p class="muted">trace carries no msg events '
            "(pre-v3 schema?)</p>"
        )
        return out
    parties = sorted(
        {link.get("sender") for link in links}
        | {
            link.get("receiver")
            for link in links
            if link.get("receiver") is not None
        }
    )
    index = {pid: i for i, pid in enumerate(parties)}
    grid = [[0] * (len(parties) + 1) for _ in parties]
    for link in links:
        sender = link.get("sender")
        receiver = link.get("receiver")
        if sender not in index:
            continue
        col = len(parties) if receiver is None else index.get(receiver)
        if col is None:
            continue
        grid[index[sender]][col] += int(link.get("elements", 0))
    peak = max((v for row in grid for v in row), default=0)
    out.append(
        "<p>field elements per directed link (rows send, columns "
        "receive; the last column is the broadcast channel)</p>"
    )
    header = "".join(f"<th>P{_esc(p)}</th>" for p in parties) + "<th>bcast</th>"
    out.append(f'<table><tr><th class="label">from \\ to</th>{header}</tr>')
    for pid, row in zip(parties, grid):
        cells = "".join(
            f'<td class="heat" style="background:{_heat_color(v, peak)}" '
            f'title="{v}">{v if v else ""}</td>'
            for v in row
        )
        out.append(f'<tr><td class="label">P{_esc(pid)}</td>{cells}</tr>')
    out.append("</table>")
    divergences = comm.get("divergences", []) + comm.get("consistency", [])
    if divergences:
        out.append('<p class="fail">comm divergences:</p><ul>')
        for problem in divergences:
            out.append(f"<li>{_esc(problem)}</li>")
        out.append("</ul>")
    elif "divergences" in comm:
        out.append(
            '<p class="ok">communication within every analytic bound</p>'
        )
    return out


def _timing_section(
    timing: Mapping[str, Any] | None,
    telemetry: Sequence[Mapping[str, Any]] | None,
) -> list[str]:
    out = ["<h2>Timing &amp; critical path</h2>"]
    if not timing or not timing.get("has_timing"):
        out.append(
            '<p class="muted">trace carries no virtual-time stamps '
            "(pre-v4 schema, or a run without a timing model)</p>"
        )
        return out
    makespan = float(timing.get("makespan_ms", 0.0))
    predicted = timing.get("predicted_makespan_ms")
    model = (timing.get("latency_model") or {}).get("model", "?")
    line = (
        f"<p>latency model <b>{_esc(model)}</b> — observed makespan "
        f"<b>{makespan:.3f} ms</b>"
    )
    if isinstance(predicted, (int, float)):
        delta = timing.get("makespan_delta")
        verdict = (
            '<span class="ok">within tolerance</span>'
            if timing.get("makespan_ok")
            else '<span class="fail">DIVERGED</span>'
        )
        shown = (
            f"{delta:+.1%}" if isinstance(delta, (int, float)) else "n/a"
        )
        line += (
            f", predicted {predicted:.3f} ms (delta {shown}): {verdict}"
        )
    out.append(line + "</p>")

    # Per-trial makespan sparkline from the telemetry store.
    if telemetry:
        series = [
            float(r["makespan_ms"])
            for r in telemetry
            if isinstance(r.get("makespan_ms"), (int, float))
        ]
        if series:
            out.append(
                f"<p>per-trial makespan ({len(series)} trials, latest "
                f"{series[-1]:.3f} ms): {_sparkline(series)}</p>"
            )

    # Straggler heatmap: phase rows x party columns, counting the
    # rounds each party closed (its delivery arrived last).
    rounds = timing.get("rounds", [])
    cells: dict[tuple[str, int], int] = {}
    parties: set[int] = set()
    phases: list[str] = []
    for window in rounds:
        straggler = window.get("straggler")
        if not isinstance(straggler, int):
            continue
        phase = str(window.get("phase") or "?")
        if phase not in phases:
            phases.append(phase)
        parties.add(straggler)
        cells[(phase, straggler)] = cells.get((phase, straggler), 0) + 1
    if cells:
        cols = sorted(parties)
        peak = max(cells.values())
        out.append(
            "<h3>straggler heatmap</h3><p>rounds closed by each party, "
            "per phase (the party the round waited on)</p>"
        )
        header = "".join(f"<th>P{_esc(p)}</th>" for p in cols)
        out.append(
            f'<table><tr><th class="label">phase \\ straggler</th>'
            f"{header}</tr>"
        )
        for phase in phases:
            row = "".join(
                f'<td class="heat" style="background:'
                f'{_heat_color(cells.get((phase, p), 0), peak)}" '
                f'title="{cells.get((phase, p), 0)}">'
                f'{cells.get((phase, p), 0) or ""}</td>'
                for p in cols
            )
            out.append(f'<tr><td class="label">{_esc(phase)}</td>{row}</tr>')
        out.append("</table>")

    path = timing.get("critical_path", [])
    if path:
        dominant = timing.get("dominant_party")
        out.append(
            f"<h3>critical path ({len(path)} hops, dominant party "
            f"P{_esc(dominant)})</h3>"
        )
        out.append(
            '<table><tr><th>round</th><th class="label">phase</th>'
            "<th>link</th><th>t_send</th><th>t_recv</th><th>delay</th></tr>"
        )
        for hop in path:
            receiver = hop.get("receiver")
            target = "bcast" if receiver is None else f"P{receiver}"
            out.append(
                f"<tr><td>{_esc(hop.get('round'))}</td>"
                f'<td class="label">{_esc(hop.get("phase"))}</td>'
                f"<td>P{_esc(hop.get('sender'))}&rarr;{_esc(target)}</td>"
                f"<td>{float(hop.get('t_send', 0.0)):.3f}</td>"
                f"<td>{float(hop.get('t_recv', 0.0)):.3f}</td>"
                f"<td>{float(hop.get('delay_ms', 0.0)):.3f}</td></tr>"
            )
        out.append("</table>")
    return out


# -- assembly ---------------------------------------------------------------

def render_dashboard(
    campaign: Mapping[str, Any] | None = None,
    telemetry: Sequence[Mapping[str, Any]] | None = None,
    bench_history: Sequence[Mapping[str, Any]] | None = None,
    comm: Mapping[str, Any] | None = None,
    timing: Mapping[str, Any] | None = None,
    title: str = "repro observability dashboard",
) -> str:
    """Assemble the self-contained HTML page from whatever is supplied.

    ``timing`` takes a :meth:`repro.obs.timing.TimingReport.to_dict`
    payload (typically derived from the same trace as ``comm``).
    """
    generated = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    parts.extend(_campaign_section(campaign))
    parts.extend(_comm_section(comm))
    parts.extend(_timing_section(timing, telemetry))
    parts.extend(_telemetry_section(telemetry))
    parts.extend(_bench_section(bench_history))
    parts.append(
        f"<footer>generated {generated} by python -m repro dashboard — "
        "fully self-contained (no external resources)</footer>"
    )
    parts.append("</body></html>")
    return "\n".join(parts)
