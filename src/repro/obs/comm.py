"""Communication observatory: per-link matrices and analytic conformance.

Schema v3 traces carry one ``msg`` event per delivery (sender,
receiver-or-broadcast, wire volume, Lamport stamp).  This module turns
that stream into the paper's communication-complexity artifacts:

- :class:`CommMatrix` — per-link and per-phase message/element
  aggregation (the heatmap the dashboard renders);
- :class:`CommReport` — observed communication diffed against the
  analytic prediction :func:`repro.core.trace.comm_bounds` embeds in
  the ``run_start`` event (``predicted_comm``), exactly as
  :class:`repro.obs.report.RunReport` diffs the round schedule.  The
  report dynamically verifies E2 (broadcast rounds only inside the VSS
  sharing phase, and exactly as many as predicted), checks every
  phase's wire volume against its bandwidth bound, and cross-checks
  the per-message stream against the per-round summaries (the two
  accountings must agree element-for-element).

Like the rest of :mod:`repro.obs`, nothing here imports the core
protocol layer: predictions travel inside the trace itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from .events import SCHEMA_VERSION, TraceEvent

#: Version of the comm-report JSON layout.
COMM_REPORT_VERSION = 1

#: Pseudo-receiver id for physical-channel broadcasts in link keys.
BROADCAST = -1


@dataclass
class LinkStats:
    """Traffic on one directed link (or one party's broadcast use)."""

    messages: int = 0
    elements: int = 0

    def add(self, elements: int) -> None:
        self.messages += 1
        self.elements += elements

    def to_dict(self) -> dict[str, int]:
        return {"messages": self.messages, "elements": self.elements}


@dataclass
class CommMatrix:
    """Per-link / per-phase aggregation of a run's ``msg`` events.

    ``links`` maps ``(sender, receiver)`` to :class:`LinkStats`;
    broadcasts use ``receiver = BROADCAST`` (their ``elements`` already
    include the fan-out, so summing a phase's links reproduces the wire
    total exactly).  ``phases`` nests the same aggregation per phase
    label, preserving first-observation order.
    """

    links: dict[tuple[int, int], LinkStats] = field(default_factory=dict)
    phases: dict[str, dict[tuple[int, int], LinkStats]] = field(
        default_factory=dict
    )
    message_count: int = 0

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "CommMatrix":
        matrix = cls()
        for ev in events:
            if ev.kind != "msg":
                continue
            matrix.record(
                sender=int(ev.attrs.get("sender", -1)),
                receiver=ev.attrs.get("receiver"),
                elements=int(ev.attrs.get("elements", 0)),
                phase=ev.phase,
            )
        return matrix

    def record(
        self,
        sender: int,
        receiver: int | None,
        elements: int,
        phase: str | None,
    ) -> None:
        key = (sender, BROADCAST if receiver is None else receiver)
        stats = self.links.get(key)
        if stats is None:
            stats = self.links[key] = LinkStats()
        stats.add(elements)
        bucket = self.phases.setdefault(
            phase if phase is not None else "(no span)", {}
        )
        pstats = bucket.get(key)
        if pstats is None:
            pstats = bucket[key] = LinkStats()
        pstats.add(elements)
        self.message_count += 1

    # -- views -------------------------------------------------------------
    @property
    def parties(self) -> list[int]:
        """Every party id appearing as a sender or explicit receiver."""
        ids = set()
        for sender, receiver in self.links:
            ids.add(sender)
            if receiver != BROADCAST:
                ids.add(receiver)
        return sorted(ids)

    def sent_by(self, pid: int) -> LinkStats:
        """Total traffic (incl. broadcast volume) originated by ``pid``."""
        total = LinkStats()
        for (sender, _), stats in self.links.items():
            if sender == pid:
                total.messages += stats.messages
                total.elements += stats.elements
        return total

    def phase_totals(self) -> dict[str, LinkStats]:
        """Wire totals per phase, in first-observation order."""
        out: dict[str, LinkStats] = {}
        for phase, bucket in self.phases.items():
            total = out[phase] = LinkStats()
            for stats in bucket.values():
                total.messages += stats.messages
                total.elements += stats.elements
        return out

    def heatmap(
        self, metric: str = "elements"
    ) -> tuple[list[int], list[list[int]]]:
        """Dense sender x receiver matrix for rendering.

        Returns ``(parties, rows)`` with one extra trailing column for
        the broadcast channel.  ``metric`` is ``"elements"`` or
        ``"messages"``.
        """
        parties = self.parties
        index = {pid: i for i, pid in enumerate(parties)}
        rows = [[0] * (len(parties) + 1) for _ in parties]
        for (sender, receiver), stats in self.links.items():
            value = getattr(stats, metric)
            col = len(parties) if receiver == BROADCAST else index[receiver]
            rows[index[sender]][col] += value
        return parties, rows

    def to_dict(self) -> dict[str, Any]:
        return {
            "message_count": self.message_count,
            "links": [
                {
                    "sender": sender,
                    "receiver": None if receiver == BROADCAST else receiver,
                    **stats.to_dict(),
                }
                for (sender, receiver), stats in sorted(self.links.items())
            ],
            "phases": {
                phase: [
                    {
                        "sender": sender,
                        "receiver": None
                        if receiver == BROADCAST
                        else receiver,
                        **stats.to_dict(),
                    }
                    for (sender, receiver), stats in sorted(bucket.items())
                ]
                for phase, bucket in self.phases.items()
            },
        }


@dataclass
class _PhaseComm:
    """Observed per-phase communication, from the round summaries."""

    phase: str
    rounds: int = 0
    broadcast_rounds: int = 0
    messages: int = 0
    elements: int = 0


@dataclass
class CommReport:
    """Observed communication vs the analytic ``predicted_comm`` bounds."""

    matrix: CommMatrix
    observed_phases: list[_PhaseComm]
    meta: dict = field(default_factory=dict)
    predicted: dict = field(default_factory=dict)
    divergences: list[str] = field(default_factory=list)
    consistency: list[str] = field(default_factory=list)

    @classmethod
    def from_events(cls, events: Sequence[TraceEvent]) -> "CommReport":
        matrix = CommMatrix.from_events(events)
        meta: dict = {}
        phases: dict[str, _PhaseComm] = {}
        round_totals: dict[int, tuple[int, int]] = {}  # round -> (msgs, elems)
        msg_totals: dict[int, tuple[int, int]] = {}
        for ev in events:
            if ev.kind == "run_start":
                meta = dict(ev.attrs)
            elif ev.kind == "round":
                name = ev.phase if ev.phase is not None else "(no span)"
                pc = phases.get(name)
                if pc is None:
                    pc = phases[name] = _PhaseComm(phase=name)
                pc.rounds += 1
                if ev.attrs.get("broadcasters"):
                    pc.broadcast_rounds += 1
                pc.messages += ev.attrs.get("messages", 0)
                pc.elements += ev.attrs.get("elements", 0)
                if ev.round_index is not None:
                    round_totals[ev.round_index] = (
                        ev.attrs.get("messages", 0),
                        ev.attrs.get("elements", 0),
                    )
            elif ev.kind == "msg":
                if ev.round_index is None:
                    continue
                msgs, elems = msg_totals.get(ev.round_index, (0, 0))
                private = 1 if ev.attrs.get("receiver") is not None else 0
                msg_totals[ev.round_index] = (
                    msgs + private,
                    elems + int(ev.attrs.get("elements", 0)),
                )
        report = cls(
            matrix=matrix,
            observed_phases=list(phases.values()),
            meta=meta,
            predicted=dict(meta.get("predicted_comm", {})),
        )
        report.divergences = report._diff(events)
        report.consistency = report._cross_check(round_totals, msg_totals)
        return report

    # -- checks ------------------------------------------------------------
    @property
    def observed_broadcast_rounds(self) -> int:
        return sum(pc.broadcast_rounds for pc in self.observed_phases)

    def _diff(self, events: Sequence[TraceEvent]) -> list[str]:
        problems: list[str] = []
        if not self.predicted:
            return problems
        # E2, dynamically: exactly the predicted number of broadcast
        # rounds, and every one of them inside a phase the schedule
        # marks as broadcast-using (the VSS sharing phase).
        predicted_bc = self.predicted.get("broadcast_rounds")
        observed_bc = self.observed_broadcast_rounds
        if predicted_bc is not None and observed_bc != predicted_bc:
            problems.append(
                f"E2: observed {observed_bc} broadcast rounds, the VSS "
                f"profile predicts exactly {predicted_bc}"
            )
        allowed = {
            entry.get("phase")
            for entry in self.meta.get("predicted_schedule", [])
            if entry.get("uses_broadcast")
        }
        if allowed:
            for pc in self.observed_phases:
                if pc.broadcast_rounds and pc.phase not in allowed:
                    problems.append(
                        f"E2: phase {pc.phase!r} used the broadcast channel "
                        f"({pc.broadcast_rounds} round(s)); only "
                        f"{sorted(allowed)} may"
                    )
        # Per-phase bandwidth against the analytic bound.
        bounds = {
            entry.get("phase"): entry
            for entry in self.predicted.get("phases", [])
        }
        for pc in self.observed_phases:
            bound = bounds.get(pc.phase)
            if bound is None:
                if pc.elements or pc.messages:
                    problems.append(
                        f"phase {pc.phase!r} carried traffic "
                        f"({pc.elements} elements) but has no predicted "
                        "bandwidth bound"
                    )
                continue
            max_elements = bound.get("max_elements")
            if max_elements is not None and pc.elements > max_elements:
                problems.append(
                    f"phase {pc.phase!r}: {pc.elements} elements on the "
                    f"wire exceed the analytic bound {max_elements}"
                )
            max_messages = bound.get("max_messages")
            if max_messages is not None and pc.messages > max_messages:
                problems.append(
                    f"phase {pc.phase!r}: {pc.messages} private messages "
                    f"exceed the analytic bound {max_messages}"
                )
        return problems

    def _cross_check(
        self,
        round_totals: Mapping[int, tuple[int, int]],
        msg_totals: Mapping[int, tuple[int, int]],
    ) -> list[str]:
        """Per-message stream vs per-round summaries, element-for-element.

        Only meaningful when the trace carries ``msg`` events at all
        (legacy v1/v2 traces have none and skip this check).
        """
        problems: list[str] = []
        if not msg_totals:
            return problems
        for round_index, (messages, elements) in sorted(round_totals.items()):
            msgs, elems = msg_totals.get(round_index, (0, 0))
            if msgs != messages:
                problems.append(
                    f"round {round_index}: {msgs} msg events but the round "
                    f"summary counts {messages} private messages"
                )
            if elems != elements:
                problems.append(
                    f"round {round_index}: msg events sum to {elems} "
                    f"elements but the round summary counts {elements}"
                )
        for round_index in sorted(set(msg_totals) - set(round_totals)):
            problems.append(
                f"round {round_index}: msg events without a round summary"
            )
        return problems

    @property
    def matches_prediction(self) -> bool:
        """True when every comm check (bounds + consistency) passed."""
        return not self.divergences and not self.consistency

    # -- rendering ---------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        bounds = {
            entry.get("phase"): entry
            for entry in self.predicted.get("phases", [])
        }
        return {
            "version": COMM_REPORT_VERSION,
            "schema_version": self.meta.get("schema_version", SCHEMA_VERSION),
            "totals": {
                "messages_traced": self.matrix.message_count,
                "observed_broadcast_rounds": self.observed_broadcast_rounds,
                "predicted_broadcast_rounds": self.predicted.get(
                    "broadcast_rounds"
                ),
                "matches_prediction": self.matches_prediction,
            },
            "phases": [
                {
                    "phase": pc.phase,
                    "rounds": pc.rounds,
                    "broadcast_rounds": pc.broadcast_rounds,
                    "messages": pc.messages,
                    "elements": pc.elements,
                    "max_elements": bounds.get(pc.phase, {}).get(
                        "max_elements"
                    ),
                    "max_messages": bounds.get(pc.phase, {}).get(
                        "max_messages"
                    ),
                }
                for pc in self.observed_phases
            ],
            "matrix": self.matrix.to_dict(),
            "divergences": list(self.divergences),
            "consistency": list(self.consistency),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        """Human-readable comm report: bounds table + link hot spots."""
        meta = self.meta
        lines = ["AnonChan communication report"]
        if meta:
            lines[0] += (
                f" — n={meta.get('n')}, t={meta.get('t')}, "
                f"vss={meta.get('vss')}, seed={meta.get('seed')}"
            )
        lines.append(
            f"broadcast rounds: {self.observed_broadcast_rounds} observed, "
            f"{self.predicted.get('broadcast_rounds')} predicted (E2)"
        )
        lines.append(
            f"per-message stream: {self.matrix.message_count} msg events"
        )
        lines.append("")
        bounds = {
            entry.get("phase"): entry
            for entry in self.predicted.get("phases", [])
        }
        headers = ["phase", "msgs", "elements", "bound", "verdict"]
        rows = []
        for pc in self.observed_phases:
            bound = bounds.get(pc.phase, {})
            max_elements = bound.get("max_elements")
            if max_elements is None:
                verdict = "unbounded" if pc.elements else "quiet"
            elif pc.elements <= max_elements:
                verdict = "ok"
            else:
                verdict = "EXCEEDS"
            rows.append(
                [
                    pc.phase,
                    str(pc.messages),
                    str(pc.elements),
                    str(max_elements) if max_elements is not None else "-",
                    verdict,
                ]
            )
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        hottest = sorted(
            self.matrix.links.items(),
            key=lambda item: (-item[1].elements, item[0]),
        )[:8]
        if hottest:
            lines.append("")
            lines.append("hottest links (sender -> receiver, elements):")
            for (sender, receiver), stats in hottest:
                target = "broadcast" if receiver == BROADCAST else f"P{receiver}"
                lines.append(
                    f"  P{sender} -> {target:<10} {stats.elements:>10} "
                    f"({stats.messages} msgs)"
                )
        problems = list(self.divergences) + list(self.consistency)
        if problems:
            lines.append("")
            lines.append("COMM DIVERGENCES:")
            for problem in problems:
                lines.append(f"  - {problem}")
        else:
            lines.append("")
            lines.append(
                "observed communication is within every analytic bound "
                "and the two accountings agree."
            )
        return "\n".join(lines)
