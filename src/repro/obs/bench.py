"""Baseline/regression engine over the canonical ``BENCH_*.json`` format.

Every benchmark writes its result table through
:func:`benchmarks._common.report` as ``{version, experiment, title,
headers, rows, notes, extra?}``.  This module turns those artifacts into
a perf-regression gate: load a *current* payload and a *committed
baseline*, extract the numeric metrics, compute per-metric relative
deltas with direction-aware semantics, render a trend table, and report
whether anything regressed beyond a configurable threshold.

Metric model
------------
A metric is one numeric cell, identified as ``"{row[0]}/{header}"`` —
the first column labels the row (a parameter point such as ``n`` or a
case name), the header labels the quantity.  Only ``int``/``float``
cells count (``bool`` and formatted strings like ``"1,296"`` are
informational).  Direction comes from the header, by whole-token match:

- tokens ``ms``, ``ns``, ``us``, ``s``, ``time``, ``wall``, ``seconds``
  → lower is better;
- tokens ``speedup``, ``throughput``, ``ops`` → higher is better;
- anything else → informational: tracked and shown, never a regression
  (parameter columns like ``n`` or ``kappa`` land here).

``python -m repro bench-check`` is the CLI front end; CI runs it
warn-only against the committed baselines after refreshing benchmarks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

#: Relative slowdown tolerated before a metric counts as regressed.
DEFAULT_THRESHOLD = 0.20

_LOWER_BETTER_TOKENS = frozenset(
    {"ms", "ns", "us", "s", "sec", "secs", "seconds", "time", "wall"}
)
_HIGHER_BETTER_TOKENS = frozenset(
    {"speedup", "throughput", "ops", "rate"}
)

_TOKEN_SEPARATORS = str.maketrans({c: " " for c in "()[]{}/,:×x·"})


def metric_direction(header: str) -> str | None:
    """``"lower"``, ``"higher"``, or ``None`` (informational).

    Matching is by whole token so ``"ms"`` does not fire inside
    ``"items"`` — ``"share ms (scalar)"`` → lower-better, ``"speedup"``
    → higher-better, ``"n"`` → informational.
    """
    tokens = {
        tok for tok in header.lower().translate(_TOKEN_SEPARATORS).split()
    }
    if tokens & _LOWER_BETTER_TOKENS:
        return "lower"
    if tokens & _HIGHER_BETTER_TOKENS:
        return "higher"
    return None


def iter_metrics(payload: Mapping[str, Any]) -> dict[str, float]:
    """The numeric metrics of one BENCH payload, keyed ``row0/header``.

    Non-numeric cells (formatted strings, bools) are skipped; duplicate
    row labels keep the first occurrence (stable against accidental
    collisions).
    """
    headers = payload.get("headers", [])
    metrics: dict[str, float] = {}
    for row in payload.get("rows", []):
        if not row:
            continue
        row_label = str(row[0])
        for header, cell in zip(headers[1:], row[1:]):
            if isinstance(cell, bool) or not isinstance(cell, (int, float)):
                continue
            key = f"{row_label}/{header}"
            if key not in metrics:
                metrics[key] = float(cell)
    return metrics


@dataclass(frozen=True)
class MetricDelta:
    """Baseline-vs-current comparison of one metric."""

    metric: str
    baseline: float
    current: float
    direction: str | None  # "lower" | "higher" | None (informational)

    @property
    def rel_delta(self) -> float:
        """(current - baseline) / |baseline|; ±inf when baseline is 0."""
        if self.baseline == 0:
            if self.current == 0:
                return 0.0
            return float("inf") if self.current > 0 else float("-inf")
        return (self.current - self.baseline) / abs(self.baseline)

    def regressed(self, threshold: float = DEFAULT_THRESHOLD) -> bool:
        """True when the metric moved the *bad* way past the threshold."""
        if self.direction == "lower":
            return self.rel_delta > threshold
        if self.direction == "higher":
            return self.rel_delta < -threshold
        return False

    def improved(self, threshold: float = DEFAULT_THRESHOLD) -> bool:
        """True when the metric moved the *good* way past the threshold."""
        if self.direction == "lower":
            return self.rel_delta < -threshold
        if self.direction == "higher":
            return self.rel_delta > threshold
        return False


@dataclass
class BenchComparison:
    """All metric deltas of one experiment, plus schema drift."""

    experiment: str
    deltas: list[MetricDelta] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD
    missing: list[str] = field(default_factory=list)  # in baseline only
    added: list[str] = field(default_factory=list)  # in current only

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed(self.threshold)]

    @property
    def improvements(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.improved(self.threshold)]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render_table(self) -> str:
        """Human-readable trend/delta table for one experiment."""
        lines = [
            f"{self.experiment}: {len(self.deltas)} metrics vs baseline "
            f"(threshold ±{self.threshold:.0%})"
        ]
        headers = ["metric", "baseline", "current", "delta", "verdict"]
        rows = []
        for d in sorted(self.deltas, key=lambda d: d.metric):
            if d.regressed(self.threshold):
                verdict = "REGRESSED"
            elif d.improved(self.threshold):
                verdict = "improved"
            elif d.direction is None:
                verdict = "info"
            else:
                verdict = "ok"
            rows.append(
                [
                    d.metric,
                    f"{d.baseline:g}",
                    f"{d.current:g}",
                    f"{d.rel_delta:+.1%}" if abs(d.rel_delta) != float("inf")
                    else "new-from-zero",
                    verdict,
                ]
            )
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for key in self.missing:
            lines.append(f"  missing from current run: {key}")
        for key in self.added:
            lines.append(f"  new metric (no baseline): {key}")
        return "\n".join(lines)


def load_bench(path: str | Path) -> dict[str, Any]:
    """Load and shape-check one ``BENCH_*.json`` payload."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: BENCH payload is not a JSON object")
    for key in ("experiment", "headers", "rows"):
        if key not in payload:
            raise ValueError(f"{path}: BENCH payload missing {key!r}")
    return payload


def compare_payloads(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """Compare two payloads of the *same* experiment.

    Raises :class:`ValueError` on an experiment-name mismatch (comparing
    unrelated benchmarks is always a bug, never a regression).
    """
    base_exp = baseline.get("experiment")
    cur_exp = current.get("experiment")
    if base_exp != cur_exp:
        raise ValueError(
            f"experiment mismatch: baseline {base_exp!r} vs current {cur_exp!r}"
        )
    base_metrics = iter_metrics(baseline)
    cur_metrics = iter_metrics(current)
    directions = {
        f"{row[0]}/{header}": metric_direction(header)
        for row in current.get("rows", [])
        if row
        for header in current.get("headers", [])[1:]
    }
    deltas = [
        MetricDelta(
            metric=key,
            baseline=base_metrics[key],
            current=cur_metrics[key],
            direction=directions.get(key, metric_direction(key.rsplit("/", 1)[-1])),
        )
        for key in sorted(base_metrics)
        if key in cur_metrics
    ]
    return BenchComparison(
        experiment=str(cur_exp),
        deltas=deltas,
        threshold=threshold,
        missing=sorted(set(base_metrics) - set(cur_metrics)),
        added=sorted(set(cur_metrics) - set(base_metrics)),
    )


def compare_files(
    baseline_path: str | Path,
    current_path: str | Path,
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """:func:`compare_payloads` over two files on disk."""
    return compare_payloads(
        load_bench(baseline_path), load_bench(current_path), threshold
    )


# -- history (the dashboard's trend lines) ----------------------------------

def append_history(
    path: str | Path,
    payloads: "list[Mapping[str, Any]] | Mapping[str, Any]",
    stamp: str | None = None,
) -> int:
    """Append one history snapshot per BENCH payload to a JSONL store.

    Each line is ``{"stamp", "experiment", "metrics"}`` — the flattened
    numeric metrics of one experiment at one point in time.  The
    dashboard reads the store back via :func:`load_history` and renders
    per-metric trend lines.  Returns the number of lines written.
    """
    if isinstance(payloads, Mapping):
        payloads = [payloads]
    import time as _time

    if stamp is None:
        stamp = _time.strftime("%Y-%m-%dT%H:%M:%SZ", _time.gmtime())
    count = 0
    with open(path, "a", encoding="utf-8") as fh:
        for payload in payloads:
            fh.write(
                json.dumps(
                    {
                        "stamp": stamp,
                        "experiment": payload.get("experiment"),
                        "metrics": iter_metrics(payload),
                    },
                    sort_keys=True,
                )
            )
            fh.write("\n")
            count += 1
    return count


def load_history(path: str | Path) -> list[dict[str, Any]]:
    """Read a history store written by :func:`append_history`.

    Malformed lines are skipped (a shared store appended by many CI
    runs must tolerate a torn write) — order is preserved.
    """
    snapshots: list[dict[str, Any]] = []
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError:
        return snapshots
    with fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(data, dict) and "metrics" in data:
                snapshots.append(data)
    return snapshots
