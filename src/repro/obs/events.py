"""Structured trace events and the event-payload secrecy policy.

One protocol execution traced by :class:`repro.obs.Tracer` produces an
ordered stream of :class:`TraceEvent` records.  Events carry *only*
public observables — round indices, phase names, party ids, message
counts, field-element volumes, and monotonic timings.  Shares, pads,
permutations, messages, and any other secret material must never enter
an event payload: :func:`ensure_public_attrs` rejects every value that
is not a plain JSON scalar/container at emission time, and lint rule
RL004 additionally flags secret-looking identifiers flowing into the
emission API statically (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

#: Trace format version, embedded in every ``run_start`` event.
#: v2 adds ``prof`` events (op-profiler counter records, see
#: :mod:`repro.obs.profiler`); v3 adds per-message ``msg`` events
#: (sender, receiver-or-broadcast, element volume, Lamport stamp — see
#: :mod:`repro.obs.comm`); v4 adds virtual-time stamps (``t_send`` /
#: ``t_recv`` on msg events, ``t_start``/``t_end`` on round events,
#: ``t_virtual`` on span events, plus the ``timing-model`` note — see
#: :mod:`repro.obs.timing`).  Older traces remain readable and valid;
#: newer-version fields are *rejected* in streams declaring an older
#: version (``msg`` events need v3+, timing fields need v4).
SCHEMA_VERSION = 4

#: Versions :func:`repro.obs.export.validate_events` accepts on read.
SUPPORTED_SCHEMA_VERSIONS = frozenset({1, 2, 3, 4})

#: v4 virtual-time attribute names, by event kind.  Used by the
#: validator (forbidden below v4) and by
#: :func:`repro.obs.export.without_timing_fields` (the v4 -> v3
#: downgrade used to compare against pre-timing baselines).
TIMING_ATTRS: Mapping[str, frozenset[str]] = {
    "msg": frozenset({"t_send", "t_recv"}),
    "round": frozenset({"t_start", "t_end", "t_wall_ms"}),
    "span_start": frozenset({"t_virtual"}),
    "span_end": frozenset({"t_virtual"}),
    "run_end": frozenset({"makespan_ms"}),
}

#: The closed set of event kinds a tracer emits.
EVENT_KINDS = frozenset(
    {
        "run_start",
        "span_start",
        "span_end",
        "round",
        "msg",
        "note",
        "prof",
        "run_end",
    }
)

_PUBLIC_SCALARS = (bool, int, float, str, type(None))


class SecrecyViolation(TypeError):
    """A trace-event attribute carried a non-public value."""


def _check_public(value: Any, path: str) -> None:
    if isinstance(value, _PUBLIC_SCALARS):
        return
    if isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            _check_public(item, f"{path}[{i}]")
        return
    if isinstance(value, Mapping):
        for key, item in value.items():
            if not isinstance(key, str):
                raise SecrecyViolation(
                    f"trace attribute {path} has non-string key {key!r}; "
                    "key ids by str(...) so events stay JSON-stable"
                )
            _check_public(item, f"{path}.{key}")
        return
    raise SecrecyViolation(
        f"trace attribute {path} is {type(value).__name__}, not a public "
        "scalar/list/dict; event payloads may carry only sizes, counts, "
        "ids, and timings — never protocol values"
    )


def ensure_public_attrs(attrs: Mapping[str, Any]) -> dict[str, Any]:
    """Validate and copy an attribute mapping for inclusion in an event.

    Raises :class:`SecrecyViolation` for anything that is not built from
    JSON scalars, lists/tuples, and string-keyed mappings.  Field
    elements, share views, dart vectors, and similar protocol objects
    all fail this check by construction.
    """
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        _check_public(value, key)
        out[key] = value
    return out


@dataclass(frozen=True)
class TraceEvent:
    """One record of the trace stream.

    Attributes
    ----------
    seq:
        Position in the stream (0-based, dense, strictly increasing).
    kind:
        One of :data:`EVENT_KINDS`.
    name:
        Span name / annotation label / ``"round"`` / ``"run"``.
    round_index:
        The synchronous round the event belongs to: for ``round`` events
        the completed round, for span/note events the next round to
        execute, ``None`` when no round context applies.
    phase:
        Innermost open span name at emission time (``None`` outside any
        span).  ``round`` events use this for phase attribution.
    depth:
        Span-nesting depth at emission time.
    t_ns:
        Monotonic timestamp (``time.perf_counter_ns`` by default).  The
        only non-deterministic field; comparisons and determinism tests
        strip it via :func:`repro.obs.export.without_timings`.
    attrs:
        Public observables only (see :func:`ensure_public_attrs`).
    """

    seq: int
    kind: str
    name: str
    round_index: int | None
    phase: str | None
    depth: int
    t_ns: int
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form, stable for JSONL export."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "name": self.name,
            "round": self.round_index,
            "phase": self.phase,
            "depth": self.depth,
            "t_ns": self.t_ns,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TraceEvent":
        """Inverse of :meth:`to_dict` (used by the JSONL reader)."""
        return cls(
            seq=data["seq"],
            kind=data["kind"],
            name=data["name"],
            round_index=data["round"],
            phase=data["phase"],
            depth=data["depth"],
            t_ns=data["t_ns"],
            attrs=dict(data.get("attrs", {})),
        )
