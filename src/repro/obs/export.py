"""JSONL export, import, and schema validation for trace streams.

One event per line, keys sorted, so traces diff cleanly and the
determinism tests can compare byte-for-byte after
:func:`without_timings`.  :func:`validate_events` is the schema check CI
runs against every uploaded trace artifact — it is deliberately
dependency-free (no jsonschema) and reports *all* violations instead of
stopping at the first.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from .events import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    TIMING_ATTRS,
    TraceEvent,
)

#: Keys every event dict must carry, with their accepted types.
_REQUIRED_FIELDS: dict[str, tuple[type, ...]] = {
    "seq": (int,),
    "kind": (str,),
    "name": (str,),
    "round": (int, type(None)),
    "phase": (str, type(None)),
    "depth": (int,),
    "t_ns": (int,),
    "attrs": (dict,),
}

#: Attrs every ``round`` event must carry.
_ROUND_ATTRS: dict[str, tuple[type, ...]] = {
    "broadcasters": (list,),
    "messages": (int,),
    "elements": (int,),
}

#: Attrs every ``prof`` event (schema v2 op-counter record) must carry.
_PROF_ATTRS: dict[str, tuple[type, ...]] = {
    "component": (str,),
    "op": (str,),
    "count": (int,),
}

#: Attrs every ``msg`` event (schema v3 per-message record) must carry.
#: ``receiver`` is ``None`` for a physical-channel broadcast.
_MSG_ATTRS: dict[str, tuple[type, ...]] = {
    "sender": (int,),
    "receiver": (int, type(None)),
    "elements": (int,),
    "lamport": (int,),
}


def write_jsonl(events: Iterable[TraceEvent], path: str | Path) -> int:
    """Write a trace stream to ``path``; returns the event count."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for ev in events:
            fh.write(json.dumps(ev.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Read a trace stream written by :func:`write_jsonl`."""
    events: list[TraceEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON: {exc}") from exc
            events.append(TraceEvent.from_dict(data))
    return events


def without_timings(event: dict[str, Any]) -> dict[str, Any]:
    """The event dict minus its wall-clock field.

    Everything else in a trace is a deterministic function of seed and
    parameters; this is the canonical form the determinism tests and
    trace diffs compare.
    """
    return {key: value for key, value in event.items() if key != "t_ns"}


def canonical_lines(events: Iterable[TraceEvent]) -> list[str]:
    """Deterministic JSONL lines (timestamps stripped, keys sorted)."""
    return [
        json.dumps(without_timings(ev.to_dict()), sort_keys=True)
        for ev in events
    ]


def without_timing_fields(
    events: Sequence[TraceEvent],
) -> list[TraceEvent]:
    """Downgrade a v4 stream to its v3 shadow (virtual time removed).

    Strips every v4 timing attribute (:data:`~repro.obs.events.
    TIMING_ATTRS`), drops the ``timing-model`` note, renumbers ``seq``
    so the stream stays dense, and caps the declared ``schema_version``
    at 3.  The result of a lockstep run is byte-identical (canonically)
    to the same run traced before the timing layer existed — the
    backward-compatibility guarantee the baseline test enforces.
    """
    out: list[TraceEvent] = []
    for ev in events:
        if ev.kind == "note" and ev.name == "timing-model":
            continue
        attrs = ev.attrs
        stripped = TIMING_ATTRS.get(ev.kind)
        if stripped and any(key in attrs for key in stripped):
            attrs = {k: v for k, v in attrs.items() if k not in stripped}
        if (
            ev.kind == "run_start"
            and isinstance(attrs.get("schema_version"), int)
            and attrs["schema_version"] > 3
        ):
            attrs = {**attrs, "schema_version": 3}
        out.append(
            TraceEvent(
                seq=len(out),
                kind=ev.kind,
                name=ev.name,
                round_index=ev.round_index,
                phase=ev.phase,
                depth=ev.depth,
                t_ns=ev.t_ns,
                attrs=attrs,
            )
        )
    return out


def validate_events(events: Sequence[TraceEvent]) -> list[str]:
    """Schema-check a trace stream; returns human-readable violations.

    Checks performed:

    - field presence and types on every event;
    - ``kind`` drawn from the closed kind set;
    - ``seq`` dense and strictly increasing from 0;
    - ``round`` events carry broadcaster/message/element attrs and
      strictly increasing round indices;
    - ``prof`` events carry component/op/count attrs with a
      non-negative count (schema v2; a v1 trace simply has none);
    - ``msg`` events carry sender/receiver/elements/lamport attrs with
      non-negative volumes and stamps, and are *rejected* in streams
      whose ``run_start`` declares schema v1/v2 (those versions predate
      per-message tracing);
    - v4 timing attributes (``t_send``/``t_recv`` on msg, ``t_start``/
      ``t_end``/``t_wall_ms`` on round, ``t_virtual`` on spans, and the
      ``timing-model`` note) are numeric when present and *rejected* in
      streams declaring schema < 4 (timing fields are optional on v4
      streams — a timestamp-free v4 trace is valid);
    - ``run_start``'s ``schema_version`` (when present) is a supported
      version — v1 (legacy, no prof events), v2 (prof), v3 (msg), or
      v4 (virtual time);
    - span_start/span_end properly nested (LIFO) and balanced;
    - at most one ``run_start`` (first event) and one ``run_end`` (last).
    """
    errors: list[str] = []
    span_stack: list[str] = []
    last_round = -1
    # Headless streams (no run_start, e.g. hand-built test fixtures)
    # are treated as the current version; a run_start without a
    # schema_version attr is a legacy v1 trace.
    declared = SCHEMA_VERSION
    if events and events[0].kind == "run_start":
        declared = events[0].attrs.get("schema_version", 1)
    for position, ev in enumerate(events):
        data = ev.to_dict()
        where = f"event {position}"
        for key, types in _REQUIRED_FIELDS.items():
            if not isinstance(data.get(key), types):
                errors.append(
                    f"{where}: field {key!r} missing or not "
                    f"{'/'.join(t.__name__ for t in types)}"
                )
        if ev.kind not in EVENT_KINDS:
            errors.append(f"{where}: unknown kind {ev.kind!r}")
            continue
        if ev.seq != position:
            errors.append(f"{where}: seq {ev.seq} != position {position}")
        if ev.kind == "run_start":
            if position != 0:
                errors.append(f"{where}: run_start must be the first event")
            version = ev.attrs.get("schema_version")
            if version is not None and version not in SUPPORTED_SCHEMA_VERSIONS:
                errors.append(
                    f"{where}: unsupported schema_version {version!r} "
                    f"(supported: {sorted(SUPPORTED_SCHEMA_VERSIONS)})"
                )
        if ev.kind == "run_end" and position != len(events) - 1:
            errors.append(f"{where}: run_end must be the last event")
        timing_keys = TIMING_ATTRS.get(ev.kind, ())
        for key in sorted(timing_keys):
            if key not in ev.attrs:
                continue
            if isinstance(declared, int) and declared < 4:
                errors.append(
                    f"{where}: timing attr {key!r} requires "
                    f"schema_version >= 4 (stream declares {declared})"
                )
            value = ev.attrs[key]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                errors.append(
                    f"{where}: timing attr {key!r} is "
                    f"{type(value).__name__}, not a number"
                )
        if (
            ev.kind == "note"
            and ev.name == "timing-model"
            and isinstance(declared, int)
            and declared < 4
        ):
            errors.append(
                f"{where}: timing-model note requires schema_version >= 4 "
                f"(stream declares {declared})"
            )
        if ev.kind == "span_start":
            span_stack.append(ev.name)
        elif ev.kind == "span_end":
            if not span_stack:
                errors.append(f"{where}: span_end {ev.name!r} without start")
            elif span_stack[-1] != ev.name:
                errors.append(
                    f"{where}: span_end {ev.name!r} closes "
                    f"{span_stack[-1]!r} (spans must nest)"
                )
                span_stack.pop()
            else:
                span_stack.pop()
        elif ev.kind == "round":
            if not isinstance(ev.round_index, int):
                errors.append(f"{where}: round event without round index")
            else:
                if ev.round_index != last_round + 1:
                    errors.append(
                        f"{where}: round index {ev.round_index} not "
                        f"consecutive after {last_round}"
                    )
                last_round = ev.round_index
            for key, types in _ROUND_ATTRS.items():
                if not isinstance(ev.attrs.get(key), types):
                    errors.append(
                        f"{where}: round attr {key!r} missing or not "
                        f"{'/'.join(t.__name__ for t in types)}"
                    )
        elif ev.kind == "prof":
            for key, types in _PROF_ATTRS.items():
                if not isinstance(ev.attrs.get(key), types):
                    errors.append(
                        f"{where}: prof attr {key!r} missing or not "
                        f"{'/'.join(t.__name__ for t in types)}"
                    )
            count = ev.attrs.get("count")
            if isinstance(count, int) and count < 0:
                errors.append(f"{where}: prof count {count} is negative")
        elif ev.kind == "msg":
            if isinstance(declared, int) and declared < 3:
                errors.append(
                    f"{where}: msg events require schema_version >= 3 "
                    f"(stream declares {declared})"
                )
            if not isinstance(ev.round_index, int):
                errors.append(f"{where}: msg event without round index")
            for key, types in _MSG_ATTRS.items():
                if not isinstance(ev.attrs.get(key), types):
                    errors.append(
                        f"{where}: msg attr {key!r} missing or not "
                        f"{'/'.join(t.__name__ for t in types)}"
                    )
            for key in ("elements", "lamport"):
                value = ev.attrs.get(key)
                if isinstance(value, int) and value < 0:
                    errors.append(f"{where}: msg {key} {value} is negative")
    for name in span_stack:
        errors.append(f"end of stream: span {name!r} never closed")
    return errors


def validate_file(path: str | Path) -> list[str]:
    """Read and schema-check one JSONL trace file."""
    try:
        events = read_jsonl(path)
    except (OSError, ValueError, KeyError, TypeError) as exc:
        return [str(exc)]
    if not events:
        return [f"{path}: empty trace"]
    return validate_events(events)
