"""Observability for protocol executions: spans, events, reports.

The subsystem turns one simulated execution into a structured,
machine-readable artifact:

- :class:`Tracer` — nestable spans + per-round structured events
  (:class:`TraceEvent`); :data:`NULL_TRACER` is the no-op fast path.
- :class:`RunMetrics` — per-phase / per-party aggregation;
  :meth:`RunMetrics.to_protocol_metrics` derives the legacy flat
  :class:`~repro.network.metrics.ProtocolMetrics` view.
- :mod:`repro.obs.export` — JSONL round-trip + schema validation.
- :class:`RunReport` — observed schedule vs the static
  :func:`repro.core.trace.round_schedule` prediction, with divergence
  flagging.
- :class:`TimingReport` — virtual-time analysis of a schema-v4 trace:
  makespan, per-link/per-phase latency, stragglers, the critical path
  over the delay-weighted happens-before DAG, and the analytic
  predicted-makespan diff (:mod:`repro.obs.timing`);
  :mod:`repro.obs.timeline` exports the same stream as a Chrome
  trace-event / Perfetto timeline.
- :mod:`repro.obs.profiler` — deterministic op counters for the compute
  layers (:class:`OpProfiler` / :data:`NULL_PROFILER`), with phase
  attribution via the active tracer and flamegraph export.
- :mod:`repro.obs.bench` — baseline/regression comparison over the
  canonical ``BENCH_*.json`` artifacts.

Event payloads carry only sizes, counts, ids, and timings — never
shares, pads, permutations, or messages.  The policy is enforced at
runtime by :func:`repro.obs.events.ensure_public_attrs` and statically
by lint rule RL004 (``docs/OBSERVABILITY.md`` documents both).
"""

from .anomaly import Anomaly, scan_events
from .bench import (
    BenchComparison,
    MetricDelta,
    append_history,
    compare_files,
    compare_payloads,
    load_bench,
    load_history,
)
from .comm import BROADCAST, CommMatrix, CommReport, LinkStats
from .dashboard import render_dashboard
from .events import (
    EVENT_KINDS,
    SCHEMA_VERSION,
    SUPPORTED_SCHEMA_VERSIONS,
    SecrecyViolation,
    TraceEvent,
    ensure_public_attrs,
)
from .export import (
    canonical_lines,
    read_jsonl,
    validate_events,
    validate_file,
    without_timing_fields,
    without_timings,
    write_jsonl,
)
from .metrics import PartyMetrics, PhaseMetrics, RunMetrics
from .profiler import (
    NULL_PROFILER,
    NullProfiler,
    OpProfiler,
    flamegraph_lines,
    get_profiler,
    profiled,
    records_from_events,
    set_profiler,
    write_flamegraph,
)
from .report import ObservedRound, RunReport
from .timeline import chrome_trace, write_chrome_trace
from .timing import (
    CriticalHop,
    LinkLatency,
    RoundWindow,
    TimingReport,
    histogram,
)
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "TraceEvent",
    "EVENT_KINDS",
    "SCHEMA_VERSION",
    "SUPPORTED_SCHEMA_VERSIONS",
    "SecrecyViolation",
    "ensure_public_attrs",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "RunMetrics",
    "PhaseMetrics",
    "PartyMetrics",
    "RunReport",
    "ObservedRound",
    "write_jsonl",
    "read_jsonl",
    "validate_events",
    "validate_file",
    "canonical_lines",
    "without_timings",
    "without_timing_fields",
    "OpProfiler",
    "NullProfiler",
    "NULL_PROFILER",
    "get_profiler",
    "set_profiler",
    "profiled",
    "flamegraph_lines",
    "write_flamegraph",
    "records_from_events",
    "MetricDelta",
    "BenchComparison",
    "load_bench",
    "compare_payloads",
    "compare_files",
    "append_history",
    "load_history",
    "CommMatrix",
    "CommReport",
    "LinkStats",
    "BROADCAST",
    "Anomaly",
    "scan_events",
    "render_dashboard",
    "TimingReport",
    "LinkLatency",
    "RoundWindow",
    "CriticalHop",
    "histogram",
    "chrome_trace",
    "write_chrome_trace",
]
