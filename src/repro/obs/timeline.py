"""Chrome-trace-event (Perfetto) export of a schema-v4 trace.

Converts one trace stream into the JSON object format consumed by
``chrome://tracing`` and https://ui.perfetto.dev: one track (thread)
per party, one complete-event slice per party-round spanning the
party's virtual send instant to the round's end, and flow events
(``s``/``f``) linking every private message from its sender's track to
its receiver's — the rendered arrows *are* the happens-before DAG the
critical path is extracted from.

Virtual milliseconds map to trace microseconds (the format's native
unit); a zero-model (lockstep-equivalent) trace exports a degenerate
but valid timeline where every slice sits at t=0.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Sequence

from .events import TraceEvent

#: Synthetic process id for the single simulated process.
_PID = 0


def _us(t_ms: float) -> float:
    """Virtual ms -> trace µs (the Chrome trace format's time unit)."""
    return t_ms * 1000.0


def chrome_trace(events: Sequence[TraceEvent]) -> dict[str, Any]:
    """Build the Chrome trace-event JSON object for one trace stream.

    Returns a dict with ``traceEvents`` (metadata + slices + flows)
    and ``displayTimeUnit``.  Traces without v4 timing stamps yield
    only the metadata events (nothing to place on a time axis).
    """
    trace: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro (virtual time)"},
        }
    ]
    parties: set[int] = set()
    # (round, sender) -> t_send, and per-round t_end for slice extents.
    sends: dict[tuple[int, int], float] = {}
    round_end: dict[int, float] = {}
    round_phase: dict[int, str | None] = {}
    messages: list[dict[str, Any]] = []
    for ev in events:
        if ev.kind == "msg":
            sender = ev.attrs.get("sender")
            receiver = ev.attrs.get("receiver")
            if isinstance(sender, int):
                parties.add(sender)
            if isinstance(receiver, int):
                parties.add(receiver)
            t_send = ev.attrs.get("t_send")
            t_recv = ev.attrs.get("t_recv")
            if (
                isinstance(sender, int)
                and isinstance(ev.round_index, int)
                and isinstance(t_send, (int, float))
            ):
                sends[(ev.round_index, sender)] = float(t_send)
                if isinstance(receiver, int) and isinstance(
                    t_recv, (int, float)
                ):
                    messages.append(
                        {
                            "round": ev.round_index,
                            "sender": sender,
                            "receiver": receiver,
                            "t_send": float(t_send),
                            "t_recv": float(t_recv),
                            "elements": ev.attrs.get("elements", 0),
                        }
                    )
        elif ev.kind == "round" and isinstance(ev.round_index, int):
            t_end = ev.attrs.get("t_end")
            if isinstance(t_end, (int, float)):
                round_end[ev.round_index] = float(t_end)
                round_phase[ev.round_index] = ev.phase

    for pid in sorted(parties):
        trace.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": pid,
                "args": {"name": f"party {pid}"},
            }
        )

    # One slice per (round, sender): the party's active window in that
    # round, from its virtual send instant to the round's close.
    for (round_index, sender), t_send in sorted(sends.items()):
        t_end = round_end.get(round_index, t_send)
        trace.append(
            {
                "name": round_phase.get(round_index) or f"round {round_index}",
                "cat": "round",
                "ph": "X",
                "pid": _PID,
                "tid": sender,
                "ts": _us(t_send),
                "dur": max(_us(t_end - t_send), 0.0),
                "args": {"round": round_index},
            }
        )

    # Flow arrows: one s/f pair per delivered private message.
    for flow_id, msg in enumerate(messages, start=1):
        common = {
            "name": "msg",
            "cat": "msg",
            "id": flow_id,
            "pid": _PID,
            "args": {
                "round": msg["round"],
                "sender": msg["sender"],
                "receiver": msg["receiver"],
                "elements": msg["elements"],
            },
        }
        trace.append(
            {
                **common,
                "ph": "s",
                "tid": msg["sender"],
                "ts": _us(msg["t_send"]),
            }
        )
        trace.append(
            {
                **common,
                "ph": "f",
                "bp": "e",
                "tid": msg["receiver"],
                "ts": _us(msg["t_recv"]),
            }
        )

    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: Sequence[TraceEvent], path: str | Path
) -> int:
    """Write the Perfetto-loadable JSON file; returns the event count."""
    payload = chrome_trace(events)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True)
        fh.write("\n")
    return len(payload["traceEvents"])
