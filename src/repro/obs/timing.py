"""Virtual-time analysis: makespan, stragglers, and the critical path.

Schema-v4 traces stamp every message with its virtual send/arrival
instants and every round with its virtual window (see
:mod:`repro.obs.events`).  :class:`TimingReport` turns one such stream
into the latency story of the run:

- the observed **makespan** (the last arrival's instant);
- per-link and per-phase **latency statistics** and histograms;
- the per-round **straggler** — the sender whose delivery closed the
  round;
- the **critical path**: the happens-before chain of messages that the
  makespan actually waited on, extracted by walking the arrival DAG
  backwards (each hop's sender was released by its own latest inbound
  arrival — Lamport edges weighted by delay);
- an **analytic predicted makespan** — the round schedule embedded in
  ``run_start`` crossed with the expected per-round duration of the
  latency model declared by the ``timing-model`` note — diffed
  E1-style against the observation.

Like every obs report, this module reads only the trace: predictions
and model parameters travel in the events, so it never imports the
core or network layers.  Legacy (pre-v4, timestamp-free) traces yield
a report with ``has_timing=False`` and no timing claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from .events import TraceEvent

#: Report format version, bumped on breaking changes to to_dict().
TIMING_REPORT_VERSION = 1

#: Default relative tolerance for the predicted-vs-observed makespan
#: verdict.  The prediction treats each round as an independent
#: max-of-k race from a common start, ignoring that virtual rounds
#: overlap per-party, so generous-but-bounded agreement is the claim.
DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class LinkLatency:
    """Latency summary of one directed link (or the broadcast medium)."""

    sender: int
    receiver: int | None
    count: int
    mean_ms: float
    min_ms: float
    max_ms: float


@dataclass(frozen=True)
class RoundWindow:
    """One round's virtual window and its closing delivery."""

    round_index: int
    phase: str | None
    t_start: float
    t_end: float
    #: t_end minus the previous round's t_end: the virtual time this
    #: round added to the run (t_end is monotone across rounds).
    duration_ms: float
    #: Sender of the arrival that closed the round (None when the
    #: round carried no timed messages).
    straggler: int | None
    messages: int


@dataclass(frozen=True)
class CriticalHop:
    """One message on the critical path (latest-arrival chain)."""

    round_index: int
    phase: str | None
    sender: int
    receiver: int | None
    t_send: float
    t_recv: float

    @property
    def delay_ms(self) -> float:
        return self.t_recv - self.t_send


def histogram(
    values: Sequence[float], buckets: int = 8
) -> list[tuple[float, float, int]]:
    """Fixed-width histogram as ``(lo, hi, count)`` triples.

    Degenerate inputs (empty, or all values equal) collapse to a
    single bucket so renderers never special-case them.
    """
    if not values:
        return []
    lo, hi = min(values), max(values)
    if hi <= lo:
        return [(lo, hi, len(values))]
    width = (hi - lo) / buckets
    counts = [0] * buckets
    for v in values:
        idx = min(int((v - lo) / width), buckets - 1)
        counts[idx] += 1
    return [
        (lo + i * width, lo + (i + 1) * width, counts[i])
        for i in range(buckets)
    ]


def _expected_round_ms(latency: Mapping[str, Any], messages: int) -> float:
    """Expected round duration under a described latency model.

    Mirrors ``LatencyModel.expected_round_ms`` from the parameters the
    ``timing-model`` note carries (the obs layer reads traces only, so
    the analytic form is recomputed here rather than imported).  A
    round ends on its slowest of ``messages`` concurrent deliveries:
    for ``uniform``, ``E[max of k U(base, base+jitter)] = base +
    jitter * k / (k + 1)``.
    """
    if messages <= 0:
        return 0.0
    model = latency.get("model")
    if model == "fixed":
        return float(latency.get("base_ms", 0.0))
    if model == "uniform":
        expected = float(latency.get("base_ms", 0.0))
        jitter = float(latency.get("jitter_ms", 0.0))
        if jitter > 0.0:
            expected += jitter * messages / (messages + 1)
        return expected
    return 0.0  # "zero" and unknown models predict no delay


@dataclass
class TimingReport:
    """Timing analysis of one schema-v4 trace (see module docstring)."""

    has_timing: bool
    makespan_ms: float = 0.0
    rounds: list[RoundWindow] = field(default_factory=list)
    links: list[LinkLatency] = field(default_factory=list)
    phase_durations: dict[str, float] = field(default_factory=dict)
    phase_delays: dict[str, list[float]] = field(default_factory=dict)
    critical_path: list[CriticalHop] = field(default_factory=list)
    #: Fraction of critical-path hops each sending party contributed.
    critical_share: dict[int, float] = field(default_factory=dict)
    #: Straggler count per party (rounds the party closed).
    straggler_counts: dict[int, int] = field(default_factory=dict)
    latency_model: dict[str, Any] | None = None
    compute_model: dict[str, Any] | None = None
    realtime: bool = False
    predicted_makespan_ms: float | None = None
    tolerance: float = DEFAULT_TOLERANCE

    # -- derived verdicts --------------------------------------------------
    @property
    def makespan_delta(self) -> float | None:
        """Relative predicted-vs-observed makespan error (None if n/a)."""
        if self.predicted_makespan_ms is None:
            return None
        if self.predicted_makespan_ms == 0.0:
            return 0.0 if self.makespan_ms == 0.0 else float("inf")
        return (
            self.makespan_ms - self.predicted_makespan_ms
        ) / self.predicted_makespan_ms

    @property
    def makespan_ok(self) -> bool:
        """Observed makespan within tolerance of the prediction."""
        delta = self.makespan_delta
        return delta is None or abs(delta) <= self.tolerance

    @property
    def dominant_party(self) -> int | None:
        """Party with the largest critical-path share (ties: lowest id)."""
        if not self.critical_share:
            return None
        return min(
            self.critical_share,
            key=lambda pid: (-self.critical_share[pid], pid),
        )

    @classmethod
    def from_events(
        cls,
        events: Sequence[TraceEvent],
        tolerance: float = DEFAULT_TOLERANCE,
    ) -> "TimingReport":
        run_attrs: Mapping[str, Any] = {}
        if events and events[0].kind == "run_start":
            run_attrs = events[0].attrs
        latency: dict[str, Any] | None = None
        compute: dict[str, Any] | None = None
        realtime = False
        for ev in events:
            if ev.kind == "note" and ev.name == "timing-model":
                latency = dict(ev.attrs.get("latency") or {})
                compute = dict(ev.attrs.get("compute") or {})
                realtime = bool(ev.attrs.get("realtime", False))
                break

        msgs: list[CriticalHop] = []
        for ev in events:
            if ev.kind != "msg":
                continue
            t_send = ev.attrs.get("t_send")
            t_recv = ev.attrs.get("t_recv")
            if t_send is None or t_recv is None:
                continue
            msgs.append(
                CriticalHop(
                    round_index=int(ev.round_index or 0),
                    phase=ev.phase,
                    sender=int(ev.attrs["sender"]),
                    receiver=ev.attrs.get("receiver"),
                    t_send=float(t_send),
                    t_recv=float(t_recv),
                )
            )

        rounds: list[RoundWindow] = []
        per_round_msgs: dict[int, list[CriticalHop]] = {}
        for hop in msgs:
            per_round_msgs.setdefault(hop.round_index, []).append(hop)
        prev_end = 0.0
        has_round_timing = False
        for ev in events:
            if ev.kind != "round":
                continue
            t_start = ev.attrs.get("t_start")
            t_end = ev.attrs.get("t_end")
            if t_start is None or t_end is None:
                continue
            has_round_timing = True
            index = int(ev.round_index or 0)
            hops = per_round_msgs.get(index, ())
            straggler = None
            if hops:
                last = max(hops, key=lambda h: (h.t_recv, -h.round_index))
                straggler = last.sender
            rounds.append(
                RoundWindow(
                    round_index=index,
                    phase=ev.phase,
                    t_start=float(t_start),
                    t_end=float(t_end),
                    duration_ms=float(t_end) - prev_end,
                    straggler=straggler,
                    messages=int(ev.attrs.get("messages", 0)),
                )
            )
            prev_end = float(t_end)

        if not has_round_timing and not msgs:
            return cls(has_timing=False, tolerance=tolerance)

        makespan = max(
            [r.t_end for r in rounds] + [h.t_recv for h in msgs],
            default=0.0,
        )

        # -- per-link stats and per-phase delay samples --------------------
        by_link: dict[tuple[int, int | None], list[float]] = {}
        phase_delays: dict[str, list[float]] = {}
        for hop in msgs:
            by_link.setdefault((hop.sender, hop.receiver), []).append(
                hop.delay_ms
            )
            if hop.receiver is not None:  # broadcasts carry no link delay
                phase_delays.setdefault(hop.phase or "?", []).append(
                    hop.delay_ms
                )
        links = [
            LinkLatency(
                sender=sender,
                receiver=receiver,
                count=len(delays),
                mean_ms=sum(delays) / len(delays),
                min_ms=min(delays),
                max_ms=max(delays),
            )
            for (sender, receiver), delays in sorted(
                by_link.items(),
                key=lambda item: (item[0][0], -1 if item[0][1] is None else item[0][1]),
            )
        ]

        phase_durations: dict[str, float] = {}
        for window in rounds:
            key = window.phase or "?"
            phase_durations[key] = (
                phase_durations.get(key, 0.0) + window.duration_ms
            )

        straggler_counts: dict[int, int] = {}
        for window in rounds:
            if window.straggler is not None:
                straggler_counts[window.straggler] = (
                    straggler_counts.get(window.straggler, 0) + 1
                )

        critical_path = _critical_path(msgs)
        share: dict[int, float] = {}
        if critical_path:
            for hop in critical_path:
                share[hop.sender] = share.get(hop.sender, 0.0) + 1.0
            for pid in share:
                share[pid] /= len(critical_path)

        predicted = _predicted_makespan(run_attrs, latency)
        return cls(
            has_timing=True,
            makespan_ms=makespan,
            rounds=rounds,
            links=links,
            phase_durations=phase_durations,
            phase_delays=phase_delays,
            critical_path=critical_path,
            critical_share=share,
            straggler_counts=straggler_counts,
            latency_model=latency,
            compute_model=compute,
            realtime=realtime,
            predicted_makespan_ms=predicted,
            tolerance=tolerance,
        )

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "version": TIMING_REPORT_VERSION,
            "has_timing": self.has_timing,
            "makespan_ms": self.makespan_ms,
            "predicted_makespan_ms": self.predicted_makespan_ms,
            "makespan_delta": self.makespan_delta,
            "makespan_ok": self.makespan_ok,
            "tolerance": self.tolerance,
            "latency_model": self.latency_model,
            "compute_model": self.compute_model,
            "realtime": self.realtime,
            "phase_durations": self.phase_durations,
            "straggler_counts": {
                str(pid): count
                for pid, count in sorted(self.straggler_counts.items())
            },
            "dominant_party": self.dominant_party,
            "critical_share": {
                str(pid): share
                for pid, share in sorted(self.critical_share.items())
            },
            "critical_path": [
                {
                    "round": hop.round_index,
                    "phase": hop.phase,
                    "sender": hop.sender,
                    "receiver": hop.receiver,
                    "t_send": hop.t_send,
                    "t_recv": hop.t_recv,
                    "delay_ms": hop.delay_ms,
                }
                for hop in self.critical_path
            ],
            "rounds": [
                {
                    "round": w.round_index,
                    "phase": w.phase,
                    "t_start": w.t_start,
                    "t_end": w.t_end,
                    "duration_ms": w.duration_ms,
                    "straggler": w.straggler,
                    "messages": w.messages,
                }
                for w in self.rounds
            ],
            "links": [
                {
                    "sender": s.sender,
                    "receiver": s.receiver,
                    "count": s.count,
                    "mean_ms": s.mean_ms,
                    "min_ms": s.min_ms,
                    "max_ms": s.max_ms,
                }
                for s in self.links
            ],
        }

    def render_text(self) -> str:
        """Human-readable timing report (same style as RunReport)."""
        if not self.has_timing:
            return (
                "timing report: trace carries no virtual-time stamps "
                "(pre-v4 or untimed run)"
            )
        lines = ["timing report"]
        model = (self.latency_model or {}).get("model", "?")
        lines.append(
            f"  latency model: {model} "
            f"{ {k: v for k, v in (self.latency_model or {}).items() if k != 'model'} }"
        )
        lines.append(f"  observed makespan: {self.makespan_ms:.3f} ms")
        if self.predicted_makespan_ms is not None:
            delta = self.makespan_delta or 0.0
            verdict = "OK" if self.makespan_ok else "DIVERGED"
            lines.append(
                f"  predicted makespan: {self.predicted_makespan_ms:.3f} ms "
                f"(delta {delta:+.1%}, tolerance ±{self.tolerance:.0%}) "
                f"[{verdict}]"
            )
        if self.phase_durations:
            lines.append("  per-phase virtual duration:")
            width = max(len(p) for p in self.phase_durations)
            for phase, duration in self.phase_durations.items():
                samples = self.phase_delays.get(phase, [])
                mean = sum(samples) / len(samples) if samples else 0.0
                lines.append(
                    f"    {phase:<{width}}  {duration:>10.3f} ms  "
                    f"(mean link delay {mean:.3f} ms over {len(samples)} msgs)"
                )
        if self.straggler_counts:
            ranked = sorted(
                self.straggler_counts.items(), key=lambda kv: (-kv[1], kv[0])
            )
            summary = ", ".join(f"P{pid}×{count}" for pid, count in ranked)
            lines.append(f"  stragglers (rounds closed): {summary}")
        if self.critical_path:
            lines.append(
                f"  critical path ({len(self.critical_path)} hops, "
                f"dominant party P{self.dominant_party})"
            )
            for hop in self.critical_path:
                target = "bcast" if hop.receiver is None else f"P{hop.receiver}"
                lines.append(
                    f"    r{hop.round_index:>3} {hop.phase or '?':<38} "
                    f"P{hop.sender}->{target}  "
                    f"{hop.t_send:>9.3f} -> {hop.t_recv:>9.3f} ms "
                    f"(+{hop.delay_ms:.3f})"
                )
        return "\n".join(lines)


def _critical_path(msgs: Sequence[CriticalHop]) -> list[CriticalHop]:
    """Walk the arrival DAG backwards from the makespan-closing message.

    Each hop's sender was released by its own latest inbound arrival in
    an earlier round (broadcasts reach every party), so following that
    edge repeatedly yields the message chain the makespan transitively
    waited on.  Rounds strictly decrease along the walk, so it
    terminates; ties break deterministically (higher round, then lower
    sender id).
    """
    if not msgs:
        return []

    def _rank(hop: CriticalHop) -> tuple[float, int, int]:
        return (hop.t_recv, hop.round_index, -hop.sender)

    inbound: dict[int, list[CriticalHop]] = {}
    broadcasts: list[CriticalHop] = []
    for hop in msgs:
        if hop.receiver is None:
            broadcasts.append(hop)
        else:
            inbound.setdefault(hop.receiver, []).append(hop)

    current = max(msgs, key=_rank)
    path = [current]
    while True:
        candidates = [
            hop
            for hop in inbound.get(current.sender, ())
            if hop.round_index < current.round_index
        ] + [
            hop
            for hop in broadcasts
            if hop.round_index < current.round_index
            and hop.sender != current.sender
        ]
        if not candidates:
            break
        best = max(candidates, key=_rank)
        if best.t_recv <= 0.0:
            break
        path.append(best)
        current = best
    path.reverse()
    return path


def _predicted_makespan(
    run_attrs: Mapping[str, Any], latency: Mapping[str, Any] | None
) -> float | None:
    """Round schedule × latency expectation (the E1×model prediction).

    Uses the per-phase point-to-point message bounds from
    ``predicted_comm``.  Phases bounded at 0 messages (the idealized
    broadcast-only step-1 rounds) predict zero duration: the physical
    broadcast channel contributes no link delay in the timing model.
    """
    if latency is None:
        return None
    schedule = run_attrs.get("predicted_schedule")
    comm = run_attrs.get("predicted_comm")
    if not schedule or not isinstance(comm, Mapping):
        return None
    per_phase: dict[str, int] = {}
    for entry in comm.get("phases", ()):
        if not isinstance(entry, Mapping):
            continue
        per_phase[str(entry.get("phase"))] = int(entry.get("max_messages", 0))
    total = 0.0
    for entry in schedule:
        phase = entry.get("phase") if isinstance(entry, Mapping) else entry
        total += _expected_round_ms(latency, per_phase.get(str(phase), 0))
    return total
