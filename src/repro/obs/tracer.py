"""Span-based tracer for protocol executions.

A :class:`Tracer` observes one execution: protocol code opens nestable
*spans* around its steps (``with tracer.span("step 2: challenge")``),
the network simulator reports every completed round via
:meth:`Tracer.record_round`, and the runner brackets the stream with
:meth:`Tracer.run_start` / :meth:`Tracer.run_end`.  Rounds are
attributed to the innermost open span — that span name *is* the round's
phase, matching the phase labels of the static
:func:`repro.core.trace.round_schedule` prediction so observed and
predicted schedules can be diffed (:mod:`repro.obs.report`).

When no tracer is attached, instrumented code paths go through
:data:`NULL_TRACER`, whose methods do nothing and whose spans are a
single shared no-op context manager — the overhead is a ``None`` check
or an attribute call per *step* (not per message), which is negligible
next to a single VSS sharing.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from .events import SCHEMA_VERSION, TraceEvent, ensure_public_attrs


class _NullSpan:
    """Reusable no-op context manager (also returned by NullTracer.span)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing tracer: every hook is a constant-time no-op."""

    __slots__ = ()

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def annotate(self, name: str, **attrs: Any) -> None:
        return None

    def run_start(self, **attrs: Any) -> None:
        return None

    def run_end(self, **attrs: Any) -> None:
        return None

    def record_round(
        self,
        round_index: int,
        broadcasters: Sequence[int] = (),
        messages: int = 0,
        elements: int = 0,
        per_party: dict[str, Any] | None = None,
        t_start: float | None = None,
        t_end: float | None = None,
        t_wall_ms: float | None = None,
    ) -> None:
        return None

    def record_message(
        self,
        round_index: int,
        sender: int,
        receiver: int | None = None,
        elements: int = 0,
        lamport: int = 0,
        t_send: float | None = None,
        t_recv: float | None = None,
    ) -> None:
        return None

    def record_timing_model(
        self,
        latency: dict[str, Any],
        compute: dict[str, Any],
        realtime: bool = False,
    ) -> None:
        return None

    def record_profile(self, records: Sequence[dict[str, Any]]) -> None:
        return None


#: Shared no-op instance for ``tracer or NULL_TRACER`` call sites.
NULL_TRACER = NullTracer()


class _Span:
    """Context manager emitting span_start/span_end around a block."""

    __slots__ = ("_tracer", "name", "attrs")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self._tracer._enter_span(self.name, self.attrs)
        return self

    def __exit__(self, *exc: object) -> None:
        self._tracer._exit_span(self.name)


class Tracer:
    """Collects the event stream of one protocol execution.

    Parameters
    ----------
    clock:
        Monotonic nanosecond clock; injectable so tests can pin
        timestamps.  Defaults to :func:`time.perf_counter_ns`.
    """

    enabled = True

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns):
        self._clock = clock
        self.events: list[TraceEvent] = []
        self._stack: list[str] = []
        self._next_round = 0
        # Virtual time (ms) as of the last completed round; None until a
        # transport declares its timing model, so legacy/hand-driven
        # tracers keep emitting timestamp-free (pre-v4-style) spans.
        self._t_virtual: float | None = None

    # -- internals ---------------------------------------------------------
    @property
    def current_phase(self) -> str | None:
        """Innermost open span name (the phase rounds are attributed to)."""
        return self._stack[-1] if self._stack else None

    def _push(
        self,
        kind: str,
        name: str,
        attrs: dict[str, Any],
        round_index: int | None,
        phase: str | None,
    ) -> None:
        self.events.append(
            TraceEvent(
                seq=len(self.events),
                kind=kind,
                name=name,
                round_index=round_index,
                phase=phase,
                depth=len(self._stack),
                t_ns=self._clock(),
                attrs=ensure_public_attrs(attrs),
            )
        )

    def _enter_span(self, name: str, attrs: dict[str, Any]) -> None:
        if self._t_virtual is not None:
            attrs = {**attrs, "t_virtual": self._t_virtual}
        self._push("span_start", name, attrs, self._next_round, self.current_phase)
        self._stack.append(name)

    def _exit_span(self, name: str) -> None:
        if self._stack and self._stack[-1] == name:
            self._stack.pop()
        attrs: dict[str, Any] = {}
        if self._t_virtual is not None:
            attrs["t_virtual"] = self._t_virtual
        self._push("span_end", name, attrs, self._next_round, self.current_phase)

    # -- emission API (treated as a secrecy sink by lint rule RL004) -------
    def span(self, name: str, **attrs: Any) -> _Span:
        """A nestable span; rounds executed inside belong to phase ``name``."""
        return _Span(self, name, attrs)

    def annotate(self, name: str, **attrs: Any) -> None:
        """Emit a point-in-time note (public observables only)."""
        self._push("note", name, attrs, self._next_round, self.current_phase)

    def run_start(self, **attrs: Any) -> None:
        """Open the stream with run metadata and the predicted schedule."""
        attrs.setdefault("schema_version", SCHEMA_VERSION)
        self._push("run_start", "run", attrs, None, None)

    def run_end(self, **attrs: Any) -> None:
        """Close the stream with observed run totals."""
        self._push("run_end", "run", attrs, None, None)

    def record_round(
        self,
        round_index: int,
        broadcasters: Sequence[int] = (),
        messages: int = 0,
        elements: int = 0,
        per_party: dict[str, Any] | None = None,
        t_start: float | None = None,
        t_end: float | None = None,
        t_wall_ms: float | None = None,
    ) -> None:
        """Account one completed synchronous round (simulator hook).

        ``broadcasters`` lists the party ids that used the physical
        broadcast channel; ``messages``/``elements`` are the delivered
        point-to-point payload count and total field-element volume;
        ``per_party`` optionally breaks both down by sending party
        (string-keyed for JSON stability).  ``t_start``/``t_end`` are
        the round's virtual-time window in ms (schema v4), and
        ``t_wall_ms`` the coordinator's wall-clock stamp in realtime
        mode; all three are omitted from the event when ``None``.
        """
        attrs: dict[str, Any] = {
            "broadcasters": list(broadcasters),
            "messages": messages,
            "elements": elements,
        }
        if per_party is not None:
            attrs["per_party"] = per_party
        if t_start is not None:
            attrs["t_start"] = t_start
        if t_end is not None:
            attrs["t_end"] = t_end
            self._t_virtual = t_end
        if t_wall_ms is not None:
            attrs["t_wall_ms"] = t_wall_ms
        self._push("round", "round", attrs, round_index, self.current_phase)
        self._next_round = round_index + 1

    def record_message(
        self,
        round_index: int,
        sender: int,
        receiver: int | None = None,
        elements: int = 0,
        lamport: int = 0,
        t_send: float | None = None,
        t_recv: float | None = None,
    ) -> None:
        """Account one delivered message (simulator hook, schema v3+).

        ``receiver`` is ``None`` for a physical-channel broadcast, in
        which case ``elements`` is the *wire* volume (payload size times
        fan-out) so that per-round ``msg`` volumes sum exactly to the
        round event's ``elements``.  ``lamport`` is the sender's logical
        clock at emission (see
        :class:`repro.network.messages.LamportClock`).  ``t_send`` /
        ``t_recv`` are the message's virtual send/arrival instants in
        ms (schema v4; omitted when ``None``).  Only sizes, ids, clock
        values, and timings ever enter the event.
        """
        attrs: dict[str, Any] = {
            "sender": sender,
            "receiver": receiver,
            "elements": elements,
            "lamport": lamport,
        }
        if t_send is not None:
            attrs["t_send"] = t_send
        if t_recv is not None:
            attrs["t_recv"] = t_recv
        self._push("msg", "msg", attrs, round_index, self.current_phase)

    def record_timing_model(
        self,
        latency: dict[str, Any],
        compute: dict[str, Any],
        realtime: bool = False,
    ) -> None:
        """Declare the run's timing model (transport hook, schema v4).

        Emits the ``timing-model`` note carrying the latency and
        compute models' public parameters (their ``describe()`` dicts)
        and arms virtual-time stamping of subsequent span events.  Both
        transports emit this with model-only attributes — never the
        transport's name — so lockstep and async runs under equivalent
        models stay canonically identical.
        """
        self._t_virtual = 0.0
        self._push(
            "note",
            "timing-model",
            {"latency": latency, "compute": compute, "realtime": realtime},
            self._next_round,
            self.current_phase,
        )

    def record_profile(self, records: Sequence[dict[str, Any]]) -> None:
        """Fold op-profiler counter records into the stream (schema v2).

        One ``prof`` event per record, named ``component/op``, carrying
        the record verbatim in ``attrs`` (component, op, phase, count,
        optional buckets — all public by construction, but still passed
        through :func:`~repro.obs.events.ensure_public_attrs`).  Callers
        emit these *before* ``run_end`` so the terminator stays last.
        """
        for record in records:
            name = f"{record.get('component', '?')}/{record.get('op', '?')}"
            self._push(
                "prof",
                name,
                dict(record),
                None,
                record.get("phase"),
            )
