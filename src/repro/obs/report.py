"""Run reports: observed schedule vs the static prediction.

The paper's quantitative claims are schedule-shaped — total rounds
``r_VSS-share + 5`` (E1) and broadcast rounds only inside the VSS
sharing phase (E2).  :class:`RunReport` checks them *dynamically*: it
takes the event stream of one traced execution, reconstructs the
observed per-round schedule, and diffs it against the
:func:`repro.core.trace.round_schedule` prediction embedded in the
``run_start`` event, flagging every divergence in phase name, broadcast
usage, or totals.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Sequence

from .events import SCHEMA_VERSION, TraceEvent
from .metrics import RunMetrics

#: Version of the report JSON layout.
REPORT_VERSION = 1


@dataclass(frozen=True)
class ObservedRound:
    """What one executed round looked like on the wire."""

    index: int
    phase: str | None
    broadcasters: tuple[int, ...]
    messages: int
    elements: int

    @property
    def uses_broadcast(self) -> bool:
        return bool(self.broadcasters)


@dataclass
class RunReport:
    """Observed execution, prediction, and their diff."""

    observed: list[ObservedRound]
    metrics: RunMetrics
    predicted: list[dict] = field(default_factory=list)
    predicted_rounds: int | None = None
    predicted_broadcast_rounds: int | None = None
    divergences: list[str] = field(default_factory=list)
    profile: list[dict] = field(default_factory=list)

    @classmethod
    def from_events(cls, events: Sequence[TraceEvent]) -> "RunReport":
        """Build the report (and its divergence list) from a stream."""
        observed: list[ObservedRound] = []
        profile: list[dict] = []
        for ev in events:
            if ev.kind == "prof":
                profile.append(dict(ev.attrs))
            elif ev.kind == "round":
                observed.append(
                    ObservedRound(
                        index=ev.round_index if ev.round_index is not None else -1,
                        phase=ev.phase,
                        broadcasters=tuple(ev.attrs.get("broadcasters", [])),
                        messages=ev.attrs.get("messages", 0),
                        elements=ev.attrs.get("elements", 0),
                    )
                )
        metrics = RunMetrics.from_events(events)
        meta = metrics.meta
        report = cls(
            observed=observed,
            metrics=metrics,
            predicted=list(meta.get("predicted_schedule", [])),
            predicted_rounds=meta.get("predicted_rounds"),
            predicted_broadcast_rounds=meta.get("predicted_broadcast_rounds"),
            profile=profile,
        )
        report.divergences = report._diff()
        return report

    # -- comparison --------------------------------------------------------
    def _diff(self) -> list[str]:
        problems: list[str] = []
        if self.predicted:
            for obs, pred in zip(self.observed, self.predicted):
                if obs.phase != pred.get("phase"):
                    problems.append(
                        f"round {obs.index}: observed phase {obs.phase!r}, "
                        f"predicted {pred.get('phase')!r}"
                    )
                if obs.uses_broadcast != bool(pred.get("uses_broadcast")):
                    problems.append(
                        f"round {obs.index}: broadcast "
                        f"{'used' if obs.uses_broadcast else 'unused'}, "
                        f"predicted the opposite"
                    )
            if len(self.observed) != len(self.predicted):
                problems.append(
                    f"observed {len(self.observed)} rounds, predicted "
                    f"schedule has {len(self.predicted)}"
                )
        if (
            self.predicted_rounds is not None
            and len(self.observed) != self.predicted_rounds
        ):
            problems.append(
                f"observed {len(self.observed)} total rounds, predicted "
                f"{self.predicted_rounds}"
            )
        observed_bc = sum(1 for r in self.observed if r.uses_broadcast)
        if (
            self.predicted_broadcast_rounds is not None
            and observed_bc != self.predicted_broadcast_rounds
        ):
            problems.append(
                f"observed {observed_bc} broadcast rounds, predicted "
                f"{self.predicted_broadcast_rounds}"
            )
        return problems

    @property
    def matches_prediction(self) -> bool:
        """True when the observed schedule equals the static prediction."""
        return not self.divergences

    # -- rendering ---------------------------------------------------------
    def to_dict(self) -> dict:
        observed_bc = sum(1 for r in self.observed if r.uses_broadcast)
        return {
            "version": REPORT_VERSION,
            "schema_version": self.metrics.meta.get(
                "schema_version", SCHEMA_VERSION
            ),
            "meta": self.metrics.meta,
            "totals": {
                "observed_rounds": len(self.observed),
                "observed_broadcast_rounds": observed_bc,
                "predicted_rounds": self.predicted_rounds,
                "predicted_broadcast_rounds": self.predicted_broadcast_rounds,
                "matches_prediction": self.matches_prediction,
            },
            "phases": [pm.to_dict() for pm in self.metrics.phases],
            "parties": [party.to_dict() for party in self.metrics.parties],
            "rounds": [
                {
                    "index": r.index,
                    "phase": r.phase,
                    "uses_broadcast": r.uses_broadcast,
                    "broadcasters": list(r.broadcasters),
                    "messages": r.messages,
                    "elements": r.elements,
                }
                for r in self.observed
            ],
            "profile": [dict(record) for record in self.profile],
            "divergences": list(self.divergences),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self) -> str:
        """Human-readable report: phase table + schedule diff verdict."""
        meta = self.metrics.meta
        lines = []
        header = "AnonChan run report"
        if meta:
            header += (
                f" — n={meta.get('n')}, t={meta.get('t')}, "
                f"vss={meta.get('vss')}, seed={meta.get('seed')}"
            )
        lines.append(header)
        observed_bc = sum(1 for r in self.observed if r.uses_broadcast)
        lines.append(
            f"totals: {len(self.observed)} rounds "
            f"(predicted {self.predicted_rounds}), "
            f"{observed_bc} broadcast rounds "
            f"(predicted {self.predicted_broadcast_rounds})"
        )
        lines.append("")
        headers = [
            "phase", "rounds", "bc-rounds", "bcasts", "msgs", "elements",
            "wall-ms",
        ]
        rows = [
            [
                pm.phase,
                str(pm.rounds),
                str(pm.broadcast_rounds),
                str(pm.broadcasts_sent),
                str(pm.private_messages),
                str(pm.field_elements_sent),
                f"{pm.wall_ns / 1e6:.2f}",
            ]
            for pm in self.metrics.phases
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        lines.append("")
        lines.append("schedule check (observed vs core.trace.round_schedule):")
        for obs in self.observed:
            pred = (
                self.predicted[obs.index]
                if obs.index < len(self.predicted)
                else None
            )
            marker = "B" if obs.uses_broadcast else " "
            verdict = "ok" if pred and obs.phase == pred.get("phase") and (
                obs.uses_broadcast == bool(pred.get("uses_broadcast"))
            ) else "DIVERGES" if pred else "unpredicted"
            lines.append(
                f"  [{obs.index:>2}] {marker} {str(obs.phase):<38} {verdict}"
            )
        if self.profile:
            lines.append("")
            lines.append("op profile (component/op by phase):")
            top = sorted(
                self.profile,
                key=lambda r: (-int(r.get("count", 0)), str(r.get("op"))),
            )
            for record in top[:20]:
                phase = record.get("phase") or "(no span)"
                lines.append(
                    f"  {record.get('component')}/{record.get('op'):<28} "
                    f"{int(record.get('count', 0)):>12}  {phase}"
                )
            if len(top) > 20:
                lines.append(f"  ... {len(top) - 20} more counters")
        if self.divergences:
            lines.append("")
            lines.append("DIVERGENCES:")
            for problem in self.divergences:
                lines.append(f"  - {problem}")
        else:
            lines.append("")
            lines.append(
                "observed schedule matches the static prediction exactly."
            )
        return "\n".join(lines)
