"""Per-phase and per-party metric aggregation over a trace stream.

:class:`RunMetrics` supersedes the flat
:class:`~repro.network.metrics.ProtocolMetrics` aggregate with two extra
dimensions — protocol phase (innermost span) and sending party — while
keeping the flat view available as a *derived* projection
(:meth:`RunMetrics.to_protocol_metrics`), so every existing caller of
``ExecutionResult.metrics`` keeps working and tests can assert the two
accountings agree exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.network.metrics import ProtocolMetrics

from .events import TraceEvent

#: Phase bucket for rounds executed outside any span.
UNATTRIBUTED = "(no span)"


@dataclass
class PhaseMetrics:
    """Costs attributed to one protocol phase (one span name)."""

    phase: str
    rounds: int = 0
    broadcast_rounds: int = 0
    broadcasts_sent: int = 0
    private_messages: int = 0
    field_elements_sent: int = 0
    wall_ns: int = 0

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "rounds": self.rounds,
            "broadcast_rounds": self.broadcast_rounds,
            "broadcasts_sent": self.broadcasts_sent,
            "private_messages": self.private_messages,
            "field_elements_sent": self.field_elements_sent,
            "wall_ns": self.wall_ns,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PhaseMetrics":
        """Inverse of :meth:`to_dict` (round-trips exactly)."""
        return cls(
            phase=data["phase"],
            rounds=data.get("rounds", 0),
            broadcast_rounds=data.get("broadcast_rounds", 0),
            broadcasts_sent=data.get("broadcasts_sent", 0),
            private_messages=data.get("private_messages", 0),
            field_elements_sent=data.get("field_elements_sent", 0),
            wall_ns=data.get("wall_ns", 0),
        )


@dataclass
class PartyMetrics:
    """Costs attributed to one sending party."""

    pid: int
    broadcasts_sent: int = 0
    private_messages: int = 0
    field_elements_sent: int = 0

    def to_dict(self) -> dict:
        return {
            "pid": self.pid,
            "broadcasts_sent": self.broadcasts_sent,
            "private_messages": self.private_messages,
            "field_elements_sent": self.field_elements_sent,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PartyMetrics":
        """Inverse of :meth:`to_dict` (round-trips exactly)."""
        return cls(
            pid=data["pid"],
            broadcasts_sent=data.get("broadcasts_sent", 0),
            private_messages=data.get("private_messages", 0),
            field_elements_sent=data.get("field_elements_sent", 0),
        )


@dataclass
class RunMetrics:
    """Phase- and party-resolved cost accounting of one traced run.

    ``phases`` preserves first-observation order (the execution order of
    the protocol's steps); ``parties`` is sorted by party id.
    """

    phases: list[PhaseMetrics] = field(default_factory=list)
    parties: list[PartyMetrics] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "RunMetrics":
        """Aggregate a trace stream (round + span + run events)."""
        phases: dict[str, PhaseMetrics] = {}
        parties: dict[int, PartyMetrics] = {}
        open_spans: list[tuple[str, int]] = []
        meta: dict = {}
        for ev in events:
            if ev.kind == "run_start":
                meta = dict(ev.attrs)
            elif ev.kind == "span_start":
                open_spans.append((ev.name, ev.t_ns))
            elif ev.kind == "span_end":
                if open_spans and open_spans[-1][0] == ev.name:
                    _, started = open_spans.pop()
                    pm = phases.get(ev.name)
                    if pm is None:
                        pm = phases[ev.name] = PhaseMetrics(phase=ev.name)
                    pm.wall_ns += ev.t_ns - started
            elif ev.kind == "round":
                name = ev.phase if ev.phase is not None else UNATTRIBUTED
                pm = phases.get(name)
                if pm is None:
                    pm = phases[name] = PhaseMetrics(phase=name)
                broadcasters = ev.attrs.get("broadcasters", [])
                pm.rounds += 1
                if broadcasters:
                    pm.broadcast_rounds += 1
                    pm.broadcasts_sent += len(broadcasters)
                pm.private_messages += ev.attrs.get("messages", 0)
                pm.field_elements_sent += ev.attrs.get("elements", 0)
                for key, stats in ev.attrs.get("per_party", {}).items():
                    pid = int(key)
                    party = parties.get(pid)
                    if party is None:
                        party = parties[pid] = PartyMetrics(pid=pid)
                    if stats.get("broadcast"):
                        party.broadcasts_sent += 1
                    party.private_messages += stats.get("messages", 0)
                    party.field_elements_sent += stats.get("elements", 0)
        return cls(
            phases=list(phases.values()),
            parties=[parties[pid] for pid in sorted(parties)],
            meta=meta,
        )

    def phase(self, name: str) -> PhaseMetrics:
        """The metrics bucket for one phase (KeyError when absent)."""
        for pm in self.phases:
            if pm.phase == name:
                return pm
        raise KeyError(name)

    @property
    def rounds(self) -> int:
        return sum(pm.rounds for pm in self.phases)

    @property
    def broadcast_rounds(self) -> int:
        return sum(pm.broadcast_rounds for pm in self.phases)

    def to_protocol_metrics(self) -> ProtocolMetrics:
        """The flat aggregate, as a derived view.

        Equals the simulator's own :class:`ProtocolMetrics` for the same
        execution (asserted by the observability test suite).
        """
        return ProtocolMetrics(
            rounds=self.rounds,
            broadcast_rounds=self.broadcast_rounds,
            broadcasts_sent=sum(pm.broadcasts_sent for pm in self.phases),
            private_messages=sum(pm.private_messages for pm in self.phases),
            field_elements_sent=sum(
                pm.field_elements_sent for pm in self.phases
            ),
        )

    def to_dict(self) -> dict:
        """JSON-stable form (the benchmarks' phase-breakdown artifact)."""
        return {
            "phases": [pm.to_dict() for pm in self.phases],
            "parties": [party.to_dict() for party in self.parties],
            "totals": {
                "rounds": self.rounds,
                "broadcast_rounds": self.broadcast_rounds,
            },
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunMetrics":
        """Inverse of :meth:`to_dict`.

        The derived ``totals`` block is recomputed from the phase rows,
        not trusted from the input.
        """
        return cls(
            phases=[PhaseMetrics.from_dict(pm) for pm in data.get("phases", [])],
            parties=[
                PartyMetrics.from_dict(party)
                for party in data.get("parties", [])
            ],
            meta=dict(data.get("meta", {})),
        )
