"""Compute-layer op profiler: deterministic counters for the hot paths.

The tracer (:mod:`repro.obs.tracer`) sees *rounds and bytes*; this
module sees *compute*.  An :class:`OpProfiler` is a registry of
counters and value histograms keyed by ``(component, op)`` — e.g.
``fields/mul``, ``shamir/batch_eval``, ``vss/deal_scalar_fallback`` —
that the instrumented compute layers (:mod:`repro.fields`,
:mod:`repro.sharing.shamir`, :mod:`repro.vss.ideal`) feed while a run
executes.  Each increment is attributed to the innermost open span of
the profiler's :class:`~repro.obs.tracer.Tracer` (the *phase*), which
is what lets a run answer "where do the field multiplications go?".

Mirroring :data:`~repro.obs.tracer.NULL_TRACER`, the disabled path is a
module-level :data:`NULL_PROFILER` whose hooks are constant-time no-ops:
instrumented call sites fetch the active profiler via
:func:`get_profiler` once per *batch kernel* (never per element) and the
scalar per-op field counters only exist while :meth:`Field.instrument
<repro.fields.base.Field.instrument>` wrappers are installed — an
uninstrumented run executes the original methods untouched.

Counters are deterministic functions of seed and parameters (no
timestamps), so profiles diff cleanly across runs.  Export paths:

- :meth:`OpProfiler.records` / :meth:`Tracer.record_profile
  <repro.obs.tracer.Tracer.record_profile>` — ``prof`` events in the
  schema-v2 JSONL trace;
- :func:`flamegraph_lines` / :func:`write_flamegraph` — collapsed-stack
  ``component;op;phase count`` lines consumable by standard flamegraph
  tools (``flamegraph.pl``, speedscope, inferno);
- :meth:`OpProfiler.summary` — the condensed dict the benchmarks embed
  in ``BENCH_*.json`` ``extra`` payloads.

Like the tracer emission API, the profiler label/emission API is a
secrecy sink: lint rule RL004 statically flags secret-looking
identifiers flowing into ``count``/``observe``/``record_profile``.
Counts and sizes are public; values never are.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Sequence

if TYPE_CHECKING:
    from repro.fields.base import Field

    from .events import TraceEvent
    from .tracer import Tracer

#: Phase bucket for counts recorded outside any tracer span (matches
#: :data:`repro.obs.metrics.UNATTRIBUTED` for rounds).
UNATTRIBUTED = "(no span)"


class NullProfiler:
    """The do-nothing profiler: every hook is a constant-time no-op."""

    __slots__ = ()

    enabled = False

    def count(self, component: str, op: str, n: int = 1) -> None:
        return None

    def observe(self, component: str, op: str, value: int) -> None:
        return None


#: Shared no-op instance; :func:`get_profiler` returns it by default.
NULL_PROFILER = NullProfiler()


def _bucket(value: int) -> int:
    """Histogram bucket for ``value``: 0 or the next power of two >= it."""
    if value <= 0:
        return 0
    return 1 << max(0, value - 1).bit_length()


class OpProfiler:
    """Deterministic op-counter registry with phase attribution.

    Parameters
    ----------
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer`; each increment is
        attributed to its innermost open span at count time (``None``
        when no span is open or no tracer is attached).
    """

    enabled = True

    def __init__(self, tracer: "Tracer | None" = None):
        self.tracer = tracer
        # (component, op, phase-or-None) -> running count
        self._counts: dict[tuple[str, str, str | None], int] = {}
        # (component, op, phase-or-None) -> {bucket: occurrences}
        self._hists: dict[tuple[str, str, str | None], dict[int, int]] = {}

    # -- recording (treated as a secrecy sink by lint rule RL004) ------
    def _phase(self) -> str | None:
        tracer = self.tracer
        return tracer.current_phase if tracer is not None else None

    def count(self, component: str, op: str, n: int = 1) -> None:
        """Add ``n`` occurrences of ``component/op`` to the active phase."""
        if n < 0:
            raise ValueError(
                f"op counter {component}/{op} incremented by negative {n}"
            )
        key = (component, op, self._phase())
        self._counts[key] = self._counts.get(key, 0) + n

    def observe(self, component: str, op: str, value: int) -> None:
        """Record one observation of a (public) size/magnitude ``value``.

        Values land in power-of-two buckets, so histograms stay compact
        and deterministic; the counter itself also advances by one
        occurrence (the histogram refines it, never replaces it).
        """
        key = (component, op, self._phase())
        self._counts[key] = self._counts.get(key, 0) + 1
        hist = self._hists.get(key)
        if hist is None:
            hist = self._hists[key] = {}
        bucket = _bucket(int(value))
        hist[bucket] = hist.get(bucket, 0) + 1

    # -- queries -------------------------------------------------------
    def total(self, component: str | None = None, op: str | None = None) -> int:
        """Total count, optionally filtered by component and/or op."""
        return sum(
            count
            for (comp, name, _phase), count in self._counts.items()
            if (component is None or comp == component)
            and (op is None or name == op)
        )

    def attributed_fraction(
        self, component: str | None = None, op: str | None = None
    ) -> float:
        """Fraction of (filtered) counts attributed to a named phase.

        Returns 1.0 for an empty selection (nothing is unattributed).
        """
        total = attributed = 0
        for (comp, name, phase), count in self._counts.items():
            if component is not None and comp != component:
                continue
            if op is not None and name != op:
                continue
            total += count
            if phase is not None:
                attributed += count
        return attributed / total if total else 1.0

    def records(self) -> list[dict[str, Any]]:
        """Stable, JSON-safe counter records (one per (component, op, phase)).

        This is the payload of the schema-v2 ``prof`` trace events:
        ``component``, ``op``, ``phase`` (``None`` when unattributed),
        ``count``, and — for observed values — ``buckets`` mapping the
        stringified power-of-two upper bound to its occurrence count.
        """
        out = []
        for key in sorted(
            self._counts, key=lambda k: (k[0], k[1], k[2] or "")
        ):
            component, op, phase = key
            record: dict[str, Any] = {
                "component": component,
                "op": op,
                "phase": phase,
                "count": self._counts[key],
            }
            hist = self._hists.get(key)
            if hist:
                record["buckets"] = {
                    str(bucket): hist[bucket] for bucket in sorted(hist)
                }
            out.append(record)
        return out

    def summary(self) -> dict[str, Any]:
        """Condensed profile for ``BENCH_*.json`` ``extra`` payloads."""
        totals: dict[str, int] = {}
        for (component, op, _phase), count in self._counts.items():
            label = f"{component}/{op}"
            totals[label] = totals.get(label, 0) + count
        return {
            "totals": {label: totals[label] for label in sorted(totals)},
            "total_ops": sum(totals.values()),
            "attributed_fraction": round(self.attributed_fraction(), 6),
        }

    def flamegraph_lines(self) -> list[str]:
        """Collapsed-stack lines for this profiler (see module docstring)."""
        return flamegraph_lines(self.records())


# -- the active profiler ----------------------------------------------------

# Context-local so concurrent party tasks (ROADMAP item 1) each see
# their own installed profiler instead of racing on one module slot.
_ACTIVE: ContextVar[NullProfiler | OpProfiler] = ContextVar(
    "repro_active_profiler", default=NULL_PROFILER
)


def get_profiler() -> NullProfiler | OpProfiler:
    """The currently installed profiler (:data:`NULL_PROFILER` by default)."""
    return _ACTIVE.get()


def set_profiler(
    profiler: NullProfiler | OpProfiler | None,
) -> NullProfiler | OpProfiler:
    """Install ``profiler`` (``None`` = disable); returns the previous one."""
    previous = _ACTIVE.get()
    _ACTIVE.set(profiler if profiler is not None else NULL_PROFILER)
    return previous


@contextmanager
def profiled(
    profiler: OpProfiler, *fields: "Field"
) -> Iterator[OpProfiler]:
    """Install ``profiler`` for the dynamic extent of the block.

    Also installs per-call scalar op counters on each given field
    (:meth:`Field.instrument <repro.fields.base.Field.instrument>`);
    both the global registration and the field wrappers are undone on
    exit, even on error, so cached field instances never stay
    instrumented.
    """
    previous = set_profiler(profiler)
    undos = [f.instrument(profiler) for f in fields]
    try:
        yield profiler
    finally:
        for undo in reversed(undos):
            undo()
        set_profiler(previous)


# -- export helpers ---------------------------------------------------------

def records_from_events(events: Iterable["TraceEvent"]) -> list[dict[str, Any]]:
    """Extract the ``prof`` records embedded in a (v2) trace stream."""
    return [dict(ev.attrs) for ev in events if ev.kind == "prof"]


def flamegraph_lines(records: Sequence[Mapping[str, Any]]) -> list[str]:
    """Collapsed-stack ``component;op;phase count`` lines.

    One line per counter record, frames separated by ``;``, the sample
    count after the final space — the format every standard flamegraph
    renderer (``flamegraph.pl``, inferno, speedscope) consumes.
    Unattributed counts use the ``(no span)`` frame.
    """
    lines = []
    for record in records:
        phase = record.get("phase") or UNATTRIBUTED
        count = int(record.get("count", 0))
        lines.append(
            f"{record.get('component', '?')};{record.get('op', '?')};"
            f"{phase} {count}"
        )
    return lines


def write_flamegraph(
    records: Sequence[Mapping[str, Any]], path: Any
) -> int:
    """Write collapsed-stack lines to ``path``; returns the line count."""
    lines = flamegraph_lines(records)
    with open(path, "w", encoding="utf-8") as fh:
        for line in lines:
            fh.write(line)
            fh.write("\n")
    return len(lines)


def attributed_fraction_of_records(
    records: Sequence[Mapping[str, Any]],
    component: str | None = None,
    op: str | None = None,
) -> float:
    """:meth:`OpProfiler.attributed_fraction` over exported records."""
    total = attributed = 0
    for record in records:
        if component is not None and record.get("component") != component:
            continue
        if op is not None and record.get("op") != op:
            continue
        count = int(record.get("count", 0))
        total += count
        if record.get("phase") is not None:
            attributed += count
    return attributed / total if total else 1.0
