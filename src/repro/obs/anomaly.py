"""Anomaly watchdog over trace streams (``python -m repro obs-check``).

The conformance reports (:class:`repro.obs.report.RunReport`,
:class:`repro.obs.comm.CommReport`) diff an execution against its
*static prediction*; the watchdog instead scans for operational
pathologies that are suspicious in **any** execution — the checks an
on-call engineer would want on a long-running deployment of the
protocol (ROADMAP items 1-2), run today against every CI trace:

- **stalled rounds** — gaps in the round sequence, more rounds than the
  schedule predicts, or a trace that opens with ``run_start`` and never
  reaches ``run_end`` (a wedged or crashed run).  Note the ideal-VSS
  hybrid legitimately has zero-traffic sharing rounds, so *silence* is
  not an anomaly — missing or surplus rounds are.
- **disqualification storms** — more parties disqualified than the
  corruption bound ``t`` allows: an honest party was voted out, which
  the paper's agreement guarantees forbid.
- **comm hotspots** — one party originates a disproportionate share of
  the wire volume (default: above :data:`HOTSPOT_FACTOR` times the
  mean sender volume, beyond a noise floor).
- **causal-order violations** — Lamport stamps that are not monotone
  per sender, or a delivered message whose stamp is not below the
  recipient's subsequent send stamps (happens-before broken under any
  delivery order the async runtime produces).
- **timing violations** (schema v4) — virtual-time stamps that break
  causality: a message arriving before it was sent (async delivery
  reordered across the happens-before edge) or a round window ending
  before the previous round's (non-monotone virtual time).
- **slow rounds** (schema v4) — a round whose virtual duration exceeds
  :data:`SLOW_ROUND_FACTOR` times the median busy-round duration: the
  timing-aware stall check.  Round-*sequence* gaps only catch rounds
  that never completed; this catches the async stall where every round
  completes but one waited far too long on a straggling link.
- **critical-path domination** (schema v4) — a single party sends more
  than :data:`DOMINATION_SHARE` of the critical path's hops: the run's
  end-to-end latency is gated by one straggler, not by the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from .events import TraceEvent
from .timing import TimingReport

#: A round is "slow" when its virtual duration exceeds the median
#: positive round duration by this factor.
SLOW_ROUND_FACTOR = 4.0

#: Minimum number of positive-duration rounds before the slow-round
#: check speaks — tiny samples have meaningless medians.
SLOW_ROUND_MIN_ROUNDS = 4

#: A party "dominates" the critical path above this hop share.
DOMINATION_SHARE = 0.75

#: Minimum critical-path length before domination is meaningful.
DOMINATION_MIN_HOPS = 4

#: A sender is a hotspot when its volume exceeds the mean by this factor.
HOTSPOT_FACTOR = 4.0

#: Wire volume (elements) below which hotspot detection stays silent —
#: tiny traces have meaningless ratios.
HOTSPOT_MIN_ELEMENTS = 256


@dataclass(frozen=True)
class Anomaly:
    """One watchdog finding."""

    kind: str
    message: str
    round_index: int | None = None
    party: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "message": self.message,
            "round": self.round_index,
            "party": self.party,
        }

    def render(self) -> str:
        where = ""
        if self.round_index is not None:
            where += f" round={self.round_index}"
        if self.party is not None:
            where += f" party={self.party}"
        return f"[{self.kind}]{where}: {self.message}"


def scan_events(events: Sequence[TraceEvent]) -> list[Anomaly]:
    """Run every watchdog check; returns all findings (empty == clean).

    The timing checks arm themselves only when the trace carries v4
    virtual-time stamps, so legacy traces scan exactly as before.
    """
    findings: list[Anomaly] = []
    findings.extend(_check_rounds(events))
    findings.extend(_check_disqualifications(events))
    findings.extend(_check_hotspots(events))
    findings.extend(_check_causality(events))
    findings.extend(_check_timing(events))
    return findings


# -- stalled / runaway rounds ----------------------------------------------

def _check_rounds(events: Sequence[TraceEvent]) -> Iterator[Anomaly]:
    meta: dict[str, Any] = {}
    has_run_start = has_run_end = False
    last_round: int | None = None
    observed = 0
    for ev in events:
        if ev.kind == "run_start":
            meta = dict(ev.attrs)
            has_run_start = True
        elif ev.kind == "run_end":
            has_run_end = True
        elif ev.kind == "round" and isinstance(ev.round_index, int):
            observed += 1
            if last_round is not None and ev.round_index != last_round + 1:
                yield Anomaly(
                    kind="stalled-round",
                    round_index=ev.round_index,
                    message=(
                        f"round sequence jumps from {last_round} to "
                        f"{ev.round_index}: the rounds in between never "
                        "completed"
                    ),
                )
            last_round = ev.round_index
    predicted = meta.get("predicted_rounds")
    if isinstance(predicted, int) and observed > predicted:
        yield Anomaly(
            kind="stalled-round",
            round_index=last_round,
            message=(
                f"{observed} rounds executed but the schedule predicts "
                f"{predicted}: the protocol is spinning past its budget"
            ),
        )
    if has_run_start and not has_run_end:
        yield Anomaly(
            kind="stalled-round",
            round_index=last_round,
            message=(
                "trace opens with run_start but never reaches run_end "
                "(wedged or crashed execution)"
            ),
        )


# -- disqualification storms ------------------------------------------------

def _check_disqualifications(
    events: Sequence[TraceEvent],
) -> Iterator[Anomaly]:
    n = t = None
    for ev in events:
        if ev.kind == "run_start":
            n = ev.attrs.get("n")
            t = ev.attrs.get("t")
        elif ev.kind == "note" and ev.name in (
            "vss-qualified",
            "cut-and-choose-passed",
        ):
            parties = ev.attrs.get("parties")
            if (
                isinstance(n, int)
                and isinstance(t, int)
                and isinstance(parties, list)
            ):
                dropped = n - len(parties)
                if dropped > t:
                    yield Anomaly(
                        kind="disqualification-storm",
                        round_index=ev.round_index,
                        message=(
                            f"{ev.name}: {dropped} of {n} parties "
                            f"disqualified, above the corruption bound "
                            f"t={t} — an honest party was voted out"
                        ),
                    )


# -- comm hotspots -----------------------------------------------------------

def _check_hotspots(events: Sequence[TraceEvent]) -> Iterator[Anomaly]:
    sent: dict[int, int] = {}
    for ev in events:
        if ev.kind != "msg":
            continue
        sender = ev.attrs.get("sender")
        if isinstance(sender, int):
            sent[sender] = sent.get(sender, 0) + int(
                ev.attrs.get("elements", 0)
            )
    if not any(sent.values()):
        # v1/v2 traces have no msg events; fall back to the round
        # summaries' per-party breakdown.
        sent = {}
        for ev in events:
            if ev.kind != "round":
                continue
            for key, stats in ev.attrs.get("per_party", {}).items():
                try:
                    pid = int(key)
                except (TypeError, ValueError):
                    continue
                sent[pid] = sent.get(pid, 0) + int(stats.get("elements", 0))
    if len(sent) < 2:
        return
    total = sum(sent.values())
    if total < HOTSPOT_MIN_ELEMENTS:
        return
    mean = total / len(sent)
    for pid, volume in sorted(sent.items()):
        if volume > HOTSPOT_FACTOR * mean:
            yield Anomaly(
                kind="comm-hotspot",
                party=pid,
                message=(
                    f"party {pid} originated {volume} of {total} wire "
                    f"elements ({volume / total:.0%}), over "
                    f"{HOTSPOT_FACTOR:g}x the mean sender volume "
                    f"({mean:.0f})"
                ),
            )


# -- causal order ------------------------------------------------------------

def _check_causality(events: Sequence[TraceEvent]) -> Iterator[Anomaly]:
    last_stamp: dict[int, tuple[int, int]] = {}  # sender -> (round, stamp)
    # Highest stamp delivered to each party in *completed* rounds.  In
    # the lockstep model a round's sends precede its receipts, so a
    # round's deliveries only constrain sends of later rounds; the
    # pending buffers merge into the floors when the round advances.
    delivered_to: dict[int, int] = {}
    delivered_all = 0  # broadcast stamps: a floor for every party
    pending_to: dict[int, int] = {}
    pending_all = 0
    current_round: int | None = None
    for ev in events:
        if ev.kind != "msg":
            continue
        sender = ev.attrs.get("sender")
        receiver = ev.attrs.get("receiver")
        stamp = ev.attrs.get("lamport")
        round_index = ev.round_index
        if not isinstance(sender, int) or not isinstance(stamp, int):
            continue
        if round_index != current_round:
            for pid, pstamp in pending_to.items():
                if pstamp > delivered_to.get(pid, 0):
                    delivered_to[pid] = pstamp
            delivered_all = max(delivered_all, pending_all)
            pending_to = {}
            pending_all = 0
            current_round = round_index
        previous = last_stamp.get(sender)
        if previous is not None:
            prev_round, prev_stamp = previous
            if round_index == prev_round:
                if stamp != prev_stamp:
                    yield Anomaly(
                        kind="causal-order",
                        round_index=round_index,
                        party=sender,
                        message=(
                            f"party {sender} used two Lamport stamps "
                            f"({prev_stamp}, {stamp}) within one round; a "
                            "round is one send event"
                        ),
                    )
            elif stamp <= prev_stamp:
                yield Anomaly(
                    kind="causal-order",
                    round_index=round_index,
                    party=sender,
                    message=(
                        f"party {sender}'s Lamport clock is not monotone: "
                        f"stamp {stamp} after {prev_stamp}"
                    ),
                )
        # Happens-before: a send must be strictly above everything
        # delivered to the sender in earlier rounds.
        floor = max(delivered_to.get(sender, 0), delivered_all)
        if (previous is None or previous[0] != round_index) and stamp <= floor:
            yield Anomaly(
                kind="causal-order",
                round_index=round_index,
                party=sender,
                message=(
                    f"party {sender} sent with stamp {stamp} after "
                    f"receiving stamp {floor}: happens-before is violated"
                ),
            )
        last_stamp[sender] = (
            round_index if isinstance(round_index, int) else -1,
            stamp,
        )
        if receiver is None:
            pending_all = max(pending_all, stamp)
        elif isinstance(receiver, int):
            if stamp > pending_to.get(receiver, 0):
                pending_to[receiver] = stamp


# -- virtual-time checks (schema v4) -----------------------------------------

def _check_timing(events: Sequence[TraceEvent]) -> Iterator[Anomaly]:
    report = TimingReport.from_events(events)
    if not report.has_timing:
        return

    # Timing causality: arrivals before sends, non-monotone windows.
    for ev in events:
        if ev.kind != "msg":
            continue
        t_send = ev.attrs.get("t_send")
        t_recv = ev.attrs.get("t_recv")
        if (
            isinstance(t_send, (int, float))
            and isinstance(t_recv, (int, float))
            and t_recv < t_send
        ):
            yield Anomaly(
                kind="timing-causality",
                round_index=ev.round_index,
                party=ev.attrs.get("sender"),
                message=(
                    f"message from party {ev.attrs.get('sender')} to "
                    f"{ev.attrs.get('receiver')} arrives at t={t_recv} "
                    f"before its send at t={t_send}: delivery was "
                    "reordered across a happens-before edge"
                ),
            )
    prev_end: float | None = None
    prev_index: int | None = None
    for window in report.rounds:
        if prev_end is not None and window.t_end < prev_end:
            yield Anomaly(
                kind="timing-causality",
                round_index=window.round_index,
                message=(
                    f"round {window.round_index} ends at virtual "
                    f"t={window.t_end} before round {prev_index}'s end "
                    f"t={prev_end}: virtual time is not monotone"
                ),
            )
        prev_end = window.t_end
        prev_index = window.round_index

    # Slow rounds: duration far above the median *busy* round.  The
    # ideal-VSS hybrid legitimately has zero-duration sharing rounds,
    # so those do not drag the baseline down.
    busy = sorted(
        w.duration_ms for w in report.rounds if w.duration_ms > 0.0
    )
    if len(busy) >= SLOW_ROUND_MIN_ROUNDS:
        median = busy[len(busy) // 2]
        for window in report.rounds:
            if window.duration_ms > SLOW_ROUND_FACTOR * median:
                straggler = (
                    f" (straggler: party {window.straggler})"
                    if window.straggler is not None
                    else ""
                )
                yield Anomaly(
                    kind="slow-round",
                    round_index=window.round_index,
                    party=window.straggler,
                    message=(
                        f"round {window.round_index} took "
                        f"{window.duration_ms:.3f} ms, over "
                        f"{SLOW_ROUND_FACTOR:g}x the median busy-round "
                        f"duration ({median:.3f} ms){straggler}"
                    ),
                )

    # Critical-path domination: one party gates the whole makespan.
    if len(report.critical_path) >= DOMINATION_MIN_HOPS:
        dominant = report.dominant_party
        if dominant is not None:
            share = report.critical_share[dominant]
            if share > DOMINATION_SHARE:
                yield Anomaly(
                    kind="critical-path-domination",
                    party=dominant,
                    message=(
                        f"party {dominant} sends {share:.0%} of the "
                        f"{len(report.critical_path)}-hop critical path "
                        f"(threshold {DOMINATION_SHARE:.0%}): the "
                        "makespan is gated by one straggling party"
                    ),
                )
