"""Interprocedural secret-taint dataflow (RL201/RL202/RL203).

Taint *sources* are the secret-bearing APIs declared in the checked-in
``taint-spec.toml`` (dealing/VSS calls, secret class fields,
secret-named parameters); *sinks* are the observable outputs (print,
logging, trace/profiler emission, warnings) plus values interpolated
into exception messages; *sanitizers* are the sanctioned
secret-to-public transitions (sizes, threshold reconstruction, the
masking/opening path).  Propagation is interprocedural via per-function
summaries iterated to a fixpoint over the call graph:

- ``param_sinks`` — parameters whose taint reaches a sink inside the
  function (transitively through further calls);
- ``taint_through`` — parameters whose taint flows to the return value;
- ``returns_source`` — the function returns internally-sourced secret
  material.

Every finding message carries the full source → sink path so a report
is actionable without re-running the analysis.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field

from ..findings import Finding
from .graph import MODULE_BODY, CallSite, FunctionInfo, ProjectGraph
from .spec import FlowSpec

RULE_DIRECT = "RL201"
RULE_INTERPROCEDURAL = "RL202"
RULE_EXCEPTION = "RL203"

_MAX_FIXPOINT_PASSES = 8
_TOKEN_SPLIT = re.compile(r"[_\d]+")

#: Definite-secret label (vs. relative "param:<name>" labels).
SECRET = "secret"


@dataclass(frozen=True)
class Step:
    desc: str
    where: str

    def render(self) -> str:
        return f"{self.desc} [{self.where}]"


@dataclass(frozen=True)
class Taint:
    """Labels + provenance trail attached to one value."""

    labels: frozenset[str]
    steps: tuple[Step, ...]

    @property
    def definite(self) -> bool:
        return SECRET in self.labels

    def with_step(self, step: Step) -> "Taint":
        if self.steps and self.steps[-1] == step:
            return self
        return Taint(self.labels, (*self.steps, step))


def merge(*taints: "Taint | None") -> Taint | None:
    present = [t for t in taints if t is not None]
    if not present:
        return None
    labels: set[str] = set()
    steps: list[Step] = []
    for t in present:
        labels |= t.labels
        for step in t.steps:
            if step not in steps:
                steps.append(step)
    return Taint(frozenset(labels), tuple(steps[:8]))


@dataclass
class SinkChain:
    """Provenance of one param-to-sink flow, for summary composition."""

    steps: tuple[Step, ...]
    sink_desc: str


@dataclass
class Summary:
    param_sinks: dict[str, SinkChain] = field(default_factory=dict)
    taint_through: set[str] = field(default_factory=set)
    returns_source: Taint | None = None

    def signature(self) -> tuple:
        return (
            tuple(sorted(self.param_sinks)),
            tuple(sorted(self.taint_through)),
            self.returns_source is not None,
        )


def _secret_named(name: str, tokens: frozenset[str]) -> bool:
    return any(tok in tokens for tok in _TOKEN_SPLIT.split(name.lower()))


def _call_desc(site: CallSite) -> str:
    if site.qualname:
        return site.qualname
    if site.attr:
        return f".{site.attr}"
    return site.name or "<call>"


class _FunctionPass:
    """One abstract-interpretation pass over a single function body."""

    def __init__(
        self,
        graph: ProjectGraph,
        spec: FlowSpec,
        info: FunctionInfo,
        summaries: dict[str, Summary],
        report: bool,
    ):
        self.graph = graph
        self.spec = spec
        self.info = info
        self.summaries = summaries
        self.report = report
        self.site_by_node = {
            id(site.node): site for site in graph.call_sites(info.qualname)
        }
        self.local_types = graph.local_types(info)
        self.state: dict[str, Taint] = {}
        self.summary = Summary()
        self.findings: list[Finding] = []
        self._seed_params()

    # -- seeds ------------------------------------------------------------

    def _seed_params(self) -> None:
        tokens = self.spec.taint.secret_tokens
        for param in self.info.params:
            if param in ("self", "cls"):
                continue
            labels = {f"param:{param}"}
            steps: tuple[Step, ...] = ()
            if _secret_named(param, tokens):
                labels.add(SECRET)
                steps = (
                    Step(
                        f"secret-named parameter `{param}` of {self.info.qualname}",
                        self.info.where(),
                    ),
                )
            self.state[param] = Taint(frozenset(labels), steps)

    # -- driver -----------------------------------------------------------

    def run(self) -> None:
        body = (
            self.info.node.body
            if self.info.node is not None
            else [
                stmt
                for stmt in self.info.ctx.tree.body
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
        )
        for _ in range(_MAX_FIXPOINT_PASSES):
            before = dict(self.state)
            self._exec_block(body, collect=False)
            if self.state == before:
                break
        # Final pass with stable state: collect findings + sink summaries.
        self._exec_block(body, collect=True)

    # -- statements -------------------------------------------------------

    def _exec_block(self, body: list[ast.stmt], collect: bool) -> None:
        for stmt in body:
            self._exec_stmt(stmt, collect)

    def _exec_stmt(self, stmt: ast.stmt, collect: bool) -> None:
        if isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value, collect)
            for target in stmt.targets:
                self._assign(target, taint, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value, collect), stmt)
        elif isinstance(stmt, ast.AugAssign):
            taint = merge(
                self._eval(stmt.value, collect),
                self._eval(stmt.target, collect),
            )
            self._assign(stmt.target, taint, stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self._eval(stmt.value, collect)
                if taint is not None:
                    self._record_return(taint)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, collect)
        elif isinstance(stmt, ast.Raise):
            self._check_raise(stmt, collect)
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test, collect)
            self._exec_block(stmt.body, collect)
            self._exec_block(stmt.orelse, collect)
        elif isinstance(stmt, ast.For):
            iter_taint = self._eval(stmt.iter, collect)
            self._assign(stmt.target, iter_taint, stmt)
            self._exec_block(stmt.body, collect)
            self._exec_block(stmt.orelse, collect)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                taint = self._eval(item.context_expr, collect)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, taint, stmt)
            self._exec_block(stmt.body, collect)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, collect)
            for handler in stmt.handlers:
                self._exec_block(handler.body, collect)
            self._exec_block(stmt.orelse, collect)
            self._exec_block(stmt.finalbody, collect)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are separate functions in the graph
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.state.pop(target.id, None)

    def _assign(self, target: ast.expr, taint: Taint | None, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            if taint is None:
                self.state.pop(target.id, None)
            else:
                step = Step(
                    f"assigned to `{target.id}`",
                    f"{self.info.ctx.display_path}:{stmt.lineno}",
                )
                self.state[target.id] = taint.with_step(step)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                inner = elt.value if isinstance(elt, ast.Starred) else elt
                self._assign(inner, taint, stmt)
        elif isinstance(target, ast.Attribute):
            base = target.value
            if isinstance(base, ast.Name) and taint is not None:
                key = f"{base.id}.{target.attr}"
                step = Step(
                    f"stored into `{key}`",
                    f"{self.info.ctx.display_path}:{stmt.lineno}",
                )
                self.state[key] = taint.with_step(step)
                # The holder object now carries secret state too.
                existing = self.state.get(base.id)
                holder = merge(existing, taint)
                if holder is not None:
                    self.state[base.id] = holder
        elif isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Name) and taint is not None:
                holder = merge(self.state.get(base.id), taint)
                if holder is not None:
                    step = Step(
                        f"stored into `{base.id}[...]`",
                        f"{self.info.ctx.display_path}:{stmt.lineno}",
                    )
                    self.state[base.id] = holder.with_step(step)

    def _record_return(self, taint: Taint) -> None:
        for label in taint.labels:
            if label.startswith("param:"):
                self.summary.taint_through.add(label.split(":", 1)[1])
        if taint.definite:
            self.summary.returns_source = merge(
                self.summary.returns_source, taint
            )

    # -- expressions ------------------------------------------------------

    def _eval(self, expr: ast.expr, collect: bool) -> Taint | None:
        if isinstance(expr, ast.Name):
            return self.state.get(expr.id)
        if isinstance(expr, ast.Constant):
            return None
        if isinstance(expr, ast.Attribute):
            return self._eval_attribute(expr, collect)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, collect)
        if isinstance(expr, ast.JoinedStr):
            parts = [
                self._eval(v.value, collect)
                for v in expr.values
                if isinstance(v, ast.FormattedValue)
            ]
            return merge(*parts)
        if isinstance(expr, ast.FormattedValue):
            return self._eval(expr.value, collect)
        if isinstance(expr, ast.BinOp):
            return merge(self._eval(expr.left, collect), self._eval(expr.right, collect))
        if isinstance(expr, ast.UnaryOp):
            return self._eval(expr.operand, collect)
        if isinstance(expr, ast.BoolOp):
            return merge(*(self._eval(v, collect) for v in expr.values))
        if isinstance(expr, ast.Compare):
            # Comparisons yield booleans; a truth value is not the secret.
            self._eval(expr.left, collect)
            for comparator in expr.comparators:
                self._eval(comparator, collect)
            return None
        if isinstance(expr, ast.IfExp):
            self._eval(expr.test, collect)
            return merge(self._eval(expr.body, collect), self._eval(expr.orelse, collect))
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            return merge(*(self._eval(e, collect) for e in expr.elts))
        if isinstance(expr, ast.Dict):
            parts = [self._eval(v, collect) for v in expr.values]
            parts += [self._eval(k, collect) for k in expr.keys if k is not None]
            return merge(*parts)
        if isinstance(expr, ast.Subscript):
            return self._eval(expr.value, collect)
        if isinstance(expr, ast.Starred):
            return self._eval(expr.value, collect)
        if isinstance(expr, (ast.Await, ast.YieldFrom)):
            return self._eval(expr.value, collect)
        if isinstance(expr, ast.Yield):
            return self._eval(expr.value, collect) if expr.value else None
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            parts: list[Taint | None] = []
            for gen in expr.generators:
                parts.append(self._eval(gen.iter, collect))
            if isinstance(expr, ast.DictComp):
                parts.append(self._eval(expr.key, collect))
                parts.append(self._eval(expr.value, collect))
            else:
                parts.append(self._eval(expr.elt, collect))
            return merge(*parts)
        if isinstance(expr, ast.Lambda):
            return None
        return None

    def _eval_attribute(self, expr: ast.Attribute, collect: bool) -> Taint | None:
        attr = expr.attr
        spec = self.spec.taint
        if isinstance(expr.value, ast.Name):
            key = f"{expr.value.id}.{attr}"
            if key in self.state:
                return self.state[key]
            owner = self.local_types.get(expr.value.id)
            if owner is not None and f"{owner}.{attr}" in spec.source_fields:
                step = Step(
                    f"secret field `{owner.rsplit('.', 1)[-1]}.{attr}` read via "
                    f"`{expr.value.id}.{attr}`",
                    f"{self.info.ctx.display_path}:{expr.lineno}",
                )
                return Taint(frozenset({SECRET, f"field:{owner}.{attr}"}), (step,))
        base = self._eval(expr.value, collect)
        if base is None:
            return None
        if attr in spec.public_attrs:
            return None
        return base

    def _eval_call(self, call: ast.Call, collect: bool) -> Taint | None:
        site = self.site_by_node.get(id(call))
        qualname = site.qualname if site else None
        attr = site.attr if site else (
            call.func.attr if isinstance(call.func, ast.Attribute) else None
        )
        name = site.name if site else (
            call.func.id if isinstance(call.func, ast.Name) else None
        )
        spec = self.spec.taint
        where = f"{self.info.ctx.display_path}:{call.lineno}"

        arg_taints: list[tuple[str | None, Taint | None]] = []
        if isinstance(call.func, ast.Attribute):
            # The receiver of a method call is an implicit argument:
            # ``tainted.items()`` stays tainted, and a tainted receiver
            # binds to the callee's ``self`` for summary lookup.
            arg_taints.append(("self", self._eval(call.func.value, collect)))
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                arg_taints.append((None, self._eval(arg.value, collect)))
            else:
                arg_taints.append((self._param_for(qualname, index), self._eval(arg, collect)))
        for kw in call.keywords:
            arg_taints.append((kw.arg, self._eval(kw.value, collect)))

        if spec.sanitizer_calls.matches(qualname, attr, name):
            return None

        source_pattern = spec.source_calls.matches(qualname, attr, name)
        if source_pattern is not None:
            step = Step(
                f"secret produced by {_call_desc(site) if site else source_pattern}",
                where,
            )
            return Taint(frozenset({SECRET, f"source:{source_pattern}"}), (step,))

        tainted_args = [(p, t) for p, t in arg_taints if t is not None]

        sink_pattern = spec.sink_calls.matches(qualname, attr, name)
        if sink_pattern is not None and collect:
            for _, taint in tainted_args:
                if taint.definite:
                    self._report_sink(call, taint, self._sink_desc(site, sink_pattern))
            self._record_param_sinks(
                tainted_args, self._sink_desc(site, sink_pattern), ()
            )

        # Interprocedural: tainted argument into a summarized callee.
        resolved = self.graph.resolve_qual(qualname) if qualname else None
        callee_summary = self.summaries.get(resolved) if resolved else None
        if callee_summary is not None:
            for param, taint in tainted_args:
                if param is None or taint is None:
                    continue
                chain = callee_summary.param_sinks.get(param)
                if chain is None:
                    continue
                composed = (
                    *taint.steps,
                    Step(
                        f"passed as `{param}` into {resolved}",
                        where,
                    ),
                    *chain.steps,
                )
                if collect and taint.definite:
                    self._report_interprocedural(call, composed, chain.sink_desc)
                self._record_param_sinks(
                    [(p, t) for p, t in tainted_args if t is taint],
                    chain.sink_desc,
                    composed,
                    via=resolved,
                )

        # Result taint.
        result: Taint | None = None
        if callee_summary is not None:
            if callee_summary.returns_source is not None:
                result = merge(result, callee_summary.returns_source)
                if result is not None:
                    result = result.with_step(
                        Step(f"returned by {resolved}", where)
                    )
            through = callee_summary.taint_through
            for param, taint in tainted_args:
                if taint is not None and (param is None or param in through):
                    result = merge(result, taint)
        elif tainted_args:
            # Unknown callee (builtin/stdlib/constructor): propagate.
            result = merge(*(t for _, t in tainted_args))
        if result is not None:
            return result.with_step(
                Step(f"through {_call_desc(site) if site else (name or attr or 'call')}()", where)
            )
        return None

    def _param_for(self, qualname: str | None, index: int) -> str | None:
        if qualname is None:
            return None
        resolved = self.graph.resolve_qual(qualname)
        info = self.graph.functions.get(resolved) if resolved else None
        if info is None:
            return None
        params = list(info.params)
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        if index < len(params):
            return params[index]
        return None

    def _record_param_sinks(
        self,
        tainted_args: list[tuple[str | None, Taint | None]],
        sink_desc: str,
        composed: tuple[Step, ...],
        via: str | None = None,
    ) -> None:
        for _, taint in tainted_args:
            if taint is None:
                continue
            for label in taint.labels:
                if not label.startswith("param:"):
                    continue
                param = label.split(":", 1)[1]
                if param not in self.summary.param_sinks:
                    steps = composed or taint.steps
                    self.summary.param_sinks[param] = SinkChain(
                        steps=tuple(steps[:6]), sink_desc=sink_desc
                    )

    # -- sinks ------------------------------------------------------------

    def _exempt(self, node: ast.AST) -> bool:
        ctx = self.info.ctx
        lineno = getattr(node, "lineno", 1)
        return ctx.is_main_module or ctx.in_main_guard(lineno)

    def _sink_desc(self, site: CallSite | None, pattern: str) -> str:
        if site is None:
            return pattern
        if site.name == "print":
            return "print()"
        if site.attr is not None:
            return f".{site.attr}()"
        return _call_desc(site)

    def _render_path(self, steps: tuple[Step, ...], sink_desc: str, where: str) -> str:
        chain = " -> ".join(step.render() for step in steps[:6])
        return f"{chain} -> {sink_desc} [{where}]"

    def _report_sink(self, call: ast.Call, taint: Taint, sink_desc: str) -> None:
        if not self.report or self._exempt(call):
            return
        where = f"{self.info.ctx.display_path}:{call.lineno}"
        self.findings.append(
            self.info.ctx.finding(
                RULE_DIRECT,
                call,
                f"secret material reaches {sink_desc}; "
                f"path: {self._render_path(taint.steps, sink_desc, where)}",
            )
        )

    def _report_interprocedural(
        self, call: ast.Call, steps: tuple[Step, ...], sink_desc: str
    ) -> None:
        if not self.report or self._exempt(call):
            return
        where = f"{self.info.ctx.display_path}:{call.lineno}"
        self.findings.append(
            self.info.ctx.finding(
                RULE_INTERPROCEDURAL,
                call,
                f"secret material reaches {sink_desc} through a call chain; "
                f"path: {self._render_path(steps, sink_desc, where)}",
            )
        )

    def _check_raise(self, stmt: ast.Raise, collect: bool) -> None:
        if stmt.exc is None:
            return
        if not isinstance(stmt.exc, ast.Call):
            self._eval(stmt.exc, collect)
            return
        exc_name = None
        if isinstance(stmt.exc.func, ast.Name):
            exc_name = stmt.exc.func.id
        elif isinstance(stmt.exc.func, ast.Attribute):
            exc_name = stmt.exc.func.attr
        for arg in [*stmt.exc.args, *[kw.value for kw in stmt.exc.keywords]]:
            taint = self._eval(arg, collect)
            if taint is None or not collect:
                continue
            if taint.definite and self.report and not self._exempt(stmt):
                where = f"{self.info.ctx.display_path}:{stmt.lineno}"
                sink = f"{exc_name or 'exception'}(...) message"
                self.findings.append(
                    self.info.ctx.finding(
                        RULE_EXCEPTION,
                        stmt,
                        f"secret material interpolated into {sink} "
                        "(exception text propagates into logs and CI output); "
                        f"path: {self._render_path(taint.steps, sink, where)}",
                    )
                )
            # Exception text is observable: params flowing here sink too.
            for label in taint.labels:
                if label.startswith("param:"):
                    param = label.split(":", 1)[1]
                    self.summary.param_sinks.setdefault(
                        param,
                        SinkChain(
                            steps=tuple(taint.steps[:6]),
                            sink_desc=f"{exc_name or 'exception'}(...) message",
                        ),
                    )


def run_taint(graph: ProjectGraph, spec: FlowSpec) -> list[Finding]:
    """Fixpoint the summaries, then collect findings on a final pass."""
    summaries: dict[str, Summary] = {}
    order = sorted(graph.functions)
    for _ in range(_MAX_FIXPOINT_PASSES):
        changed = False
        for qualname in order:
            info = graph.functions[qualname]
            runner = _FunctionPass(graph, spec, info, summaries, report=False)
            runner.run()
            old = summaries.get(qualname)
            if old is None or old.signature() != runner.summary.signature():
                summaries[qualname] = runner.summary
                changed = True
        if not changed:
            break

    findings: dict[tuple, Finding] = {}
    for qualname in order:
        info = graph.functions[qualname]
        if info.qualname.endswith(f".{MODULE_BODY}") and info.node is None:
            pass  # module bodies are analyzed like any other function
        runner = _FunctionPass(graph, spec, info, summaries, report=True)
        runner.run()
        for finding in runner.findings:
            key = (finding.rule, finding.path, finding.line, finding.message[:80])
            findings.setdefault(key, finding)
    return sorted(findings.values())
