"""Whole-program secret-flow & concurrency-readiness analysis.

Entry point for the flow rule family (RL2xx/RL3xx), run by the engine
when ``LintConfig.flow`` is set.  Builds the approximate call graph
once from the single-parse :class:`~repro.lint.project.Project`, loads
the checked-in ``taint-spec.toml``, and runs three interprocedural
passes:

- :mod:`.taint` — secret-taint dataflow (RL201/RL202/RL203);
- :mod:`.layering` — dependency lattice over call edges (RL210);
- :mod:`.concurrency` — asyncio-readiness of party code (RL301-303).

Findings reuse the ordinary :class:`~repro.lint.findings.Finding`
machinery, so ``# repro-lint: disable=RL2xx`` comments and the
committed baseline apply unchanged.
"""

from __future__ import annotations

from pathlib import Path

from ..config import LintConfig
from ..findings import Finding
from ..project import Project
from .concurrency import (
    RULE_BLOCKING_CALL,
    RULE_MUTABLE_GLOBAL,
    RULE_SHARED_MUTABLE,
    run_concurrency,
)
from .graph import ProjectGraph
from .layering import RULE_LAYERING, run_layering
from .spec import SPEC_FILENAME, FlowSpec, SpecError
from .taint import RULE_DIRECT, RULE_EXCEPTION, RULE_INTERPROCEDURAL, run_taint

__all__ = [
    "FLOW_RULES",
    "FlowSpec",
    "ProjectGraph",
    "SpecError",
    "load_spec",
    "run_flow",
]

#: rule id -> (short name, one-line description) — used by SARIF output
#: and the docs; keep in sync with docs/LINT.md.
FLOW_RULES: dict[str, tuple[str, str]] = {
    RULE_DIRECT: (
        "secret-reaches-sink",
        "Secret-bearing value reaches an observable sink "
        "(print/log/trace/profiler).",
    ),
    RULE_INTERPROCEDURAL: (
        "secret-reaches-sink-interprocedural",
        "Secret-bearing value reaches an observable sink through a "
        "call chain.",
    ),
    RULE_EXCEPTION: (
        "secret-in-exception",
        "Secret-bearing value interpolated into an exception message.",
    ),
    RULE_LAYERING: (
        "layering-violation",
        "Call edge violates the [layering] dependency lattice of "
        "taint-spec.toml.",
    ),
    RULE_MUTABLE_GLOBAL: (
        "mutable-global-in-party-code",
        "Mutable module-level state reachable from per-party protocol "
        "code.",
    ),
    RULE_BLOCKING_CALL: (
        "blocking-call-in-party-code",
        "Blocking or wall-clock call reachable from per-party protocol "
        "code.",
    ),
    RULE_SHARED_MUTABLE: (
        "cross-party-aliasing",
        "One mutable object shared across party programs constructed "
        "in a loop.",
    ),
}


def load_spec(config: LintConfig, project: Project) -> FlowSpec:
    """Resolve the flow spec: explicit path, upward discovery from the
    linted tree, then upward discovery from the package itself (the
    repo-root ``taint-spec.toml`` in a source checkout)."""
    if config.taint_spec_path is not None:
        return FlowSpec.load(config.taint_spec_path)
    for start in [ctx.path for ctx in project.contexts[:1]] + [Path(__file__)]:
        spec = FlowSpec.discover(start)
        if spec is not None:
            return spec
    raise SpecError(
        f"no {SPEC_FILENAME} found above the linted paths; pass "
        "--taint-spec or add one at the repository root"
    )


def run_flow(project: Project, config: LintConfig) -> list[Finding]:
    """Run all whole-program passes; returns unsuppressed raw findings
    (the engine applies suppressions and the baseline)."""
    spec = load_spec(config, project)
    graph = ProjectGraph(project)
    findings: list[Finding] = []
    findings += run_taint(graph, spec)
    findings += run_layering(graph, spec)
    findings += run_concurrency(graph, spec)
    return sorted(
        f for f in findings if config.rule_enabled(f.rule)
    )
