"""Concurrency-readiness pass (RL301/RL302/RL303).

ROADMAP item 1 turns each party's program into an asyncio task.  This
pass flags the three things that will break under that refactor:

- **RL301** — module-level mutable state (container globals, or globals
  rebound via ``global``) reachable from party-program code: shared
  across concurrent parties, it is a data race and a cross-party
  information leak.
- **RL302** — blocking or wall-clock calls (``time.*``, file/socket
  I/O) reachable from party code: they stall every party sharing the
  event loop and break seed-replayability.
- **RL303** — one mutable object constructed outside a loop and passed
  into per-party program factories inside the loop, where the callee
  mutates that parameter: all parties alias one object.

Every finding message carries the call-graph path from the party root
so the report is actionable without re-running the analysis.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from ..findings import Finding
from .graph import MODULE_BODY, FunctionInfo, ProjectGraph
from .spec import FlowSpec

RULE_MUTABLE_GLOBAL = "RL301"
RULE_BLOCKING_CALL = "RL302"
RULE_SHARED_MUTABLE = "RL303"

_MUTABLE_BUILTINS = frozenset(
    {"dict", "list", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "appendleft",
        "extendleft",
    }
)


@dataclass(frozen=True)
class _Global:
    module: str
    name: str
    node: ast.stmt
    info: FunctionInfo  # module-body pseudo-function (for ctx/paths)
    reason: str


def _render_path(path: tuple[str, ...]) -> str:
    return " -> ".join(path)


def _callee_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_mutable_initializer(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        return _callee_name(value) in _MUTABLE_BUILTINS
    return False


def _module_roots(graph: ProjectGraph, spec: FlowSpec) -> set[str]:
    roots: set[str] = set()
    for qualname, info in graph.functions.items():
        if info.qualname.endswith(f".{MODULE_BODY}"):
            continue
        if spec.concurrency.party_roots.matches(qualname, None, info.name):
            roots.add(qualname)
    return roots


def _collect_globals(graph: ProjectGraph, spec: FlowSpec) -> dict[tuple[str, str], _Global]:
    """(module, name) -> mutable module-global candidates."""
    out: dict[tuple[str, str], _Global] = {}
    rebound: set[tuple[str, str]] = set()
    for qualname, info in graph.functions.items():
        if info.node is None:
            continue
        for stmt in ast.walk(info.node):
            if isinstance(stmt, ast.Global):
                for name in stmt.names:
                    rebound.add((_norm(info.module), name))
    for qualname, info in graph.functions.items():
        if not qualname.endswith(f".{MODULE_BODY}"):
            continue
        module = _norm(info.module)
        for stmt in info.ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Name):
                    continue
                name = target.id
                if name.startswith("__"):
                    continue
                full = f"{module}.{name}"
                if full in spec.concurrency.allowed_globals:
                    continue
                if isinstance(value, ast.Call):
                    ctor = _flatten(value.func)
                    if ctor is not None:
                        # Qualify through the module's import table so
                        # `from contextvars import ContextVar` matches
                        # the spec's `contextvars.ContextVar`.
                        head, _, rest = ctor.partition(".")
                        origin = graph.symbols.get(module, {}).get(head)
                        if origin is not None:
                            ctor = f"{origin}.{rest}" if rest else origin
                    bare = _callee_name(value)
                    if spec.concurrency.safe_global_types.matches(ctor, None, bare):
                        continue
                if _is_mutable_initializer(value):
                    reason = "initialized to a mutable container"
                elif (module, name) in rebound:
                    reason = "rebound via `global` from function code"
                else:
                    continue
                out[(module, name)] = _Global(
                    module=module, name=name, node=stmt, info=info, reason=reason
                )
    return out


def _norm(module: str) -> str:
    if module.endswith(".__init__"):
        return module[: -len(".__init__")]
    return module


def _flatten(node: ast.expr) -> str | None:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _names_referenced(info: FunctionInfo) -> tuple[set[str], set[str]]:
    """(loaded-or-stored names, names declared ``global``)."""
    used: set[str] = set()
    declared: set[str] = set()
    node = info.node
    if node is None:
        return used, declared
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            used.add(sub.id)
        elif isinstance(sub, ast.Global):
            declared.update(sub.names)
    return used, declared


def _locals_bound(info: FunctionInfo) -> set[str]:
    """Names bound locally (params, assignments) — these shadow globals."""
    bound: set[str] = set(info.params)
    node = info.node
    if node is None:
        return bound
    declared_global: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            declared_global.update(sub.names)
        elif isinstance(sub, ast.Assign):
            for target in sub.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
            bound.add(sub.target.id)
        elif isinstance(sub, (ast.For, ast.AsyncFor)) and isinstance(sub.target, ast.Name):
            bound.add(sub.target.id)
    return bound - declared_global


def check_mutable_globals(
    graph: ProjectGraph,
    spec: FlowSpec,
    reachable: dict[str, tuple[str, ...]],
) -> list[Finding]:
    findings: list[Finding] = []
    globals_by_module = _collect_globals(graph, spec)
    if not globals_by_module:
        return findings
    seen: set[tuple[str, str]] = set()
    for qualname in sorted(reachable):
        info = graph.functions.get(qualname)
        if info is None or info.node is None:
            continue
        module = _norm(info.module)
        used, declared = _names_referenced(info)
        shadowed = _locals_bound(info)
        for (gmod, gname), glob in globals_by_module.items():
            if gmod != module:
                continue
            touches = gname in declared or (
                gname in used and gname not in shadowed
            )
            if not touches or (gmod, gname) in seen:
                continue
            seen.add((gmod, gname))
            path = reachable[qualname]
            findings.append(
                glob.info.ctx.finding(
                    RULE_MUTABLE_GLOBAL,
                    glob.node,
                    f"mutable module global `{gname}` ({glob.reason}) is "
                    f"touched by party-reachable code {qualname}; under "
                    "per-party asyncio tasks this is shared state across "
                    f"parties; path: {_render_path(path)}; use a "
                    "ContextVar / per-party object, or justify it in "
                    "[concurrency] allowed_globals",
                )
            )
    return findings


def check_blocking_calls(
    graph: ProjectGraph,
    spec: FlowSpec,
    reachable: dict[str, tuple[str, ...]],
) -> list[Finding]:
    findings: list[Finding] = []
    for qualname in sorted(reachable):
        info = graph.functions.get(qualname)
        if info is None:
            continue
        for site in graph.call_sites(qualname):
            pattern = spec.concurrency.blocking_calls.matches(
                site.qualname, site.attr, site.name
            )
            if pattern is None:
                continue
            desc = site.qualname or (
                f".{site.attr}()" if site.attr else f"{site.name}()"
            )
            findings.append(
                info.ctx.finding(
                    RULE_BLOCKING_CALL,
                    site.node,
                    f"blocking/wall-clock call {desc} (matches "
                    f"`{pattern}`) in party-reachable code; under asyncio "
                    "it stalls every party on the loop and breaks seed "
                    f"replayability; path: {_render_path(reachable[qualname])}",
                )
            )
    return findings


def _mutates_param(graph: ProjectGraph, callee: str, param: str) -> bool:
    info = graph.functions.get(callee)
    if info is None or info.node is None:
        return False
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            base = node.func.value
            if (
                isinstance(base, ast.Name)
                and base.id == param
                and node.func.attr in _MUTATING_METHODS
            ):
                return True
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == param
                ):
                    return True
    return False


def check_shared_mutables(graph: ProjectGraph, spec: FlowSpec) -> list[Finding]:
    """RL303: mutable built outside a loop, passed to party factories
    inside it, and mutated by the callee."""
    findings: list[Finding] = []
    entrypoints = spec.concurrency.party_entrypoints
    if not entrypoints:
        return findings
    for qualname in sorted(graph.functions):
        info = graph.functions[qualname]
        if info.node is None:
            continue
        outer_mutables: dict[str, int] = {}
        for stmt in info.node.body:  # loop-external, top-level statements
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            if _is_mutable_initializer(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        outer_mutables[target.id] = stmt.lineno
        if not outer_mutables:
            continue
        site_by_node = {id(s.node): s for s in graph.call_sites(qualname)}
        for call, in_loop in _calls_with_loop_flag(info.node.body):
            if not in_loop:
                continue
            site = site_by_node.get(id(call))
            qual = site.qualname if site else None
            attr = site.attr if site else None
            name = site.name if site else _callee_name(call)
            if entrypoints.matches(qual, attr, name) is None:
                continue
            resolved = graph.resolve_qual(qual) if qual else None
            callee_info = graph.functions.get(resolved) if resolved else None
            for index, arg in enumerate(call.args):
                if not isinstance(arg, ast.Name) or arg.id not in outer_mutables:
                    continue
                param = _param_at(callee_info, index)
                if callee_info is not None and (
                    param is None or not _mutates_param(graph, resolved, param)
                ):
                    continue
                callee_desc = resolved or name or f".{attr}" or "party factory"
                param_desc = f"parameter `{param}`" if param else "a parameter"
                findings.append(
                    info.ctx.finding(
                        RULE_SHARED_MUTABLE,
                        call,
                        f"mutable object `{arg.id}` (created at line "
                        f"{outer_mutables[arg.id]}) is passed into "
                        f"{callee_desc} inside a loop and the callee "
                        f"mutates {param_desc}: every party program "
                        "aliases one object — give each party its own "
                        "copy",
                    )
                )
    return findings


def _param_at(info: FunctionInfo | None, index: int) -> str | None:
    if info is None:
        return None
    params = list(info.params)
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    if index < len(params):
        return params[index]
    return None


def _calls_with_loop_flag(body: list[ast.stmt]):
    """Yield (Call node, inside-a-loop?) excluding nested def/class."""

    def walk(node: ast.AST, in_loop: bool):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(node, ast.Call):
            yield node, in_loop
        entering = in_loop or isinstance(
            node,
            (ast.For, ast.AsyncFor, ast.While, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp),
        )
        for child in ast.iter_child_nodes(node):
            yield from walk(child, entering)

    for stmt in body:
        yield from walk(stmt, False)


def run_concurrency(graph: ProjectGraph, spec: FlowSpec) -> list[Finding]:
    roots = _module_roots(graph, spec)
    reachable = graph.reachable_from(roots)
    findings = check_mutable_globals(graph, spec, reachable)
    findings += check_blocking_calls(graph, spec, reachable)
    findings += check_shared_mutables(graph, spec)
    return sorted(findings)
