"""Cross-module layering over the call graph (RL210).

The per-file RL005 rule already polices *imports*; this pass enforces
the same lattice over resolved *call edges*, which also catches
violations routed through re-exports, callbacks passed across layers,
and attribute calls that never import the callee's module directly.
The lattice itself lives in ``taint-spec.toml`` (``[layering]``) so an
architectural decision is a reviewable data diff.
"""

from __future__ import annotations

from ..findings import Finding
from .graph import MODULE_BODY, ProjectGraph
from .spec import FlowSpec

RULE_LAYERING = "RL210"


def _normalize(module: str) -> str:
    if module.endswith(".__init__"):
        return module[: -len(".__init__")]
    return module


def run_layering(graph: ProjectGraph, spec: FlowSpec) -> list[Finding]:
    layering = spec.layering
    if not layering.layers:
        return []
    findings: list[Finding] = []
    seen: set[tuple[str, str]] = set()
    for caller_qual in sorted(graph.functions):
        caller = graph.functions[caller_qual]
        caller_module = _normalize(caller.module)
        caller_layer = layering.layer_of(caller_module)
        if caller_layer is None:
            continue
        for site in graph.call_sites(caller_qual):
            if site.qualname is None:
                continue
            target = graph.resolve_qual(site.qualname)
            if target is None:
                continue
            if target in graph.functions:
                callee_module = _normalize(graph.functions[target].module)
            elif target in graph.classes:
                callee_module = _normalize(graph.classes[target].module)
            else:
                continue
            callee_layer = layering.layer_of(callee_module)
            if callee_layer is None:
                continue
            if layering.edge_allowed(caller_layer, callee_layer):
                continue
            if f"{caller_qual} -> {target}" in layering.allowed_calls:
                continue
            if (caller_qual, target) in seen:
                continue
            seen.add((caller_qual, target))
            allowed = sorted(layering.allow.get(caller_layer, ()))
            allowed_desc = ", ".join(allowed) if allowed else "no other layer"
            caller_desc = (
                f"module body of {caller_module}"
                if caller_qual.endswith(f".{MODULE_BODY}")
                else caller_qual
            )
            findings.append(
                caller.ctx.finding(
                    RULE_LAYERING,
                    site.node,
                    f"layering violation: {caller_layer}-layer code "
                    f"({caller_desc}) calls {callee_layer}-layer "
                    f"{target}; {caller_layer} may call itself and "
                    f"{allowed_desc} (see [layering.allow] in "
                    "taint-spec.toml)",
                )
            )
    return sorted(findings)
