"""Approximate whole-program module + call graph.

Builds, from the single-parse :class:`~repro.lint.project.Project`, an
index of every function/method/class in the linted tree plus a
name/attribute-resolution based call graph.  No code is executed and no
imports are performed: resolution follows ``import``/``from`` tables
(including package re-exports), ``self``/``cls`` method lookup with
declared bases, lightweight annotation- and constructor-based local
typing, and a unique-name fallback for attribute calls.  The graph is
deliberately *approximate* — sound enough for the taint, layering, and
concurrency passes, cheap enough to run in CI on every push.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from ..context import ModuleContext
from ..project import Project

#: Pseudo-function name for a module's top-level statements.
MODULE_BODY = "<module>"

#: Method names owned by builtin/stdlib types (containers, strings,
#: generators, files): excluded from the unique-bare-name fallback.
_BUILTIN_METHOD_NAMES = frozenset(
    name
    for obj in (list, dict, set, tuple, str, bytes, frozenset, int, float)
    for name in dir(obj)
) | {"send", "throw", "close", "read", "write", "readline", "flush"}


def module_of(ctx: ModuleContext) -> str:
    """Graph-level module name: packages drop their ``.__init__`` tail
    so re-exports resolve (``repro.core.run_anonchan`` finds the table
    of ``repro/core/__init__.py``)."""
    if ctx.module.endswith(".__init__"):
        return ctx.module[: -len(".__init__")]
    return ctx.module


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    ctx: ModuleContext
    node: ast.FunctionDef | ast.AsyncFunctionDef | None
    #: Owning class qualname for methods, else ``None``.
    cls: str | None = None
    params: tuple[str, ...] = ()
    #: param name -> resolved class qualname (from annotations)
    param_types: dict[str, str] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def line(self) -> int:
        return self.node.lineno if self.node is not None else 1

    def where(self) -> str:
        return f"{self.ctx.display_path}:{self.line}"


@dataclass
class ClassInfo:
    """One class definition."""

    qualname: str
    module: str
    ctx: ModuleContext
    node: ast.ClassDef
    #: resolved base-class qualnames (project classes only)
    bases: tuple[str, ...] = ()
    #: method name -> function qualname
    methods: dict[str, str] = field(default_factory=dict)


@dataclass
class CallSite:
    """One call expression inside a function body."""

    node: ast.Call
    caller: FunctionInfo
    #: resolved project qualname (or dotted external name), if any
    qualname: str | None
    #: attribute name for ``<expr>.attr(...)`` calls
    attr: str | None
    #: bare name for ``name(...)`` calls
    name: str | None


class ProjectGraph:
    """Module graph + call graph over one parsed project."""

    def __init__(self, project: Project):
        self.project = project
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: module -> {local name: qualified target}
        self.symbols: dict[str, dict[str, str]] = {}
        #: function qualname -> call sites in its body
        self.calls: dict[str, list[CallSite]] = {}
        #: function qualname -> project callee qualnames
        self.edges: dict[str, set[str]] = {}
        #: bare function name -> qualnames sharing it (fallback lookup)
        self._by_name: dict[str, list[str]] = {}
        self._build()

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        for ctx in self.project.contexts:
            self._collect_module(ctx)
        for info in list(self.functions.values()):
            self._by_name.setdefault(info.name, []).append(info.qualname)
        for info in list(self.functions.values()):
            self._collect_calls(info)

    def _collect_module(self, ctx: ModuleContext) -> None:
        module = module_of(ctx)
        symbols: dict[str, str] = {}
        self.symbols[module] = symbols
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        symbols[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        symbols[root] = root
            elif isinstance(node, ast.ImportFrom):
                # Relative levels resolve against the *file's* dotted
                # name (``repro.core.__init__``), not the package name.
                base = _resolve_import_base(ctx.module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    symbols[alias.asname or alias.name] = f"{base}.{alias.name}"

        # Module body is a pseudo-function so top-level calls get a caller.
        body_info = FunctionInfo(
            qualname=f"{module}.{MODULE_BODY}",
            module=module,
            ctx=ctx,
            node=None,
        )
        self.functions[body_info.qualname] = body_info
        self._collect_scope(ctx, ctx.tree.body, prefix=module, cls=None)

    def _collect_scope(
        self,
        ctx: ModuleContext,
        body: list[ast.stmt],
        prefix: str,
        cls: str | None,
    ) -> None:
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}.{node.name}"
                params = tuple(
                    a.arg
                    for a in [
                        *node.args.posonlyargs,
                        *node.args.args,
                        *node.args.kwonlyargs,
                    ]
                )
                info = FunctionInfo(
                    qualname=qualname,
                    module=ctx.module,
                    ctx=ctx,
                    node=node,
                    cls=cls,
                    params=params,
                )
                self.functions[qualname] = info
                if cls is not None:
                    self.classes[cls].methods[node.name] = qualname
                # Nested defs get their own FunctionInfo (cls does not
                # propagate into nested scopes).
                self._collect_scope(ctx, node.body, prefix=qualname, cls=None)
            elif isinstance(node, ast.ClassDef):
                qualname = f"{prefix}.{node.name}"
                self.classes[qualname] = ClassInfo(
                    qualname=qualname,
                    module=ctx.module,
                    ctx=ctx,
                    node=node,
                )
                self._collect_scope(ctx, node.body, prefix=qualname, cls=qualname)
            elif isinstance(node, (ast.If, ast.Try, ast.With)):
                for sub in ast.iter_child_nodes(node):
                    if isinstance(sub, ast.stmt):
                        self._collect_scope(ctx, [sub], prefix=prefix, cls=cls)

    # -- resolution -------------------------------------------------------

    def resolve_qual(self, qual: str, _depth: int = 0) -> str | None:
        """Follow re-export chains until a project definition (or give up)."""
        if _depth > 8 or not qual:
            return None
        if qual in self.functions or qual in self.classes:
            return qual
        if "." not in qual:
            return None
        module_part, attr = qual.rsplit(".", 1)
        # The module part itself may be a re-exported name.
        symbols = self.symbols.get(module_part)
        if symbols is None:
            resolved_mod = self.resolve_qual(module_part, _depth + 1)
            if resolved_mod is not None and resolved_mod != module_part:
                return self.resolve_qual(f"{resolved_mod}.{attr}", _depth + 1)
            return None
        target = symbols.get(attr)
        if target is None or target == qual:
            # Name defined in the module body (e.g. a module-level alias).
            candidate = f"{module_part}.{attr}"
            if candidate in self.functions or candidate in self.classes:
                return candidate
            return None
        return self.resolve_qual(target, _depth + 1)

    def resolve_name(self, module: str, name: str) -> str | None:
        """Resolve a bare name used in ``module`` to a project qualname."""
        local = f"{module}.{name}"
        if local in self.functions or local in self.classes:
            return local
        target = self.symbols.get(module, {}).get(name)
        if target is not None:
            return self.resolve_qual(target) or target
        return None

    def resolve_attr_unique(self, attr: str) -> str | None:
        """Fallback: the unique project function with this bare name.

        Dunders and names that collide with builtin-type methods are
        never resolved this way — ``raw.sort()`` or a generator's
        ``prog.send(...)`` must not bind to an unrelated project
        function that happens to share the name.
        """
        if attr.startswith("__") or attr in _BUILTIN_METHOD_NAMES:
            return None
        candidates = self._by_name.get(attr, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def class_of(self, qualname: str) -> ClassInfo | None:
        return self.classes.get(qualname)

    def method_on(self, cls_qual: str, name: str, _depth: int = 0) -> str | None:
        """Look up ``name`` on a class, walking declared bases."""
        if _depth > 8:
            return None
        info = self.classes.get(cls_qual)
        if info is None:
            return None
        if name in info.methods:
            return info.methods[name]
        for base in info.bases:
            found = self.method_on(base, name, _depth + 1)
            if found is not None:
                return found
        return None

    def annotation_class(self, module: str, ann: ast.expr | None) -> str | None:
        """Best-effort class qualname for an annotation expression."""
        if ann is None:
            return None
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(ann, ast.Name):
            resolved = self.resolve_name(module, ann.id)
            return resolved if resolved in self.classes else None
        if isinstance(ann, ast.Attribute):
            dotted = _flatten_attr(ann)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                base = self.symbols.get(module, {}).get(head, head)
                resolved = self.resolve_qual(f"{base}.{rest}" if rest else base)
                return resolved if resolved in self.classes else None
            return None
        if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
            return self.annotation_class(module, ann.left) or self.annotation_class(
                module, ann.right
            )
        if isinstance(ann, ast.Subscript):
            # Optional[T] / list[T]: try the container first, then the arg.
            found = self.annotation_class(module, ann.value)
            if found is not None:
                return found
            return self.annotation_class(module, ann.slice)
        return None

    # -- call extraction --------------------------------------------------

    def _collect_calls(self, info: FunctionInfo) -> None:
        if info.qualname.endswith(f".{MODULE_BODY}"):
            body: list[ast.stmt] = [
                stmt
                for stmt in info.ctx.tree.body
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
        else:
            assert info.node is not None
            body = info.node.body
            self._resolve_bases_and_params(info)
        sites: list[CallSite] = []
        local_types = self.local_types(info)
        for call in _calls_in(body):
            qualname, attr, name = self._resolve_call(info, call, local_types)
            site = CallSite(
                node=call, caller=info, qualname=qualname, attr=attr, name=name
            )
            sites.append(site)
            if qualname is not None:
                for target in self._edge_targets(qualname):
                    self.edges.setdefault(info.qualname, set()).add(target)
        self.calls[info.qualname] = sites

    def _resolve_bases_and_params(self, info: FunctionInfo) -> None:
        if info.cls is not None:
            cls_info = self.classes[info.cls]
            if not cls_info.bases:
                resolved: list[str] = []
                for base in cls_info.node.bases:
                    dotted = _flatten_attr(base) if isinstance(base, ast.Attribute) else None
                    if isinstance(base, ast.Name):
                        found = self.resolve_name(info.module, base.id)
                    elif dotted is not None:
                        head, _, rest = dotted.partition(".")
                        root = self.symbols.get(info.module, {}).get(head, head)
                        found = self.resolve_qual(f"{root}.{rest}" if rest else root)
                    else:
                        found = None
                    if found in self.classes:
                        resolved.append(found)
                cls_info.bases = tuple(resolved)
        node = info.node
        if node is not None and not info.param_types:
            for arg in [*node.args.posonlyargs, *node.args.args, *node.args.kwonlyargs]:
                cls = self.annotation_class(info.module, arg.annotation)
                if cls is not None:
                    info.param_types[arg.arg] = cls

    def local_types(self, info: FunctionInfo) -> dict[str, str]:
        """name -> class qualname, from annotations and constructor calls."""
        types = dict(info.param_types)
        if info.cls is not None:
            types.setdefault("self", info.cls)
            types.setdefault("cls", info.cls)
        if info.node is None:
            return types
        for stmt in ast.walk(info.node):
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                cls = self.annotation_class(info.module, stmt.annotation)
                if cls is not None:
                    types[stmt.target.id] = cls
            elif isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
                callee = stmt.value.func
                resolved: str | None = None
                if isinstance(callee, ast.Name):
                    resolved = self.resolve_name(info.module, callee.id)
                elif isinstance(callee, ast.Attribute):
                    dotted = _flatten_attr(callee)
                    if dotted is not None:
                        head, _, rest = dotted.partition(".")
                        base = self.symbols.get(info.module, {}).get(head)
                        if base is not None:
                            resolved = self.resolve_qual(
                                f"{base}.{rest}" if rest else base
                            )
                if resolved in self.classes:
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            types[target.id] = resolved
        return types

    def _resolve_call(
        self,
        info: FunctionInfo,
        call: ast.Call,
        local_types: dict[str, str],
    ) -> tuple[str | None, str | None, str | None]:
        func = call.func
        if isinstance(func, ast.Name):
            resolved = self.resolve_name(info.module, func.id)
            if resolved is None:
                # Sibling nested function (e.g. `prog` inside the same body).
                parent = info.qualname.rsplit(".", 1)[0]
                candidate = f"{parent}.{func.id}"
                if candidate in self.functions:
                    resolved = candidate
            external = self.symbols.get(info.module, {}).get(func.id)
            return resolved or external, None, func.id
        if isinstance(func, ast.Attribute):
            attr = func.attr
            base = func.value
            if isinstance(base, ast.Name):
                base_cls = local_types.get(base.id)
                if base_cls is not None:
                    method = self.method_on(base_cls, attr)
                    if method is not None:
                        return method, attr, None
                dotted = _flatten_attr(func)
                if dotted is not None:
                    head, _, rest = dotted.partition(".")
                    target = self.symbols.get(info.module, {}).get(head)
                    if target is not None and rest:
                        resolved = self.resolve_qual(f"{target}.{rest}")
                        if resolved is not None:
                            return resolved, attr, None
                        return f"{target}.{rest}", attr, None
                    local = self.resolve_name(info.module, head)
                    if local in self.classes and rest:
                        method = self.method_on(local, rest.split(".")[-1])
                        if method is not None:
                            return method, attr, None
            # Unique-name fallback for unresolved attribute calls.
            return self.resolve_attr_unique(attr), attr, None
        return None, None, None

    def _edge_targets(self, qualname: str) -> Iterator[str]:
        """Graph targets for one resolved callee (constructors expand)."""
        if qualname in self.functions:
            yield qualname
            return
        cls = self.classes.get(qualname)
        if cls is not None:
            for hook in ("__init__", "__post_init__", "__new__"):
                method = self.method_on(qualname, hook)
                if method is not None:
                    yield method

    # -- queries ----------------------------------------------------------

    def call_sites(self, qualname: str) -> list[CallSite]:
        return self.calls.get(qualname, [])

    def reachable_from(
        self, roots: set[str]
    ) -> dict[str, tuple[str, ...]]:
        """BFS closure over call edges; value = qualname path from a root."""
        paths: dict[str, tuple[str, ...]] = {r: (r,) for r in roots if r in self.functions}
        queue = list(paths)
        while queue:
            current = queue.pop(0)
            for callee in sorted(self.edges.get(current, ())):
                if callee not in paths:
                    paths[callee] = paths[current] + (callee,)
                    queue.append(callee)
        return paths


def _resolve_import_base(module: str, node: ast.ImportFrom) -> str | None:
    """Absolute dotted base for a (possibly relative) ImportFrom."""
    if node.level == 0:
        return node.module
    package_parts = module.split(".")[:-1]
    if node.level - 1 > len(package_parts):
        return None
    base = package_parts[: len(package_parts) - (node.level - 1)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _flatten_attr(node: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _calls_in(body: list[ast.stmt]) -> Iterator[ast.Call]:
    """Calls in ``body``, excluding nested function/class bodies."""
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))
    return
