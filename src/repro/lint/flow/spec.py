"""The reviewable flow-analysis spec (``taint-spec.toml``).

Sources, sinks, sanitizers, the layering lattice, and the concurrency
roots are *data*, not code: they live in a checked-in TOML file so that
adding a new secret-bearing API or a new allowed layer edge is a
reviewable one-line diff.  The repo root carries the canonical
``taint-spec.toml``; fixtures and tests pass their own.

Pattern language (shared by calls/sinks/sanitizers/roots):

- ``print`` — a bare call of that name, or any resolved qualified name
  whose last component equals it.
- ``*.debug`` — any attribute call ``<expr>.debug(...)``, resolved or
  not.
- ``logging.*`` — any resolved qualified name under that prefix.
- ``repro.sharing.shamir.ShamirScheme.share`` — exact resolved
  qualified name, or a dotted suffix of one (so ``ShamirScheme.share``
  also matches).

Parsed with :mod:`tomllib` on Python 3.11+; a bundled fallback parser
covers the TOML subset the spec uses (string arrays, tables, strings,
comments) on 3.10 without adding a dependency.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

SPEC_FILENAME = "taint-spec.toml"

try:  # Python 3.11+
    import tomllib as _toml
except ImportError:  # pragma: no cover - exercised on the 3.10 CI job
    _toml = None  # type: ignore[assignment]


class SpecError(ValueError):
    """Raised when a spec file is malformed."""


# ---------------------------------------------------------------------------
# Pattern matching


@dataclass(frozen=True)
class CallPattern:
    """One entry of a ``calls = [...]`` list; see the module docstring."""

    raw: str

    def matches(self, qualname: str | None, attr: str | None, name: str | None) -> bool:
        pat = self.raw
        if pat.startswith("*."):
            target = pat[2:]
            return attr == target or (
                qualname is not None
                and qualname.rsplit(".", 1)[-1] == target
            )
        if pat.endswith(".*"):
            prefix = pat[:-2]
            return qualname is not None and (
                qualname == prefix or qualname.startswith(prefix + ".")
            )
        if "." not in pat:
            if name == pat or attr == pat:
                return True
            return qualname is not None and qualname.rsplit(".", 1)[-1] == pat
        return qualname is not None and (
            qualname == pat or qualname.endswith("." + pat)
        )


class PatternSet:
    """A list of :class:`CallPattern` with a convenience matcher."""

    def __init__(self, patterns: Iterable[str]):
        self.patterns = tuple(CallPattern(p) for p in patterns)

    def __bool__(self) -> bool:
        return bool(self.patterns)

    def __iter__(self):
        return iter(self.patterns)

    def matches(
        self,
        qualname: str | None = None,
        attr: str | None = None,
        name: str | None = None,
    ) -> str | None:
        """The raw pattern that matched, or ``None``."""
        for pattern in self.patterns:
            if pattern.matches(qualname, attr, name):
                return pattern.raw
        return None


# ---------------------------------------------------------------------------
# Spec model


@dataclass
class TaintSpec:
    """Sources, sinks, and sanitizers of the secret-taint pass."""

    #: Identifier name tokens treated as secret seeds (RL004-compatible).
    secret_tokens: frozenset[str] = frozenset()
    #: Calls whose return value is secret.
    source_calls: PatternSet = field(default_factory=lambda: PatternSet(()))
    #: ``Class.attr`` qualified fields carrying secrets.
    source_fields: frozenset[str] = frozenset()
    #: Observable sinks (log/trace/print/network-metadata APIs).
    sink_calls: PatternSet = field(default_factory=lambda: PatternSet(()))
    #: Calls that launder taint (masking, threshold opening, sizes).
    sanitizer_calls: PatternSet = field(default_factory=lambda: PatternSet(()))
    #: Attribute names that stay public on tainted objects (metadata).
    public_attrs: frozenset[str] = frozenset()

    def field_names(self) -> frozenset[str]:
        """Bare attribute names of all declared source fields."""
        return frozenset(entry.rsplit(".", 1)[-1] for entry in self.source_fields)


@dataclass
class LayeringSpec:
    """The dependency lattice, as explicit allowed call edges."""

    #: layer name -> module prefixes belonging to it
    layers: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: layer name -> other layers it may call into (itself is implicit)
    allow: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: exact "caller_qualname -> callee_qualname" exemptions
    allowed_calls: frozenset[str] = frozenset()

    def layer_of(self, module: str) -> str | None:
        best: tuple[int, str] | None = None
        for layer, prefixes in self.layers.items():
            for prefix in prefixes:
                if module == prefix or module.startswith(prefix + "."):
                    if best is None or len(prefix) > best[0]:
                        best = (len(prefix), layer)
        return best[1] if best else None

    def edge_allowed(self, caller_layer: str, callee_layer: str) -> bool:
        if caller_layer == callee_layer:
            return True
        return callee_layer in self.allow.get(caller_layer, ())


@dataclass
class ConcurrencySpec:
    """Roots and patterns of the concurrency-readiness pass."""

    #: Functions whose bodies will run inside per-party asyncio tasks.
    party_roots: PatternSet = field(default_factory=lambda: PatternSet(()))
    #: Blocking / wall-clock calls forbidden in party-reachable code.
    blocking_calls: PatternSet = field(default_factory=lambda: PatternSet(()))
    #: Factory calls that construct one party's program (RL303 scope).
    party_entrypoints: PatternSet = field(default_factory=lambda: PatternSet(()))
    #: Fully-qualified module globals exempt from RL301 (justified in
    #: the spec file next to each entry).
    allowed_globals: frozenset[str] = frozenset()
    #: Constructors producing concurrency-safe globals (context-local).
    safe_global_types: PatternSet = field(default_factory=lambda: PatternSet(()))


@dataclass
class FlowSpec:
    """Everything :mod:`repro.lint.flow` needs, loaded from one file."""

    taint: TaintSpec = field(default_factory=TaintSpec)
    layering: LayeringSpec = field(default_factory=LayeringSpec)
    concurrency: ConcurrencySpec = field(default_factory=ConcurrencySpec)
    source: str = "<builtin>"

    @classmethod
    def from_mapping(cls, data: Mapping[str, Any], source: str = "<mapping>") -> "FlowSpec":
        taint_tbl = _table(data, "taint")
        sources = _table(taint_tbl, "sources")
        sinks = _table(taint_tbl, "sinks")
        sanitizers = _table(taint_tbl, "sanitizers")
        taint = TaintSpec(
            secret_tokens=frozenset(_strings(taint_tbl, "secret_tokens")),
            source_calls=PatternSet(_strings(sources, "calls")),
            source_fields=frozenset(_strings(sources, "fields")),
            sink_calls=PatternSet(_strings(sinks, "calls")),
            sanitizer_calls=PatternSet(_strings(sanitizers, "calls")),
            public_attrs=frozenset(_strings(sanitizers, "public_attrs")),
        )
        layering_tbl = _table(data, "layering")
        layers_tbl = _table(layering_tbl, "layers")
        allow_tbl = _table(layering_tbl, "allow")
        layering = LayeringSpec(
            layers={
                name: tuple(_string_list(name, value))
                for name, value in layers_tbl.items()
            },
            allow={
                name: tuple(_string_list(name, value))
                for name, value in allow_tbl.items()
            },
            allowed_calls=frozenset(_strings(layering_tbl, "allowed_calls")),
        )
        unknown = set(layering.allow) - set(layering.layers)
        unknown |= {
            layer
            for targets in layering.allow.values()
            for layer in targets
            if layer not in layering.layers
        }
        if unknown:
            raise SpecError(
                f"{source}: [layering.allow] names undeclared layer(s): "
                f"{', '.join(sorted(unknown))}"
            )
        conc_tbl = _table(data, "concurrency")
        concurrency = ConcurrencySpec(
            party_roots=PatternSet(_strings(conc_tbl, "party_roots")),
            blocking_calls=PatternSet(_strings(conc_tbl, "blocking_calls")),
            party_entrypoints=PatternSet(_strings(conc_tbl, "party_entrypoints")),
            allowed_globals=frozenset(_strings(conc_tbl, "allowed_globals")),
            safe_global_types=PatternSet(_strings(conc_tbl, "safe_global_types")),
        )
        return cls(
            taint=taint, layering=layering, concurrency=concurrency, source=source
        )

    @classmethod
    def load(cls, path: Path) -> "FlowSpec":
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SpecError(f"{path}: cannot read spec ({exc})") from exc
        return cls.from_mapping(parse_toml(text, str(path)), source=str(path))

    @classmethod
    def discover(cls, start: Path) -> "FlowSpec | None":
        """Search ``start`` and its parents for a ``taint-spec.toml``."""
        probe = start.resolve()
        if probe.is_file():
            probe = probe.parent
        for directory in [probe, *probe.parents]:
            candidate = directory / SPEC_FILENAME
            if candidate.exists():
                return cls.load(candidate)
        return None


def _table(data: Mapping[str, Any], key: str) -> Mapping[str, Any]:
    value = data.get(key, {})
    if not isinstance(value, Mapping):
        raise SpecError(f"[{key}] must be a table, got {type(value).__name__}")
    return value


def _strings(data: Mapping[str, Any], key: str) -> list[str]:
    return _string_list(key, data.get(key, []))


def _string_list(key: str, value: Any) -> list[str]:
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise SpecError(f"{key!r} must be a list of strings")
    return list(value)


# ---------------------------------------------------------------------------
# TOML parsing (stdlib on 3.11+, bundled subset parser on 3.10)


def parse_toml(text: str, filename: str = "<spec>") -> dict[str, Any]:
    if _toml is not None:
        try:
            return _toml.loads(text)
        except _toml.TOMLDecodeError as exc:
            raise SpecError(f"{filename}: invalid TOML ({exc})") from exc
    return _parse_toml_subset(text, filename)


_HEADER_RE = re.compile(r"^\[(?P<name>[A-Za-z0-9_.\-]+)\]$")
_KEY_RE = re.compile(r"^(?P<key>[A-Za-z0-9_\-]+)\s*=\s*(?P<value>.*)$")


def _strip_comment(line: str) -> str:
    """Drop a trailing comment, respecting double-quoted strings."""
    out: list[str] = []
    in_string = False
    for ch in line:
        if ch == '"':
            in_string = not in_string
        elif ch == "#" and not in_string:
            break
        out.append(ch)
    return "".join(out).strip()


def _parse_toml_subset(text: str, filename: str) -> dict[str, Any]:
    """Parse the TOML subset the spec uses: tables, strings, string
    arrays (possibly multiline), booleans, and integers."""
    root: dict[str, Any] = {}
    current = root
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = _strip_comment(lines[i])
        i += 1
        if not line:
            continue
        header = _HEADER_RE.match(line)
        if header:
            current = root
            for part in header.group("name").split("."):
                current = current.setdefault(part, {})
                if not isinstance(current, dict):
                    raise SpecError(f"{filename}: duplicate key {part!r}")
            continue
        keyval = _KEY_RE.match(line)
        if not keyval:
            raise SpecError(f"{filename}: cannot parse line: {line!r}")
        key, value = keyval.group("key"), keyval.group("value").strip()
        if value.startswith("[") and not _array_closed(value):
            # Multiline array: accumulate until the closing bracket.
            parts = [value]
            while i < len(lines):
                chunk = _strip_comment(lines[i])
                i += 1
                parts.append(chunk)
                if _array_closed(" ".join(parts)):
                    break
            value = " ".join(parts)
        current[key] = _parse_value(value, filename)
    return root


def _array_closed(text: str) -> bool:
    depth = 0
    in_string = False
    for ch in text:
        if ch == '"':
            in_string = not in_string
        elif not in_string:
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
                if depth == 0:
                    return True
    return depth <= 0 and text.rstrip().endswith("]")


def _parse_value(value: str, filename: str) -> Any:
    value = value.strip()
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        items = _split_array_items(inner)
        return [_parse_value(item, filename) for item in items]
    if value.startswith('"') and value.endswith('"') and len(value) >= 2:
        return value[1:-1]
    if value in ("true", "false"):
        return value == "true"
    try:
        return int(value)
    except ValueError:
        raise SpecError(f"{filename}: unsupported TOML value: {value!r}") from None


def _split_array_items(inner: str) -> list[str]:
    items: list[str] = []
    buf: list[str] = []
    in_string = False
    for ch in inner:
        if ch == '"':
            in_string = not in_string
            buf.append(ch)
        elif ch == "," and not in_string:
            item = "".join(buf).strip()
            if item:
                items.append(item)
            buf = []
        else:
            buf.append(ch)
    tail = "".join(buf).strip()
    if tail:
        items.append(tail)
    return items
