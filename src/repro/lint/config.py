"""Lint run configuration."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from .baseline import DEFAULT_BASELINE_NAME


@dataclass
class LintConfig:
    """Options controlling one lint run."""

    #: Only run these rule ids (None = all registered rules).
    select: frozenset[str] | None = None
    #: Never run these rule ids.
    ignore: frozenset[str] = frozenset()
    #: Baseline file; ``None`` means auto-discover (see :meth:`resolve_baseline`).
    baseline_path: Path | None = None
    #: Whether to subtract baselined findings at all.
    use_baseline: bool = True
    #: Filenames excluded from linting.
    exclude_names: frozenset[str] = frozenset()
    #: Also run the whole-program flow passes (:mod:`repro.lint.flow`).
    flow: bool = False
    #: Taint/layering/concurrency spec file; ``None`` auto-discovers a
    #: ``taint-spec.toml`` next to the baseline (searching upward from
    #: the linted paths), falling back to the packaged default spec.
    taint_spec_path: Path | None = None

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        return self.select is None or rule_id in self.select

    def resolve_baseline(self, start: Path) -> Path | None:
        """Find the baseline file: explicit path, else search upward."""
        if not self.use_baseline:
            return None
        if self.baseline_path is not None:
            return self.baseline_path if self.baseline_path.exists() else None
        probe = start.resolve()
        if probe.is_file():
            probe = probe.parent
        for directory in [probe, *probe.parents]:
            candidate = directory / DEFAULT_BASELINE_NAME
            if candidate.exists():
                return candidate
        return None
