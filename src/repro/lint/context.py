"""Per-module analysis context shared by all rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from .findings import Finding
from .suppressions import Suppressions


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name for ``path``.

    Walks the path components looking for the last ``repro`` package
    root (or any directory chain containing ``__init__.py`` would be
    overkill — the repo has a single ``src`` layout).  Falls back to
    the bare stem for loose files such as test fixtures.
    """
    parts = list(path.parts)
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        dotted = list(parts[idx:-1]) + [path.stem]
        return ".".join(dotted)
    return path.stem


@dataclass
class ModuleContext:
    """Everything a rule needs to analyze one parsed module."""

    path: Path
    display_path: str
    module: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    #: line ranges (inclusive) inside ``if __name__ == "__main__":`` guards
    main_guard_ranges: list[tuple[int, int]] = field(default_factory=list)
    #: parsed suppression comments, scanned once at construction so both
    #: the per-file rules and the whole-program flow passes share them
    suppressions: Suppressions = field(default_factory=Suppressions)

    @classmethod
    def from_source(
        cls, path: Path, source: str, display_path: str | None = None
    ) -> "ModuleContext":
        tree = ast.parse(source, filename=str(path))
        ctx = cls(
            path=path,
            display_path=display_path or str(path),
            module=module_name_for(path),
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )
        ctx.main_guard_ranges = _main_guard_ranges(tree)
        ctx.suppressions = Suppressions.scan(source)
        return ctx

    @property
    def is_main_module(self) -> bool:
        """Whether the module is a ``__main__`` entry point."""
        return self.module.rsplit(".", 1)[-1] == "__main__"

    def in_main_guard(self, line: int) -> bool:
        return any(lo <= line <= hi for lo, hi in self.main_guard_ranges)

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=self.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        )


def _is_main_guard_test(test: ast.expr) -> bool:
    """Match ``__name__ == "__main__"`` (either operand order)."""
    if not (isinstance(test, ast.Compare) and len(test.ops) == 1):
        return False
    if not isinstance(test.ops[0], ast.Eq):
        return False
    operands = [test.left, test.comparators[0]]
    has_name = any(
        isinstance(op, ast.Name) and op.id == "__name__" for op in operands
    )
    has_lit = any(
        isinstance(op, ast.Constant) and op.value == "__main__" for op in operands
    )
    return has_name and has_lit


def _main_guard_ranges(tree: ast.Module) -> list[tuple[int, int]]:
    ranges: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and _is_main_guard_test(node.test):
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            ranges.append((node.lineno, end))
    return ranges
