"""Protocol-aware static analysis for the AnonChan reproduction.

``repro.lint`` walks Python sources with :mod:`ast` and enforces the
code-level invariants the paper's proofs take for granted:

- **RL001/RL002** — all randomness flows through threaded, seeded
  ``random.Random`` instances (replayable runs; no OS entropy).
- **RL003** — field-element values never pass through floats.
- **RL004** — shares/pads/permutations never reach print/log/trace
  sinks outside ``__main__``.
- **RL005** — protocol layers import the :mod:`repro.network` API,
  never the simulator module directly.
- **RL101–RL103** — generic hygiene (mutable defaults, bare except,
  future annotations).

``--flow`` adds the whole-program passes of :mod:`repro.lint.flow`,
driven by the checked-in ``taint-spec.toml``:

- **RL201–RL203** — interprocedural secret-taint tracking (direct,
  cross-function via summaries, and into exception messages), with the
  full source→sink path in every finding.
- **RL210** — the cross-module layering lattice enforced over the
  approximate call graph.
- **RL301–RL303** — concurrency readiness: mutable globals, blocking
  calls, and cross-party aliasing reachable from party code.

Run it with ``python -m repro.lint src/repro`` or ``python -m repro
lint`` (``python -m repro flowcheck`` = ``lint --flow``).  Per-line
suppressions: ``# repro-lint: disable=RL001``; a committed baseline
(``.repro-lint-baseline.json``) absorbs pre-existing findings.
``--format sarif`` emits SARIF 2.1.0.  See ``docs/LINT.md``.
"""

from .baseline import DEFAULT_BASELINE_NAME, load_baseline, write_baseline
from .config import LintConfig
from .context import ModuleContext
from .engine import LintResult, iter_python_files, lint_file, lint_paths
from .findings import Finding
from .rules import Rule, all_rules, rule_ids

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "Rule",
    "all_rules",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "rule_ids",
    "write_baseline",
]
