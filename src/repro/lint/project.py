"""Single-parse project loading shared by all analysis passes.

Each Python file is read and parsed exactly once into a
:class:`~repro.lint.context.ModuleContext`; the resulting
:class:`Project` is handed both to the per-file rules and to the
whole-program flow passes (:mod:`repro.lint.flow`), so adding a new
rule group never adds another parse of the tree.  Parse failures become
``RL000`` findings instead of aborting the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .config import LintConfig
from .context import ModuleContext
from .findings import Finding

#: Rule id used for unparseable files (cannot be suppressed in-file).
PARSE_ERROR_RULE = "RL000"


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            files.add(path)
        else:
            raise FileNotFoundError(f"{path}: not a Python file or directory")
    return sorted(files)


def display_path_for(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class Project:
    """All parsed modules of one lint run."""

    contexts: list[ModuleContext] = field(default_factory=list)
    #: RL000 findings for files that failed to parse.
    parse_failures: list[Finding] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.by_module: dict[str, ModuleContext] = {
            ctx.module: ctx for ctx in self.contexts
        }
        self.by_display_path: dict[str, ModuleContext] = {
            ctx.display_path: ctx for ctx in self.contexts
        }

    def context_for_finding(self, finding: Finding) -> ModuleContext | None:
        return self.by_display_path.get(finding.path)


def load_context(path: Path, source: str | None = None) -> ModuleContext:
    """Parse one file into a context (raises ``SyntaxError`` on failure)."""
    if source is None:
        source = path.read_text(encoding="utf-8")
    return ModuleContext.from_source(
        path, source, display_path=display_path_for(path)
    )


def load_project(paths: Sequence[Path], config: LintConfig) -> Project:
    """Read + parse every Python file under ``paths`` exactly once."""
    contexts: list[ModuleContext] = []
    failures: list[Finding] = []
    for file_path in iter_python_files(paths):
        if file_path.name in config.exclude_names:
            continue
        try:
            contexts.append(load_context(file_path))
        except SyntaxError as exc:
            failures.append(
                Finding(
                    path=display_path_for(file_path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 1),
                    rule=PARSE_ERROR_RULE,
                    message=f"syntax error: {exc.msg}",
                )
            )
    return Project(contexts=contexts, parse_failures=failures)
