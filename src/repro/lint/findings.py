"""Finding records produced by the lint engine.

A :class:`Finding` pins one rule violation to a file and line.  The
*baseline key* deliberately omits the line number so that committed
baselines survive unrelated edits above the flagged statement.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def baseline_key(self) -> tuple[str, str, str]:
        """Identity used for baseline matching (line numbers drift)."""
        return (self.rule, self.path, self.message)

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
