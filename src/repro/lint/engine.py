"""File walker and rule runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .baseline import load_baseline, split_baselined
from .config import LintConfig
from .context import ModuleContext
from .findings import Finding
from .rules import all_rules
from .suppressions import Suppressions

#: Rule id used for unparseable files (cannot be suppressed in-file).
PARSE_ERROR_RULE = "RL000"


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            files.add(path)
        else:
            raise FileNotFoundError(f"{path}: not a Python file or directory")
    return sorted(files)


def _display_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_file(path: Path, config: LintConfig) -> tuple[list[Finding], int]:
    """Lint one file; returns (findings, suppressed-count)."""
    source = path.read_text(encoding="utf-8")
    display = _display_path(path)
    try:
        ctx = ModuleContext.from_source(path, source, display_path=display)
    except SyntaxError as exc:
        finding = Finding(
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 1),
            rule=PARSE_ERROR_RULE,
            message=f"syntax error: {exc.msg}",
        )
        return [finding], 0
    suppressions = Suppressions.scan(source)
    findings: list[Finding] = []
    suppressed = 0
    for rule in all_rules():
        if not config.rule_enabled(rule.rule_id):
            continue
        for finding in rule.check(ctx):
            if suppressions.suppresses(finding):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def lint_paths(paths: Sequence[Path], config: LintConfig) -> LintResult:
    """Lint every Python file under ``paths`` and apply the baseline."""
    result = LintResult()
    raw: list[Finding] = []
    for file_path in iter_python_files(paths):
        if file_path.name in config.exclude_names:
            continue
        findings, suppressed = lint_file(file_path, config)
        raw.extend(findings)
        result.suppressed += suppressed
        result.files_checked += 1
    raw.sort()
    baseline_file = config.resolve_baseline(
        paths[0] if paths else Path.cwd()
    )
    if baseline_file is not None:
        baseline = load_baseline(baseline_file)
        result.findings, result.baselined = split_baselined(raw, baseline)
    else:
        result.findings = raw
    return result
