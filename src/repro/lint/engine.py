"""Rule runner over a single-parse :class:`~repro.lint.project.Project`.

The engine reads and parses each file exactly once (see
:mod:`repro.lint.project`), then feeds the shared
:class:`~repro.lint.context.ModuleContext` objects to every per-file
rule and — when :attr:`LintConfig.flow` is set — to the whole-program
flow passes.  Suppressions are scanned during parsing and applied
uniformly to both rule families; the committed baseline subtracts
pre-existing findings at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from .baseline import load_baseline, split_baselined
from .config import LintConfig
from .context import ModuleContext
from .findings import Finding
from .project import (
    PARSE_ERROR_RULE,
    Project,
    display_path_for,
    iter_python_files,
    load_project,
)
from .rules import all_rules

__all__ = [
    "PARSE_ERROR_RULE",
    "LintResult",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_project",
]


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    files_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def _check_context(
    ctx: ModuleContext, config: LintConfig
) -> tuple[list[Finding], int]:
    """Run every enabled per-file rule over one parsed module."""
    findings: list[Finding] = []
    suppressed = 0
    for rule in all_rules():
        if not config.rule_enabled(rule.rule_id):
            continue
        for finding in rule.check(ctx):
            if ctx.suppressions.suppresses(finding):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def lint_file(path: Path, config: LintConfig) -> tuple[list[Finding], int]:
    """Lint one file; returns (findings, suppressed-count).

    Retained for single-file callers and tests; whole runs go through
    :func:`lint_paths` so the parse is shared with the flow passes.
    """
    source = path.read_text(encoding="utf-8")
    display = display_path_for(path)
    try:
        ctx = ModuleContext.from_source(path, source, display_path=display)
    except SyntaxError as exc:
        finding = Finding(
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 1),
            rule=PARSE_ERROR_RULE,
            message=f"syntax error: {exc.msg}",
        )
        return [finding], 0
    return _check_context(ctx, config)


def lint_project(project: Project, config: LintConfig) -> LintResult:
    """Run per-file rules (and flow passes, if enabled) over a project."""
    result = LintResult()
    raw: list[Finding] = list(project.parse_failures)
    for ctx in project.contexts:
        findings, suppressed = _check_context(ctx, config)
        raw.extend(findings)
        result.suppressed += suppressed
        result.files_checked += 1

    if config.flow:
        from .flow import run_flow

        for finding in run_flow(project, config):
            ctx = project.context_for_finding(finding)
            if ctx is not None and ctx.suppressions.suppresses(finding):
                result.suppressed += 1
            else:
                raw.append(finding)

    raw.sort()
    result.findings = raw
    return result


def lint_paths(paths: Sequence[Path], config: LintConfig) -> LintResult:
    """Lint every Python file under ``paths`` and apply the baseline."""
    project = load_project(paths, config)
    result = lint_project(project, config)
    baseline_file = config.resolve_baseline(
        paths[0] if paths else Path.cwd()
    )
    if baseline_file is not None:
        baseline = load_baseline(baseline_file)
        result.findings, result.baselined = split_baselined(
            result.findings, baseline
        )
    return result
