"""Command-line interface for repro-lint.

Usage::

    python -m repro.lint [paths ...] [--format text|json|sarif] [options]
    python -m repro lint [paths ...]      # same, via the package CLI
    python -m repro flowcheck [paths ...] # lint --flow shorthand

Exit status: 0 when no new findings, 1 when findings remain after
suppressions and baseline, 2 on usage or I/O errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from .baseline import DEFAULT_BASELINE_NAME, write_baseline
from .config import LintConfig
from .engine import LintResult, lint_paths
from .rules import all_rules, rule_ids

JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="Protocol-aware static analysis for the AnonChan "
        "reproduction (reproducibility, field safety, secret flow, "
        "layering).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro if present)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help="also run the whole-program flow passes (secret taint, "
        "call-graph layering, concurrency readiness)",
    )
    parser.add_argument(
        "--taint-spec",
        type=Path,
        metavar="FILE",
        help="flow spec file (default: nearest taint-spec.toml)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="FILE",
        help=f"baseline file (default: nearest {DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report baselined findings as failures too",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    return parser


def _parse_rule_set(spec: str | None) -> frozenset[str] | None:
    if spec is None:
        return None
    return frozenset(r.strip() for r in spec.split(",") if r.strip())


def _default_paths() -> list[Path]:
    candidate = Path("src/repro")
    if candidate.is_dir():
        return [candidate]
    raise FileNotFoundError(
        "no paths given and ./src/repro does not exist; pass explicit paths"
    )


def _render_text(result: LintResult, stream) -> None:
    for finding in result.findings:
        print(finding.format_text(), file=stream)
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_checked} file(s)"
    )
    extras = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.suppressed:
        extras.append(f"{result.suppressed} suppressed")
    if extras:
        summary += f" ({', '.join(extras)})"
    print(summary, file=stream)


def _render_json(result: LintResult, stream) -> None:
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": result.files_checked,
        "findings": [f.to_dict() for f in result.findings],
        "baselined": len(result.baselined),
        "suppressed": result.suppressed,
        "counts": _rule_counts(result),
    }
    json.dump(payload, stream, indent=2)
    stream.write("\n")


def _render_sarif(result: LintResult, stream) -> None:
    from .sarif import to_sarif

    json.dump(to_sarif(result), stream, indent=2)
    stream.write("\n")


def _rule_counts(result: LintResult) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in result.findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return counts


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    from .flow import FLOW_RULES, SpecError

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.summary}")
        for rule_id, (_, description) in sorted(FLOW_RULES.items()):
            print(f"{rule_id}  [flow] {description}")
        return 0

    select = _parse_rule_set(args.select)
    ignore = _parse_rule_set(args.ignore) or frozenset()
    known = set(rule_ids()) | {"RL000"} | set(FLOW_RULES)
    unknown = ((select or frozenset()) | ignore) - known
    if unknown:
        print(
            f"repro.lint: error: unknown rule id(s): "
            f"{', '.join(sorted(unknown))} (see --list-rules)",
            file=sys.stderr,
        )
        return 2

    config = LintConfig(
        select=select,
        ignore=ignore,
        baseline_path=args.baseline,
        use_baseline=not (args.no_baseline or args.write_baseline),
        flow=args.flow,
        taint_spec_path=args.taint_spec,
    )
    try:
        paths = list(args.paths) or _default_paths()
        result = lint_paths(paths, config)
    except (FileNotFoundError, ValueError, OSError, SpecError) as exc:
        print(f"repro.lint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        target = args.baseline or Path(DEFAULT_BASELINE_NAME)
        write_baseline(target, result.findings)
        print(
            f"wrote {len(result.findings)} finding(s) to {target}",
            file=sys.stderr,
        )
        return 0

    if args.format == "json":
        _render_json(result, sys.stdout)
    elif args.format == "sarif":
        _render_sarif(result, sys.stdout)
    else:
        _render_text(result, sys.stdout)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
