"""Committed-baseline support.

A baseline file records pre-existing findings so that adopting a new
rule does not force a flag-day cleanup: baselined findings are reported
separately and do not fail the run.  Matching ignores line numbers
(see :meth:`repro.lint.findings.Finding.baseline_key`) and is
multiplicity-aware — a baseline entry absorbs at most one live finding
per occurrence recorded.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from .findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

BaselineKey = tuple[str, str, str]


def load_baseline(path: Path) -> Counter[BaselineKey]:
    """Load a baseline file into a multiset of finding keys."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path}: invalid baseline JSON ({exc})") from exc
    if not isinstance(data, dict) or "findings" not in data:
        raise ValueError(f"{path}: not a repro-lint baseline file")
    keys: Counter[BaselineKey] = Counter()
    for entry in data["findings"]:
        keys[(entry["rule"], entry["path"], entry["message"])] += 1
    return keys


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, line-free)."""
    keys = sorted(f.baseline_key() for f in findings)
    entries = [
        {"rule": rule, "path": path_, "message": message}
        for rule, path_, message in keys
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def split_baselined(
    findings: Sequence[Finding], baseline: Counter[BaselineKey]
) -> tuple[list[Finding], list[Finding]]:
    """Partition findings into (new, baselined)."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in findings:
        key = finding.baseline_key()
        if remaining[key] > 0:
            remaining[key] -= 1
            old.append(finding)
        else:
            new.append(finding)
    return new, old
