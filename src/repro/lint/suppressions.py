"""Per-line and per-file suppression comments.

Syntax (anywhere in a comment)::

    x = random.random()        # repro-lint: disable=RL001
    y = foo()                  # repro-lint: disable=RL001,RL003
    # repro-lint: disable-file=RL004
    # repro-lint: disable=all

``disable`` applies to findings reported on the same physical line;
``disable-file`` applies to the whole file.  ``all`` suppresses every
rule.  Suppressions are counted and reported so dead ones are visible.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .findings import Finding

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

ALL = "all"


@dataclass
class Suppressions:
    """Parsed suppression directives for one file."""

    file_rules: set[str] = field(default_factory=set)
    line_rules: dict[int, set[str]] = field(default_factory=dict)

    def suppresses(self, finding: Finding) -> bool:
        if ALL in self.file_rules or finding.rule in self.file_rules:
            return True
        rules = self.line_rules.get(finding.line)
        if rules is None:
            return False
        return ALL in rules or finding.rule in rules

    @classmethod
    def scan(cls, source: str) -> "Suppressions":
        supp = cls()
        for lineno, line in enumerate(source.splitlines(), start=1):
            for match in _SUPPRESS_RE.finditer(line):
                rules = {
                    r.strip().lower() if r.strip().lower() == ALL else r.strip()
                    for r in match.group("rules").split(",")
                }
                if match.group("scope"):
                    supp.file_rules |= rules
                else:
                    supp.line_rules.setdefault(lineno, set()).update(rules)
        return supp
