"""RL101–RL103 — generic Python hygiene.

Not protocol-specific, but each has bitten distributed-protocol code
before: shared mutable defaults alias state across parties (RL101),
bare ``except:`` swallows the very assertion failures the Byzantine
tests rely on (RL102), and ``from __future__ import annotations``
keeps annotations lazy so protocol modules stay import-cycle-free
(RL103).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from . import Rule, register

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict", "Counter"}


@register
class MutableDefaultRule(Rule):
    """RL101: no mutable default arguments."""

    rule_id = "RL101"
    summary = "mutable default argument is shared across calls (and parties)"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield ctx.finding(
                        self.rule_id,
                        default,
                        f"mutable default in {func.name}(); default to None "
                        "and allocate inside the function",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _MUTABLE_CALLS
        )


@register
class BareExceptRule(Rule):
    """RL102: no bare ``except:`` clauses."""

    rule_id = "RL102"
    summary = "bare except swallows KeyboardInterrupt and protocol assertions"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "bare except: catch a specific exception type",
                )


@register
class FutureAnnotationsRule(Rule):
    """RL103: modules that define functions/classes import future annotations."""

    rule_id = "RL103"
    summary = "missing `from __future__ import annotations` in a defining module"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        has_defs = any(
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
            for node in ast.walk(ctx.tree)
        )
        if not has_defs:
            return
        for node in ctx.tree.body:
            if (
                isinstance(node, ast.ImportFrom)
                and node.module == "__future__"
                and any(alias.name == "annotations" for alias in node.names)
            ):
                return
        yield ctx.finding(
            self.rule_id,
            ctx.tree.body[0] if ctx.tree.body else ctx.tree,
            "add `from __future__ import annotations` (lazy annotations "
            "keep protocol modules cycle-free and cheap to import)",
        )
