"""RL005 — architectural layering.

Protocol logic (``repro.core``, ``repro.vss``, ``repro.byzantine``)
runs *on top of* the network abstraction exported by
:mod:`repro.network` (``Program``, ``RoundOutput``, ``run_protocol``);
reaching into ``repro.network.simulator`` directly couples protocol
code to one scheduler implementation and blocks the planned async /
sharded backends.  Relative imports are resolved against the module's
package before matching.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from . import Rule, register

#: module-prefix -> forbidden import prefixes
LAYERING: dict[str, tuple[str, ...]] = {
    "repro.core": ("repro.network.simulator",),
    "repro.vss": ("repro.network.simulator",),
    "repro.byzantine": ("repro.network.simulator",),
}


def _resolve_relative(module: str, node: ast.ImportFrom) -> str | None:
    """Absolute dotted name for a (possibly relative) ImportFrom."""
    if node.level == 0:
        return node.module
    package_parts = module.split(".")[:-1]
    if node.level - 1 > len(package_parts):
        return None
    base = package_parts[: len(package_parts) - (node.level - 1)]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


def _prefix_match(name: str, prefix: str) -> bool:
    return name == prefix or name.startswith(prefix + ".")


@register
class LayeringRule(Rule):
    """RL005: protocol layers import repro.network's API, not its simulator."""

    rule_id = "RL005"
    summary = (
        "layering: core/vss/byzantine must import the repro.network API, "
        "never repro.network.simulator directly"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        forbidden: tuple[str, ...] = ()
        for layer, targets in LAYERING.items():
            if _prefix_match(ctx.module, layer):
                forbidden = targets
                break
        if not forbidden:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    for target in forbidden:
                        if _prefix_match(alias.name, target):
                            yield ctx.finding(
                                self.rule_id,
                                node,
                                f"import {alias.name}: go through the "
                                "repro.network package API instead",
                            )
            elif isinstance(node, ast.ImportFrom):
                resolved = _resolve_relative(ctx.module, node)
                if resolved is None:
                    continue
                for target in forbidden:
                    if _prefix_match(resolved, target):
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            f"from {resolved} import ...: go through the "
                            "repro.network package API instead",
                        )
                        break
