"""RL004 — secret material must not reach observable sinks.

The privacy proof (Theorem 1) assumes shares, one-time pads, and the
receiver's permutations are seen only by their owners; a stray
``print(shares)`` or a share dumped into a trace/log during debugging
is exactly the kind of leak that survives into benchmarks.  The rule
flags calls to ``print``, ``logging``-style methods, trace ``record*``
sinks, and the :mod:`repro.obs` event-emission API (``span`` /
``annotate`` / ``emit`` / ``run_start`` / ``run_end`` — everything that
writes trace-event payloads, which end up in exported JSONL artifacts)
whose arguments mention an identifier with a secret-looking token
(``share``, ``secret``, ``pad``, ``perm``, ``permutation``).
``__main__`` modules and ``if __name__ == "__main__"`` blocks are
exempt (demo output is their purpose), as is anything wrapped in
``len(...)`` — sizes are public.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from . import Rule, register

_SECRET_TOKENS = {
    "share",
    "shares",
    "secret",
    "secrets",
    "pad",
    "pads",
    "perm",
    "perms",
    "permutation",
    "permutations",
}

_LOG_METHODS = {
    "debug",
    "info",
    "warning",
    "warn",
    "error",
    "critical",
    "exception",
    "log",
}

_TRACE_METHODS = {"record", "record_round", "record_event", "trace"}

#: The repro.obs event-emission API: everything here writes attributes
#: into trace events, which are exported as JSONL artifacts — a leak
#: through them is as observable as a print.  The op-profiler
#: (``repro.obs.profiler``) labels/records surface the same way —
#: ``count``/``observe`` arguments land in ``prof`` events and
#: flamegraph lines — so its API is a sink too.
_OBS_EMIT_METHODS = {
    "span",
    "annotate",
    "emit",
    "run_start",
    "run_end",
    "count",
    "observe",
    "record_profile",
    "record_message",
}

_TOKEN_SPLIT = re.compile(r"[_\d]+")


def _is_secret_identifier(name: str) -> bool:
    return any(tok in _SECRET_TOKENS for tok in _TOKEN_SPLIT.split(name.lower()))


def _sink_kind(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        if func.id == "print":
            return "print"
        if func.id in _TRACE_METHODS:
            return func.id
        return None
    if isinstance(func, ast.Attribute):
        if func.attr in _LOG_METHODS:
            # logging.info(...), logger.debug(...), self._log.warning(...)
            return f"logging .{func.attr}()"
        if func.attr in _TRACE_METHODS:
            return f"trace .{func.attr}()"
        if func.attr in _OBS_EMIT_METHODS:
            # tracer.annotate(...), tr.span(...), tracer.run_start(...)
            return f"obs event .{func.attr}()"
    return None


def _secret_names_in(expr: ast.expr) -> Iterator[str]:
    """Secret-looking identifiers in ``expr``, skipping len(...) subtrees."""
    stack: list[ast.AST] = [expr]
    while stack:
        node = stack.pop()
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "len"
        ):
            continue
        if isinstance(node, ast.Name) and _is_secret_identifier(node.id):
            yield node.id
        elif isinstance(node, ast.Attribute) and _is_secret_identifier(node.attr):
            yield node.attr
        stack.extend(ast.iter_child_nodes(node))


@register
class SecretLeakRule(Rule):
    """RL004: share/pad/permutation identifiers must not hit output sinks."""

    rule_id = "RL004"
    summary = (
        "secret-flow hygiene: shares, pads, and permutations must not "
        "reach print/logging/trace sinks outside __main__"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.is_main_module:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            sink = _sink_kind(node)
            if sink is None or ctx.in_main_guard(node.lineno):
                continue
            leaked: list[str] = []
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                leaked.extend(_secret_names_in(arg))
            if leaked:
                names = ", ".join(sorted(set(leaked)))
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"secret-looking identifier(s) {names} reach {sink}; "
                    "secret material must stay out of observable output",
                )
