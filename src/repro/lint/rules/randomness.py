"""RL001 / RL002 — randomness discipline.

Every benchmark, adversary strategy, and protocol execution in this
repo is replayable because all sampling flows through explicitly
threaded ``random.Random`` instances.  RL001 rejects calls on the
*module-global* RNG (``random.randint`` and friends share hidden
process-wide state); RL002 rejects nondeterministic entropy sources
(``secrets``, ``os.urandom``, ``SystemRandom``, ``uuid4``, seeding
from wall-clock time) inside the reproduction package.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from . import Rule, register

#: Names importable from :mod:`random` that do NOT touch global state.
_RANDOM_OK = {"Random", "SystemRandom"}

#: time-module attributes that make seeds wall-clock dependent.
_TIME_SOURCES = {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter"}


def _module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Names the given top-level module is bound to via ``import``."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or module)
                elif alias.name.startswith(module + ".") and alias.asname is None:
                    aliases.add(module)
    return aliases


@register
class GlobalRandomRule(Rule):
    """RL001: no calls through the global ``random`` module RNG."""

    rule_id = "RL001"
    summary = (
        "global-RNG use: draw randomness from a threaded random.Random "
        "instance, never the random module's hidden global state"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        aliases = _module_aliases(ctx.tree, "random")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    for alias in node.names:
                        if alias.name not in _RANDOM_OK:
                            yield ctx.finding(
                                self.rule_id,
                                node,
                                f"from random import {alias.name} binds the "
                                "module-global RNG; import Random and thread "
                                "a seeded instance instead",
                            )
            elif isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id in aliases
                    and node.attr not in _RANDOM_OK
                ):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"random.{node.attr} uses the module-global RNG; "
                        "use a named random.Random instance threaded through "
                        "the call chain",
                    )


@register
class NondeterministicEntropyRule(Rule):
    """RL002: no OS/wall-clock entropy inside the reproduction package."""

    rule_id = "RL002"
    summary = (
        "nondeterministic entropy (secrets / os.urandom / SystemRandom / "
        "uuid4 / time-based seeds) breaks replayable runs"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        os_aliases = _module_aliases(ctx.tree, "os")
        time_aliases = _module_aliases(ctx.tree, "time")
        uuid_aliases = _module_aliases(ctx.tree, "uuid")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "secrets" or alias.name.startswith("secrets."):
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            "the secrets module draws OS entropy; seeded "
                            "random.Random keeps runs reproducible",
                        )
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                if node.module == "secrets":
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        "the secrets module draws OS entropy; seeded "
                        "random.Random keeps runs reproducible",
                    )
                elif node.module == "random":
                    for alias in node.names:
                        if alias.name == "SystemRandom":
                            yield ctx.finding(
                                self.rule_id,
                                node,
                                "SystemRandom is not seedable; use "
                                "random.Random",
                            )
                elif node.module == "uuid":
                    for alias in node.names:
                        if alias.name in {"uuid1", "uuid4"}:
                            yield ctx.finding(
                                self.rule_id,
                                node,
                                f"uuid.{alias.name} is nondeterministic; "
                                "derive identifiers from the run seed",
                            )
            elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                base, attr = node.value.id, node.attr
                if base in os_aliases and attr == "urandom":
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        "os.urandom draws OS entropy; use a seeded "
                        "random.Random",
                    )
                elif attr == "SystemRandom":
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        "SystemRandom is not seedable; use random.Random",
                    )
                elif base in uuid_aliases and attr in {"uuid1", "uuid4"}:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"uuid.{attr} is nondeterministic; derive "
                        "identifiers from the run seed",
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_time_seed(ctx, node, time_aliases)

    def _check_time_seed(
        self, ctx: ModuleContext, call: ast.Call, time_aliases: set[str]
    ) -> Iterator[Finding]:
        """Flag ``Random(time.time())`` / ``rng.seed(time.time_ns())``."""
        func = call.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else None
        )
        if name not in {"Random", "seed"}:
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for sub in ast.walk(arg):
                if (
                    isinstance(sub, ast.Attribute)
                    and isinstance(sub.value, ast.Name)
                    and sub.value.id in time_aliases
                    and sub.attr in _TIME_SOURCES
                ):
                    yield ctx.finding(
                        self.rule_id,
                        sub,
                        f"seeding from time.{sub.attr} makes runs "
                        "unrepeatable; take the seed as a parameter",
                    )
