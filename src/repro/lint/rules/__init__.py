"""Rule registry for repro-lint.

Each rule is a class with a ``rule_id``, a one-line ``summary``, and a
``check(ctx)`` generator yielding :class:`~repro.lint.findings.Finding`
records for one parsed module.  Rules register themselves via the
:func:`register` decorator; :func:`all_rules` instantiates the full
registry in rule-id order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator, Type

from ..context import ModuleContext
from ..findings import Finding


class Rule(ABC):
    """One static-analysis check."""

    rule_id: str
    summary: str

    @abstractmethod
    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for ``ctx``."""


_REGISTRY: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _REGISTRY[cls.rule_id] = cls
    return cls


def all_rules() -> list[Rule]:
    """Instantiate every registered rule, sorted by id."""
    # Import rule modules for their registration side effects.
    from . import fieldsafety, generic, layering, randomness, secrecy  # noqa: F401

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> list[str]:
    from . import fieldsafety, generic, layering, randomness, secrecy  # noqa: F401

    return sorted(_REGISTRY)
