"""RL003 — no float coercion of field elements.

Field elements are integer encodings in GF(2^kappa) or GF(p); any trip
through Python floats (``float(x)``, true division of ``.value``
encodings, mixing with float literals) silently destroys algebraic
structure — ``(a / b) * b != a`` once rounding enters.  The rule is
heuristic: it tracks names annotated as ``FieldElement`` (parameters,
``x: FieldElement = ...`` assignments), names bound from field-element
producers (``field.element(...)``, ``field.zero()``, ...), and a small
naming convention (``fe``, ``*_fe``, ``*_elem``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..context import ModuleContext
from ..findings import Finding
from . import Rule, register

_FE_NAME_RE = re.compile(r"(^|_)(fe|felem|elem)$")

#: Field methods whose return value is a FieldElement.
_FE_PRODUCERS = {
    "element",
    "zero",
    "one",
    "random",
    "random_nonzero",
    "inverse",
}


def _annotation_is_field_element(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "FieldElement"
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "FieldElement"
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        return annotation.value.strip("'\"") == "FieldElement"
    return False


def _field_element_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names statically known (or conventionally named) as field elements."""
    names: set[str] = set()
    args = func.args
    for arg in [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
        *filter(None, [args.vararg, args.kwarg]),
    ]:
        if _annotation_is_field_element(arg.annotation) or _FE_NAME_RE.search(
            arg.arg
        ):
            names.add(arg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _annotation_is_field_element(node.annotation):
                names.add(node.target.id)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if _FE_NAME_RE.search(target.id):
                names.add(target.id)
            elif (
                isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr in _FE_PRODUCERS
            ):
                names.add(target.id)
    return names


def _is_fe_expr(node: ast.expr, fe_names: set[str]) -> bool:
    """``fe`` or ``fe.value`` for a tracked name."""
    if isinstance(node, ast.Name):
        return node.id in fe_names
    if isinstance(node, ast.Attribute) and node.attr == "value":
        return isinstance(node.value, ast.Name) and node.value.id in fe_names
    return False


def _is_fe_value_attr(node: ast.expr, fe_names: set[str]) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "value"
        and isinstance(node.value, ast.Name)
        and node.value.id in fe_names
    )


@register
class FloatOnFieldElementRule(Rule):
    """RL003: float arithmetic must never touch field-element values."""

    rule_id = "RL003"
    summary = (
        "float()/true-division/float-literal arithmetic on field-element "
        "values destroys GF structure; use field ops or // on encodings"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            fe_names = _field_element_names(func)
            if not fe_names:
                continue
            yield from self._check_function(ctx, func, fe_names)

    def _check_function(
        self,
        ctx: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        fe_names: set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(func):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
                and len(node.args) == 1
                and _is_fe_expr(node.args[0], fe_names)
            ):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "float() on a field element loses the GF encoding; "
                    "keep arithmetic in the field",
                )
            elif isinstance(node, ast.BinOp):
                yield from self._check_binop(ctx, node, fe_names)

    def _check_binop(
        self, ctx: ModuleContext, node: ast.BinOp, fe_names: set[str]
    ) -> Iterator[Finding]:
        left, right = node.left, node.right
        if isinstance(node.op, ast.Div) and (
            _is_fe_value_attr(left, fe_names) or _is_fe_value_attr(right, fe_names)
        ):
            yield ctx.finding(
                self.rule_id,
                node,
                "true division on a field-element .value encoding yields a "
                "float; use // or the field's div()",
            )
            return
        float_const = any(
            isinstance(op, ast.Constant) and isinstance(op.value, float)
            for op in (left, right)
        )
        fe_operand = any(_is_fe_expr(op, fe_names) for op in (left, right))
        if float_const and fe_operand:
            yield ctx.finding(
                self.rule_id,
                node,
                "mixing a float literal with a field element; field "
                "arithmetic is exact — floats are not",
            )
