"""SARIF 2.1.0 output for repro-lint.

Emits the minimal, schema-valid subset that code-scanning UIs ingest:
one run, the full rule catalogue (per-file rules, the flow rules, and
the ``RL000`` parse-error pseudo-rule) under ``tool.driver.rules``, and
one ``result`` per finding.  Baselined findings are included with an
``external`` suppression marker so dashboards show them as known
rather than new.

:func:`validate_sarif` is a dependency-free structural validator used
by the tests (and usable by callers) — it checks the invariants the
2.1.0 schema imposes on the subset we emit, without requiring
``jsonschema`` at runtime.
"""

from __future__ import annotations

from typing import Any, Iterable

from .engine import LintResult
from .findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-lint"
TOOL_URI = "https://github.com/anonchan-repro/anonchan-repro"


def _rule_catalogue() -> list[dict[str, Any]]:
    from .flow import FLOW_RULES
    from .project import PARSE_ERROR_RULE
    from .rules import all_rules

    rules: list[dict[str, Any]] = [
        {
            "id": PARSE_ERROR_RULE,
            "name": "parse-error",
            "shortDescription": {"text": "File failed to parse."},
        }
    ]
    for rule in all_rules():
        rules.append(
            {
                "id": rule.rule_id,
                "shortDescription": {"text": rule.summary},
            }
        )
    for rule_id, (name, description) in sorted(FLOW_RULES.items()):
        rules.append(
            {
                "id": rule_id,
                "name": name,
                "shortDescription": {"text": description},
            }
        )
    return rules


def _result(
    finding: Finding, rule_index: dict[str, int], baselined: bool
) -> dict[str, Any]:
    result: dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": max(finding.col, 1),
                    },
                }
            }
        ],
    }
    if finding.rule in rule_index:
        result["ruleIndex"] = rule_index[finding.rule]
    if baselined:
        result["suppressions"] = [
            {"kind": "external", "justification": "listed in the committed baseline"}
        ]
    return result


def to_sarif(result: LintResult) -> dict[str, Any]:
    """Render one lint run as a SARIF 2.1.0 log dict."""
    rules = _rule_catalogue()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = [
        _result(f, rule_index, baselined=False) for f in result.findings
    ]
    results += [
        _result(f, rule_index, baselined=True) for f in result.baselined
    ]
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri": TOOL_URI,
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "originalUriBaseIds": {
                    "SRCROOT": {"description": {"text": "repository root"}}
                },
                "results": results,
            }
        ],
    }


def validate_sarif(doc: Any) -> list[str]:
    """Structural 2.1.0 validation of the subset :func:`to_sarif` emits.

    Returns a list of problems; an empty list means the document passes
    every invariant checked.  Deliberately dependency-free — the test
    suite additionally cross-checks against ``jsonschema`` when that
    package is available.
    """
    problems: list[str] = []

    def check(cond: bool, message: str) -> bool:
        if not cond:
            problems.append(message)
        return cond

    if not check(isinstance(doc, dict), "document must be an object"):
        return problems
    check(doc.get("version") == SARIF_VERSION, "version must be '2.1.0'")
    runs = doc.get("runs")
    if not check(
        isinstance(runs, list) and len(runs) >= 1, "runs must be a non-empty array"
    ):
        return problems
    for ri, run in enumerate(runs):
        where = f"runs[{ri}]"
        if not check(isinstance(run, dict), f"{where} must be an object"):
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(run.get("tool"), dict) else None
        if not check(
            isinstance(driver, dict) and isinstance(driver.get("name"), str),
            f"{where}.tool.driver.name is required",
        ):
            continue
        rules = driver.get("rules", [])
        rule_ids: list[str] = []
        if check(isinstance(rules, list), f"{where} driver.rules must be an array"):
            for qi, rule in enumerate(rules):
                rw = f"{where}.tool.driver.rules[{qi}]"
                if not check(isinstance(rule, dict), f"{rw} must be an object"):
                    continue
                rid = rule.get("id")
                if check(isinstance(rid, str) and rid, f"{rw}.id must be a string"):
                    rule_ids.append(rid)
            check(
                len(rule_ids) == len(set(rule_ids)),
                f"{where} rule ids must be unique",
            )
        results = run.get("results", [])
        if not check(isinstance(results, list), f"{where}.results must be an array"):
            continue
        for si, res in enumerate(results):
            rw = f"{where}.results[{si}]"
            if not check(isinstance(res, dict), f"{rw} must be an object"):
                continue
            rid = res.get("ruleId")
            check(isinstance(rid, str) and bool(rid), f"{rw}.ruleId must be a string")
            if rule_ids and isinstance(rid, str):
                check(rid in rule_ids, f"{rw}.ruleId {rid!r} not in driver.rules")
            index = res.get("ruleIndex")
            if index is not None:
                check(
                    isinstance(index, int)
                    and 0 <= index < len(rule_ids)
                    and rule_ids[index] == rid,
                    f"{rw}.ruleIndex must point at the ruleId entry",
                )
            message = res.get("message")
            check(
                isinstance(message, dict) and isinstance(message.get("text"), str),
                f"{rw}.message.text is required",
            )
            level = res.get("level")
            if level is not None:
                check(
                    level in ("none", "note", "warning", "error"),
                    f"{rw}.level must be a SARIF level",
                )
            check(
                _locations_ok(res.get("locations")),
                f"{rw}.locations must carry a physicalLocation with "
                "artifactLocation.uri and a 1-based region.startLine",
            )
    return problems


def _locations_ok(locations: Any) -> bool:
    if not isinstance(locations, list) or not locations:
        return False
    for loc in locations:
        if not isinstance(loc, dict):
            return False
        phys = loc.get("physicalLocation")
        if not isinstance(phys, dict):
            return False
        artifact = phys.get("artifactLocation")
        if not isinstance(artifact, dict) or not isinstance(artifact.get("uri"), str):
            return False
        region = phys.get("region")
        if region is not None:
            start = region.get("startLine") if isinstance(region, dict) else None
            if not isinstance(start, int) or start < 1:
                return False
    return True
