#!/usr/bin/env python3
"""Quickstart: an anonymous channel among five parties.

Five parties each send one message to a designated receiver P*; the
receiver learns the *multiset* of messages but nothing about who sent
what — even though one party actively tries to jam the channel.

Run:  python examples/quickstart.py [--trace trace.jsonl] [--profile out.folded]

With ``--trace`` the run is instrumented by :mod:`repro.obs`: the
span/round event stream is exported as JSONL and the per-phase report
is printed (CI validates that artifact against the trace schema).
With ``--profile`` the compute-layer op profiler rides along and the
collapsed-stack flamegraph (``component;op;phase count`` lines) is
written to the given path — feed it to any standard flamegraph tool.
"""

import argparse
import random
import sys
from typing import Sequence

from repro.core import run_anonchan, scaled_parameters
from repro.core.adversaries import jamming_material
from repro.vss import GGOR13_COST, IdealVSS


def main(argv: Sequence[str] = ()) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="instrument the run and export the event stream as JSONL",
    )
    parser.add_argument(
        "--profile", metavar="PATH", default=None,
        help="profile compute ops and write collapsed-stack flamegraph lines",
    )
    args = parser.parse_args(list(argv))

    tracer = None
    if args.trace is not None or args.profile is not None:
        # The profiler needs a tracer for phase attribution, so
        # --profile implies an (unexported) trace.
        from repro.obs import Tracer

        tracer = Tracer()
    profiler = None
    if args.profile is not None:
        from repro.obs import OpProfiler

        profiler = OpProfiler(tracer)

    # 1. Pick parameters: n parties, t < n/2 corruptions, laptop-scale
    #    dart-vector sizes (see repro.core.params for the paper-exact ones).
    params = scaled_parameters(n=5, d=8, num_checks=5, kappa=16)
    print(f"parameters: {params}")
    print(f"  vector length l={params.ell}, sparseness d={params.d}, "
          f"threshold {params.threshold_count} occurrences")

    # 2. Plug in a linear VSS. The ideal backend with the GGOR13 cost
    #    profile mirrors the paper's headline configuration: 21 sharing
    #    rounds, only TWO physical-broadcast rounds.
    vss = IdealVSS(params.field, params.n, params.t, cost=GGOR13_COST)

    # 3. Everyone has a message for the receiver (party 0).
    field = params.field
    messages = {
        0: field(1111),  # the receiver participates too
        1: field(2222),
        2: field(3333),
        3: field(2222),  # duplicates are fine: random tags keep them apart
        4: field(5555),
    }

    # 4. Party 4 is corrupted and commits a dense garbage vector — the
    #    classic DC-net jamming attack.
    rng = random.Random(7)
    attack = {4: jamming_material(params, rng)}

    result = run_anonchan(params, vss, messages, receiver=0, seed=42,
                          corrupt_materials=attack, tracer=tracer,
                          profiler=profiler)

    receiver_output = result.outputs[0]
    print(f"\nrounds used:            {result.metrics.rounds} "
          f"(= {vss.cost.share_rounds} VSS-share + 5)")
    print(f"broadcast rounds used:  {result.metrics.broadcast_rounds} "
          f"(the paper's headline: 2)")
    print(f"disqualified parties:   "
          f"{sorted(set(range(params.n)) - receiver_output.passed)}")
    print("\nreceiver's multiset Y (who sent what stays hidden):")
    for value, count in sorted(receiver_output.output.items()):
        print(f"  message {value}  x{count}")

    jammed = 4 not in receiver_output.passed
    print(f"\njammer caught by cut-and-choose: {jammed}")

    if args.trace is not None:
        from repro.obs import RunReport, write_jsonl

        count = write_jsonl(tracer.events, args.trace)
        print(f"\ntrace: {count} events -> {args.trace}")
        print(RunReport.from_events(tracer.events).render_text())

    if profiler is not None:
        from repro.obs import write_flamegraph

        count = write_flamegraph(profiler.records(), args.profile)
        total = profiler.total()
        attributed = profiler.attributed_fraction()
        print(f"\nprofile: {total} compute ops "
              f"({attributed:.1%} attributed to a phase), "
              f"{count} flamegraph lines -> {args.profile}")


if __name__ == "__main__":
    main(sys.argv[1:])
