#!/usr/bin/env python3
"""Scaling study: the paper's headline numbers as a function of n.

Prints, for growing committees:

- measured rounds (constant: r_VSS-share + 5) and physical-broadcast
  rounds (constant: 2 with the GGOR13 VSS profile);
- the analytic comparison against Zhang'11 and PW96 (who overtakes whom
  and where);
- measured wire traffic, the cost the paper explicitly trades for
  speed.

Run:  python examples/scaling_study.py
"""

from repro.analysis import comparison_table
from repro.core import AnonymousChannel, scaled_parameters
from repro.vss import RB89_COST


def measured_section() -> None:
    print("measured on the simulator (scaled parameters, GGOR13 profile):")
    print(f"  {'n':>3} {'rounds':>7} {'broadcasts':>11} "
          f"{'messages':>9} {'field elems':>12}")
    for n in (3, 4, 5, 6):
        params = scaled_parameters(n=n, d=6, num_checks=3, kappa=16, margin=6)
        chan = AnonymousChannel(n=n, params=params)
        report = chan.send({i: 100 + i for i in range(n)}, seed=n)
        assert report.received(100) == 1  # sanity: delivery worked
        print(f"  {n:>3} {report.rounds:>7} {report.broadcast_rounds:>11} "
              f"{report.messages_sent:>9} {report.field_elements:>12}")
    print("  -> rounds and broadcasts are flat in n; bandwidth is the")
    print("     price (the paper: compilable away via [BFO12]).\n")


def analytic_section() -> None:
    print("analytic round comparison (RB89 VSS, 7 sharing rounds):")
    print(f"  {'n':>3} {'ours':>6} {'Zhang11':>8} {'PW96':>6} {'vABH03*':>8}")
    for n in (5, 9, 13, 21, 31, 51):
        table = {e.protocol: e.rounds for e in comparison_table(n, RB89_COST)}
        print(f"  {n:>3} {table['GGOR14 (this paper)']:>6} "
              f"{table['Zhang11']:>8} {table['PW96']:>6} "
              f"{table['vABH03']:>8}")
    print("  (*vABH03 is constant-round but only 1/2-reliable per run)")
    print("  -> PW96 grows quadratically; ours overtakes it from n~9 and")
    print("     stays 20x below Zhang'11 at every n.")


def main() -> None:
    measured_section()
    analytic_section()


if __name__ == "__main__":
    main()
