#!/usr/bin/env python3
"""Anonymous voting over the channel, with a double-voting cheater.

Seven committee members vote YES/NO to a tallier.  The anonymous
channel guarantees:

- **Anonymity** — the tallier learns the tally, not the ballots' owners.
- **Non-malleability / |Y| <= n** — each member contributes at most one
  ballot.  A cheater who commits a dart vector carrying *two* ballots
  (an improper vector) is caught by the cut-and-choose proof with
  probability 1 - 2^-num_checks and disqualified.

Run:  python examples/anonymous_voting.py
"""

import random

from repro.core import run_anonchan, scaled_parameters
from repro.core.adversaries import guessing_cheater_material
from repro.vss import IdealVSS

YES, NO = 0xAA, 0xBB


def main() -> None:
    params = scaled_parameters(n=7, d=8, num_checks=6, kappa=16)
    vss = IdealVSS(params.field, params.n, params.t)
    f = params.field

    # Ballots: the tallier is party 0 and votes too.
    ballots = {0: YES, 1: YES, 2: NO, 3: YES, 4: NO, 5: YES, 6: NO}
    messages = {pid: f(v) for pid, v in ballots.items()}

    # Party 6 tries to stuff the ballot box: one dart vector carrying
    # *two* ballots (half its darts say YES, half say NO -> if it
    # survived, it would count twice).
    rng = random.Random(2024)
    stuffer = guessing_cheater_material(params, [f(YES), f(NO)], rng)

    result = run_anonchan(
        params, vss, messages, receiver=0, seed=11,
        corrupt_materials={6: stuffer},
    )
    out = result.outputs[0]

    print(f"votes cast: {len(messages)} members")
    caught = sorted(set(range(params.n)) - out.passed)
    print(f"disqualified by cut-and-choose: {caught} "
          f"(survival chance was {params.cheater_survival_bound():.3f})")

    yes = out.output.get(YES, 0)
    no = out.output.get(NO, 0)
    print(f"\ntally: YES={yes}  NO={no}  (total {yes + no} <= n={params.n})")
    print("the tally excludes the stuffer's ballots; honest ballots are")
    print("all present, and the tallier has no idea who voted what.")

    honest_yes = sum(1 for pid, v in ballots.items() if v == YES and pid != 6)
    honest_no = sum(1 for pid, v in ballots.items() if v == NO and pid != 6)
    assert (yes, no) == (honest_yes, honest_no) or 6 in out.passed
    print("\nresult verified against the honest ballots.")


if __name__ == "__main__":
    main()
