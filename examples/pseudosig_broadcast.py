#!/usr/bin/env python3
"""Section 4 end-to-end: broadcast without a broadcast channel.

1. **Setup phase** (physical broadcast available): every party's
   pseudosignature keys are established through the anonymous channel —
   constant rounds, and with the GGOR13 VSS only *two* physical
   broadcast rounds in total (PW96's setup needed Omega(n^2)).
2. **Main phase** (point-to-point only): any party can now broadcast by
   running Dolev–Strong authenticated agreement with pseudosignatures —
   we run several broadcasts, including one with silently failing
   parties, and verify agreement each time.

Run:  python examples/pseudosig_broadcast.py
"""

import random

from repro.byzantine import SimulatedBroadcastChannel
from repro.network import SilentAdversary


def main() -> None:
    n, t = 7, 3  # t < n/2: beyond any unauthenticated protocol's reach
    print(f"committee of n={n}, tolerating t={t} corruptions (t < n/2)\n")

    channel = SimulatedBroadcastChannel(n=n, t=t)
    cost = channel.setup(random.Random(4))
    print("setup phase (uses the physical broadcast channel):")
    print(f"  rounds:                  {cost.rounds} "
          f"(constant; PW96 needs Omega(n^2))")
    print(f"  physical broadcasts:     {cost.broadcast_rounds} "
          f"(the paper's headline figure)")
    print(f"  anonymous-channel calls: {cost.anonchan_invocations} "
          f"(all in parallel)\n")

    print("main phase (secure pairwise channels ONLY):")
    for sender, value in ((0, "commit block #1"), (5, "leader=party-3")):
        result = channel.broadcast(sender, value)
        decisions = set(result.outputs.values())
        print(f"  P{sender} broadcasts {value!r}: "
              f"{len(result.outputs)} honest parties decided "
              f"{decisions} in {result.metrics.rounds} rounds, "
              f"physical broadcasts used: {result.metrics.broadcast_rounds}")
        assert decisions == {value}

    # Now with t parties crashing mid-protocol.
    result = channel.broadcast(
        1, "budget=42", adversary=SilentAdversary({4, 5, 6})
    )
    decisions = {result.outputs[p] for p in range(4)}
    print(f"  P1 broadcasts 'budget=42' with parties 4,5,6 crashed: "
          f"honest decisions {decisions}")
    assert decisions == {"budget=42"}

    print("\nagreement held every time; the physical broadcast channel was")
    print("never touched after setup.")


if __name__ == "__main__":
    main()
