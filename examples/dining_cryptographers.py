#!/usr/bin/env python3
"""The dining cryptographers, 2014 edition.

Chaum's story: three cryptographers finish dinner and learn the bill
has been paid.  They want to know whether one of *them* paid (rather
than the NSA) without revealing who.  The classic DC-net answers this —
until a disruptive participant XORs garbage into the channel and nobody
can tell who did it.

This example runs both:

1. the original DC-net [Cha88] with a jammer — the message is destroyed
   untraceably;
2. the paper's AnonChan — the jammer's vector fails the cut-and-choose
   sparseness proof, the jammer is *publicly disqualified*, and the
   payer's message goes through, still anonymously.

Run:  python examples/dining_cryptographers.py
"""

import random

from repro.baselines import jamming_tamper, run_dcnet
from repro.baselines.dcnet import dcnet_party_program
from repro.core import run_anonchan, scaled_parameters
from repro.core.adversaries import jamming_material
from repro.fields import gf2k
from repro.network import TamperingAdversary
from repro.vss import IdealVSS

I_PAID = 0x1CED  # the message the payer whispers into the channel


def classic_dcnet_with_jammer() -> None:
    print("== Act 1: the classic DC-net [Cha88] ==")
    f = gf2k(16)
    n, num_slots = 4, 8  # three cryptographers + one waiter relaying
    payer, slot = 1, 3
    rng = random.Random(99)

    jammer_prog = dcnet_party_program(
        3, n, f, num_slots, None, None, random.Random((5 << 10) | 3)
    )
    adversary = TamperingAdversary(
        {3}, {3: jammer_prog}, jamming_tamper(f, num_slots, rng)
    )
    result = run_dcnet(
        f, n, senders={payer: (f(I_PAID), slot)}, num_slots=num_slots,
        seed=5, adversary=adversary,
    )
    slots = result.outputs[0].slots
    got = slots[slot]
    print(f"  slot {slot} reads {got.value:#x} "
          f"(expected {I_PAID:#x}) -> message "
          f"{'survived' if got.value == I_PAID else 'DESTROYED'}")
    print("  ...and the transcript is a perfectly uniform mess: the jammer")
    print("  cannot be identified.  Dinner ends in suspicion.\n")


def anonchan_with_jammer() -> None:
    print("== Act 2: the same dinner over AnonChan (this paper) ==")
    params = scaled_parameters(n=4, d=8, num_checks=5, kappa=16)
    vss = IdealVSS(params.field, params.n, params.t)
    f = params.field

    # Everyone sends; non-payers send the agreed "not me" value.
    NOT_ME = 0x0FF
    messages = {pid: f(NOT_ME) for pid in range(4)}
    messages[1] = f(I_PAID)

    rng = random.Random(123)
    result = run_anonchan(
        params, vss, messages, receiver=0, seed=7,
        corrupt_materials={3: jamming_material(params, rng)},
    )
    out = result.outputs[0]
    caught = sorted(set(range(params.n)) - out.passed)
    print(f"  cut-and-choose disqualified: parties {caught}")
    paid = out.output.get(I_PAID, 0)
    print(f"  'I paid' received {paid} time(s); "
          f"'not me' received {out.output.get(NOT_ME, 0)} time(s)")
    print("  someone at the table paid — and nobody knows who.  QED.\n")


if __name__ == "__main__":
    classic_dcnet_with_jammer()
    anonchan_with_jammer()
