"""SARIF 2.1.0 output: structure, validation, CLI round-trip."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths
from repro.lint.sarif import SARIF_VERSION, to_sarif, validate_sarif

FIXTURES = Path(__file__).resolve().parent / "flow_fixtures"
FLOW_RULES = frozenset(
    {"RL201", "RL202", "RL203", "RL210", "RL301", "RL302", "RL303"}
)

# Hand-written subset of the official SARIF 2.1.0 JSON Schema covering
# every property we emit; used with jsonschema when available.
SARIF_SUBSET_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": "2.1.0"},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "name": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "columnKind": {
                        "enum": ["utf16CodeUnits", "unicodeCodePoints"]
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "ruleIndex": {"type": "integer", "minimum": 0},
                                "level": {
                                    "enum": ["none", "note", "warning", "error"]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {"text": {"type": "string"}},
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "required": ["artifactLocation"],
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "required": ["uri"],
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            }
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                                "suppressions": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["kind"],
                                        "properties": {
                                            "kind": {
                                                "enum": [
                                                    "inSource",
                                                    "external",
                                                ]
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


@pytest.fixture(scope="module")
def flow_result():
    config = LintConfig(select=FLOW_RULES, use_baseline=False, flow=True)
    return lint_paths([FIXTURES], config)


def test_sarif_document_shape(flow_result):
    doc = to_sarif(flow_result)
    assert doc["version"] == SARIF_VERSION
    run = doc["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    # Classic rules, flow rules, and the parse-error pseudo-rule.
    assert "RL000" in rule_ids
    assert "RL001" in rule_ids
    assert set(FLOW_RULES) <= set(rule_ids)
    assert len(run["results"]) == len(flow_result.findings)
    for result in run["results"]:
        assert result["ruleId"] in rule_ids
        assert rule_ids[result["ruleIndex"]] == result["ruleId"]


def test_sarif_structural_validator_accepts_output(flow_result):
    assert validate_sarif(to_sarif(flow_result)) == []


def test_sarif_validates_against_2_1_0_schema(flow_result):
    jsonschema = pytest.importorskip("jsonschema")
    jsonschema.validate(to_sarif(flow_result), SARIF_SUBSET_SCHEMA)


def test_sarif_baselined_findings_carry_suppressions(flow_result, tmp_path):
    from repro.lint import write_baseline

    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, flow_result.findings)
    config = LintConfig(select=FLOW_RULES, flow=True, baseline_path=baseline)
    result = lint_paths([FIXTURES], config)
    doc = to_sarif(result)
    suppressed = [
        r for r in doc["runs"][0]["results"] if r.get("suppressions")
    ]
    assert len(suppressed) == len(flow_result.findings)
    assert all(
        s["kind"] == "external"
        for r in suppressed
        for s in r["suppressions"]
    )
    assert validate_sarif(doc) == []


@pytest.mark.parametrize(
    "mutate, expected_fragment",
    [
        (lambda d: d.update(version="2.0.0"), "version"),
        (lambda d: d.update(runs=[]), "runs"),
        (
            lambda d: d["runs"][0]["results"][0].pop("message"),
            "message.text",
        ),
        (
            lambda d: d["runs"][0]["results"][0].update(ruleId="RL999"),
            "not in driver.rules",
        ),
        (
            lambda d: d["runs"][0]["results"][0]["locations"][0][
                "physicalLocation"
            ]["region"].update(startLine=0),
            "locations",
        ),
    ],
)
def test_sarif_validator_rejects_corruption(
    flow_result, mutate, expected_fragment
):
    doc = to_sarif(flow_result)
    assert doc["runs"][0]["results"], "need at least one result to corrupt"
    mutate(doc)
    problems = validate_sarif(doc)
    assert problems
    assert any(expected_fragment in p for p in problems)


def test_cli_sarif_output(capsys):
    from repro.lint.cli import main

    code = main(
        [
            str(FIXTURES),
            "--flow",
            "--format",
            "sarif",
            "--no-baseline",
            "--select",
            ",".join(sorted(FLOW_RULES)),
        ]
    )
    assert code == 1  # findings exist
    doc = json.loads(capsys.readouterr().out)
    assert validate_sarif(doc) == []
    assert doc["runs"][0]["results"]
