"""Whole-program flow analysis: fixture-driven end-to-end tests.

The fixture modules under ``flow_fixtures/`` carry their own
``taint-spec.toml`` (auto-discovered), so every detection asserted here
is independent of the repo-root spec.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths, write_baseline

FIXTURES = Path(__file__).resolve().parent / "flow_fixtures"
FLOW_RULES = frozenset(
    {"RL201", "RL202", "RL203", "RL210", "RL301", "RL302", "RL303"}
)


def run_fixtures(**overrides):
    config = LintConfig(
        select=FLOW_RULES, use_baseline=False, flow=True, **overrides
    )
    return lint_paths([FIXTURES], config)


@pytest.fixture(scope="module")
def result():
    return run_fixtures()


def findings_in(result, filename, rule=None):
    return [
        f
        for f in result.findings
        if f.path.endswith(filename) and (rule is None or f.rule == rule)
    ]


# -- taint ------------------------------------------------------------------


def test_direct_source_to_sink(result):
    found = findings_in(result, "direct_leak.py", "RL201")
    assert len(found) == 1
    message = found[0].message
    assert "deal_shares" in message  # source named in the path
    assert "->" in message  # rendered source -> sink path
    assert "print" in message


def test_interprocedural_leak(result):
    found = findings_in(result, "via_helper.py", "RL202")
    assert len(found) == 1
    message = found[0].message
    assert "deal_shares" in message
    assert "emit" in message  # the crossed function boundary
    # The finding sits at the call site, not inside the helper.
    assert found[0].line == 14


def test_dataclass_field_source(result):
    found = findings_in(result, "via_field.py")
    assert [f.rule for f in found] == ["RL201"]
    assert "Share.y" in found[0].message
    # show_public reads only the public attr: exactly one finding.


def test_exception_message_leak(result):
    found = findings_in(result, "exception_leak.py", "RL203")
    assert len(found) == 1
    assert "ValueError" in found[0].message
    assert "deal_shares" in found[0].message


def test_sanitized_paths_stay_clean(result):
    assert findings_in(result, "sanitized_ok.py") == []


# -- layering ---------------------------------------------------------------


def test_layering_violation_over_call_edge(result):
    found = findings_in(result, "layer_low.py", "RL210")
    assert len(found) == 1
    message = found[0].message
    assert "low" in message and "high" in message
    assert "layer_high.render" in message


def test_layering_allowed_calls_exemption(result):
    # sanctioned_upcall makes the same call but is listed in
    # [layering] allowed_calls; only bad_upcall is flagged.
    found = findings_in(result, "layer_low.py", "RL210")
    assert all(f.line != 15 for f in found)


def test_downward_call_is_allowed(result):
    assert findings_in(result, "layer_high.py") == []


# -- concurrency ------------------------------------------------------------


def test_mutable_global_in_party_code(result):
    found = findings_in(result, "conc_global.py", "RL301")
    assert len(found) == 1
    message = found[0].message
    assert "CACHE" in message
    assert "party_program" in message  # reachability path
    # ALLOWED_CACHE (allowed_globals) and SLOT (ContextVar) are exempt.
    assert "ALLOWED_CACHE" not in message


def test_blocking_calls_in_party_code(result):
    found = findings_in(result, "conc_blocking.py", "RL302")
    assert len(found) == 2
    direct = [f for f in found if "time.sleep" in f.message]
    via_helper = [f for f in found if "time.time" in f.message]
    assert len(direct) == 1 and len(via_helper) == 1
    # The helper-reached call carries the full path from the root.
    assert "party_program -> " in via_helper[0].message
    assert "helper" in via_helper[0].message


def test_cross_party_aliasing(result):
    found = findings_in(result, "conc_alias.py", "RL303")
    assert len(found) == 1
    message = found[0].message
    assert "inbox" in message
    assert "mutates" in message
    # build_clean constructs a fresh list per party: not flagged.
    assert found[0].line == 14


# -- machinery interplay ----------------------------------------------------


def test_inline_suppression_applies_to_flow_rules(result):
    assert findings_in(result, "suppressed_leak.py") == []
    assert result.suppressed >= 1


def test_baseline_absorbs_flow_findings(tmp_path):
    first = run_fixtures()
    assert first.findings
    baseline = tmp_path / "baseline.json"
    write_baseline(baseline, first.findings)
    second = lint_paths(
        [FIXTURES],
        LintConfig(
            select=FLOW_RULES,
            flow=True,
            baseline_path=baseline,
        ),
    )
    assert second.findings == []
    assert len(second.baselined) == len(first.findings)
    assert second.exit_code == 0


def test_detection_count_meets_floor(result):
    """The fixtures demonstrate at least six distinct detections."""
    rules = {f.rule for f in result.findings}
    assert rules >= {"RL201", "RL202", "RL203", "RL210", "RL301", "RL302", "RL303"}


def test_flow_off_by_default():
    config = LintConfig(select=FLOW_RULES, use_baseline=False)
    result = lint_paths([FIXTURES], config)
    assert result.findings == []


def test_select_narrows_flow_rules():
    config = LintConfig(
        select=frozenset({"RL210"}), use_baseline=False, flow=True
    )
    result = lint_paths([FIXTURES], config)
    assert {f.rule for f in result.findings} == {"RL210"}
