"""One positive and one negative fixture per lint rule."""

from __future__ import annotations

import textwrap


def _src(snippet: str) -> str:
    return textwrap.dedent(snippet).lstrip("\n")


# -- RL001: global RNG ----------------------------------------------------

RL001_BAD = _src(
    """
    from __future__ import annotations
    import random

    def sample() -> int:
        return random.randint(0, 7)
    """
)

RL001_GOOD = _src(
    """
    from __future__ import annotations
    import random

    def sample(rng: random.Random) -> int:
        return rng.randint(0, 7)
    """
)


def test_rl001_flags_global_rng(run_rules):
    findings = run_rules(RL001_BAD, "RL001")
    assert [f.rule for f in findings] == ["RL001"]
    assert "module-global RNG" in findings[0].message


def test_rl001_allows_threaded_instance(run_rules):
    assert run_rules(RL001_GOOD, "RL001") == []


def test_rl001_flags_from_import(run_rules):
    source = _src(
        """
        from random import shuffle

        def mix(xs):
            shuffle(xs)
        """
    )
    findings = run_rules(source, "RL001")
    assert len(findings) == 1 and findings[0].line == 1


def test_rl001_allows_importing_random_class(run_rules):
    assert run_rules("from random import Random\n", "RL001") == []


# -- RL002: nondeterministic entropy --------------------------------------

RL002_BAD = _src(
    """
    import secrets

    def token() -> bytes:
        return secrets.token_bytes(16)
    """
)

RL002_GOOD = _src(
    """
    import random

    def token(rng: random.Random) -> bytes:
        return bytes(rng.randrange(256) for _ in range(16))
    """
)


def test_rl002_flags_secrets_import(run_rules):
    findings = run_rules(RL002_BAD, "RL002")
    assert findings and all(f.rule == "RL002" for f in findings)


def test_rl002_allows_seeded_random(run_rules):
    assert run_rules(RL002_GOOD, "RL002") == []


def test_rl002_flags_time_seed(run_rules):
    source = _src(
        """
        import random
        import time

        def make_rng() -> random.Random:
            return random.Random(time.time_ns())
        """
    )
    findings = run_rules(source, "RL002")
    assert len(findings) == 1
    assert "time.time_ns" in findings[0].message


def test_rl002_flags_os_urandom(run_rules):
    source = _src(
        """
        import os

        def pad() -> bytes:
            return os.urandom(32)
        """
    )
    assert len(run_rules(source, "RL002")) == 1


# -- RL003: float on field elements ---------------------------------------

RL003_BAD = _src(
    """
    from __future__ import annotations
    from repro.fields import FieldElement

    def midpoint(a: FieldElement, b: FieldElement) -> float:
        return (float(a) + float(b)) / 2
    """
)

RL003_GOOD = _src(
    """
    from __future__ import annotations
    from repro.fields import FieldElement

    def midpoint(a: FieldElement, b: FieldElement) -> FieldElement:
        return (a + b) * 2
    """
)


def test_rl003_flags_float_coercion(run_rules):
    findings = run_rules(RL003_BAD, "RL003")
    assert len(findings) == 2
    assert all("float" in f.message for f in findings)


def test_rl003_allows_field_arithmetic(run_rules):
    assert run_rules(RL003_GOOD, "RL003") == []


def test_rl003_flags_value_true_division(run_rules):
    source = _src(
        """
        def halve(x: FieldElement) -> int:
            return x.value / 2
        """
    )
    assert len(run_rules(source, "RL003")) == 1


def test_rl003_allows_plain_int_division(run_rules):
    # Probability bounds on plain ints are fine — only tracked
    # field-element names trigger the rule.
    source = _src(
        """
        def bound(n: int, d: int) -> float:
            return n / d
        """
    )
    assert run_rules(source, "RL003") == []


# -- RL004: secret flow ---------------------------------------------------

RL004_BAD = _src(
    """
    from __future__ import annotations

    def reconstruct(shares):
        print("debug:", shares)
        return sum(shares)
    """
)

RL004_GOOD = _src(
    """
    from __future__ import annotations

    def reconstruct(shares):
        print("reconstructing", len(shares), "shares-count")
        return sum(shares)
    """
)


def test_rl004_flags_printed_shares(run_rules):
    findings = run_rules(RL004_BAD, "RL004")
    assert len(findings) == 1
    assert "shares" in findings[0].message


def test_rl004_allows_len_of_secret(run_rules):
    assert run_rules(RL004_GOOD, "RL004") == []


def test_rl004_exempts_main_module(run_rules):
    assert run_rules(RL004_BAD, "RL004", rel_path="repro/__main__.py") == []


def test_rl004_exempts_main_guard(run_rules):
    source = _src(
        """
        def demo(pad):
            return pad

        if __name__ == "__main__":
            print(demo([1, 2]))
        """
    )
    # the call inside the guard mentions no secret name; add one:
    source += "    pads = demo([3])\n    print(pads)\n"
    assert run_rules(source, "RL004") == []


def test_rl004_flags_logging_sink(run_rules):
    source = _src(
        """
        import logging

        def deal(permutation):
            logging.info("perm=%s", permutation)
        """
    )
    assert len(run_rules(source, "RL004")) == 1


def test_rl004_flags_obs_event_sink(run_rules):
    source = _src(
        """
        from __future__ import annotations

        def instrument(tracer, shares):
            tracer.annotate("step", data=shares)
        """
    )
    findings = run_rules(source, "RL004")
    assert len(findings) == 1
    assert "obs event .annotate()" in findings[0].message


def test_rl004_allows_counts_in_obs_events(run_rules):
    source = _src(
        """
        from __future__ import annotations

        def instrument(tracer, shares):
            tracer.annotate("step", count=len(shares))
        """
    )
    assert run_rules(source, "RL004") == []


def test_rl004_flags_secret_in_span_attrs(run_rules):
    source = _src(
        """
        from __future__ import annotations

        def deal(tracer, permutation):
            with tracer.span("shuffle", order=permutation):
                pass
        """
    )
    findings = run_rules(source, "RL004")
    assert len(findings) == 1
    assert "obs event .span()" in findings[0].message


def test_rl004_flags_secret_in_run_start(run_rules):
    source = _src(
        """
        from __future__ import annotations

        def start(tracer, pads):
            tracer.run_start(material=pads)
        """
    )
    assert len(run_rules(source, "RL004")) == 1


def test_rl004_flags_secret_flowing_into_profiler_count(run_rules):
    source = _src(
        """
        from __future__ import annotations

        def deal(profiler, shares):
            profiler.count("shamir", "deal", shares)
        """
    )
    findings = run_rules(source, "RL004")
    assert len(findings) == 1
    assert ".count()" in findings[0].message


def test_rl004_flags_secret_flowing_into_profiler_observe(run_rules):
    source = _src(
        """
        from __future__ import annotations

        def deal(profiler, pad):
            profiler.observe("vec", "batch", pad)
        """
    )
    assert len(run_rules(source, "RL004")) == 1


def test_rl004_flags_secret_flowing_into_record_profile(run_rules):
    source = _src(
        """
        from __future__ import annotations

        def export(tracer, permutation):
            tracer.record_profile(permutation)
        """
    )
    assert len(run_rules(source, "RL004")) == 1


def test_rl004_flags_secret_flowing_into_record_message(run_rules):
    source = _src(
        """
        from __future__ import annotations

        def emit(tracer, rnd, sender, shares):
            tracer.record_message(rnd, sender, None, shares, 1)
        """
    )
    findings = run_rules(source, "RL004")
    assert len(findings) == 1
    assert "obs event .record_message()" in findings[0].message


def test_rl004_allows_sizes_in_record_message(run_rules):
    source = _src(
        """
        from __future__ import annotations

        def emit(tracer, rnd, sender, shares):
            tracer.record_message(rnd, sender, None, len(shares), 1)
        """
    )
    assert run_rules(source, "RL004") == []


def test_rl004_allows_len_of_secret_in_profiler_calls(run_rules):
    source = _src(
        """
        from __future__ import annotations

        def deal(profiler, shares):
            profiler.count("shamir", "deal", len(shares))
            profiler.observe("shamir", "deal_batch", len(shares))
        """
    )
    assert run_rules(source, "RL004") == []


# -- RL005: layering ------------------------------------------------------

RL005_BAD = "from repro.network.simulator import Simulator\n"
RL005_GOOD = "from repro.network import Program, RoundOutput\n"


def test_rl005_flags_simulator_import_from_core(run_rules):
    findings = run_rules(RL005_BAD, "RL005", rel_path="repro/core/chan.py")
    assert len(findings) == 1
    assert "repro.network" in findings[0].message


def test_rl005_allows_package_api(run_rules):
    assert run_rules(RL005_GOOD, "RL005", rel_path="repro/core/chan.py") == []


def test_rl005_allows_simulator_inside_network_layer(run_rules):
    assert (
        run_rules(RL005_BAD, "RL005", rel_path="repro/network/extra.py") == []
    )


def test_rl005_resolves_relative_imports(run_rules):
    source = "from ..network.simulator import Simulator\n"
    findings = run_rules(source, "RL005", rel_path="repro/vss/impl.py")
    assert len(findings) == 1


# -- RL101-RL103: generic hygiene ----------------------------------------


def test_rl101_flags_mutable_default(run_rules):
    source = "def f(xs=[]):\n    return xs\n"
    assert len(run_rules(source, "RL101")) == 1


def test_rl101_allows_none_default(run_rules):
    source = "def f(xs=None):\n    return xs or []\n"
    assert run_rules(source, "RL101") == []


def test_rl102_flags_bare_except(run_rules):
    source = "try:\n    pass\nexcept:\n    pass\n"
    assert len(run_rules(source, "RL102")) == 1


def test_rl102_allows_typed_except(run_rules):
    source = "try:\n    pass\nexcept ValueError:\n    pass\n"
    assert run_rules(source, "RL102") == []


def test_rl103_flags_missing_future_import(run_rules):
    source = "def f() -> int:\n    return 1\n"
    assert len(run_rules(source, "RL103")) == 1


def test_rl103_allows_future_import(run_rules):
    source = "from __future__ import annotations\n\ndef f() -> int:\n    return 1\n"
    assert run_rules(source, "RL103") == []


def test_rl103_skips_pure_reexport_modules(run_rules):
    source = "from repro.fields import FieldElement\n\n__all__ = ['FieldElement']\n"
    assert run_rules(source, "RL103") == []


# -- suppressions ---------------------------------------------------------


def test_line_suppression(run_rules):
    source = _src(
        """
        from __future__ import annotations
        import random

        def sample() -> int:
            return random.randint(0, 7)  # repro-lint: disable=RL001
        """
    )
    assert run_rules(source, "RL001") == []


def test_file_suppression(run_rules):
    source = "# repro-lint: disable-file=RL001\n" + RL001_BAD
    assert run_rules(source, "RL001") == []


def test_suppression_of_other_rule_does_not_hide(run_rules):
    source = RL001_BAD.replace(
        "random.randint(0, 7)",
        "random.randint(0, 7)  # repro-lint: disable=RL003",
    )
    assert len(run_rules(source, "RL001")) == 1
