"""CLI-level tests: JSON schema, baseline workflow, repo self-lint."""

from __future__ import annotations

import json

import pytest

from repro.lint import DEFAULT_BASELINE_NAME, load_baseline
from repro.lint.cli import JSON_SCHEMA_VERSION, main

from .conftest import REPO_ROOT

BAD_SOURCE = """\
from __future__ import annotations
import random

def sample() -> int:
    return random.randint(0, 7)
"""


@pytest.fixture
def bad_file(tmp_path):
    target = tmp_path / "repro" / "core" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text(BAD_SOURCE, encoding="utf-8")
    return target


def test_self_lint_repo_is_clean(capsys):
    """`python -m repro.lint src/repro` exits 0 on the repo itself."""
    src = REPO_ROOT / "src" / "repro"
    assert src.is_dir()
    exit_code = main([str(src), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert payload["findings"] == []
    assert payload["files_checked"] > 50


def test_self_lint_with_flow_is_clean(capsys):
    """`python -m repro lint --flow src/repro` exits 0 with an empty
    baseline: every true-positive flow finding in src/ is fixed."""
    src = REPO_ROOT / "src" / "repro"
    exit_code = main([str(src), "--flow", "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert exit_code == 0
    assert payload["findings"] == []
    assert payload["baselined"] == 0


def test_flowcheck_subcommand_forwards_to_lint_flow(capsys):
    from repro.__main__ import main as repro_main

    src = REPO_ROOT / "src" / "repro"
    assert repro_main(["flowcheck", str(src)]) == 0
    out = capsys.readouterr().out
    assert "0 finding(s)" in out


def test_list_rules_includes_flow_family(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL201", "RL202", "RL203", "RL210",
                    "RL301", "RL302", "RL303"):
        assert rule_id in out


def test_flow_spec_error_is_usage_error(bad_file, tmp_path, capsys):
    bad_spec = tmp_path / "spec.toml"
    bad_spec.write_text("[layering.allow]\ncore = [\"ghost\"]\n",
                        encoding="utf-8")
    code = main([str(bad_file), "--flow", "--no-baseline",
                 "--taint-spec", str(bad_spec)])
    assert code == 2
    assert "ghost" in capsys.readouterr().err


def test_json_output_schema(bad_file, capsys):
    exit_code = main([str(bad_file), "--format", "json", "--no-baseline"])
    assert exit_code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert set(payload) == {
        "version",
        "files_checked",
        "findings",
        "baselined",
        "suppressed",
        "counts",
    }
    (finding,) = payload["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "message"}
    assert finding["rule"] == "RL001"
    assert finding["line"] == 5
    assert payload["counts"] == {"RL001": 1}


def test_text_output_includes_location(bad_file, capsys):
    exit_code = main([str(bad_file), "--no-baseline"])
    out = capsys.readouterr().out
    assert exit_code == 1
    assert "bad.py:5:" in out and "RL001" in out


def test_baseline_roundtrip(bad_file, tmp_path, capsys):
    baseline = tmp_path / DEFAULT_BASELINE_NAME
    assert main([str(bad_file), "--write-baseline", "--baseline", str(baseline)]) == 0
    capsys.readouterr()
    entries = load_baseline(baseline)
    assert sum(entries.values()) == 1

    # Baselined finding no longer fails the run...
    assert main([str(bad_file), "--baseline", str(baseline)]) == 0
    # ...but --no-baseline surfaces it again.
    assert main([str(bad_file), "--no-baseline"]) == 1


def test_baseline_does_not_absorb_new_findings(bad_file, tmp_path, capsys):
    baseline = tmp_path / DEFAULT_BASELINE_NAME
    assert main([str(bad_file), "--write-baseline", "--baseline", str(baseline)]) == 0
    bad_file.write_text(
        BAD_SOURCE + "\n\ndef more() -> float:\n    return random.random()\n",
        encoding="utf-8",
    )
    assert main([str(bad_file), "--baseline", str(baseline)]) == 1


def test_select_and_ignore(bad_file, capsys):
    assert main([str(bad_file), "--select", "RL002", "--no-baseline"]) == 0
    assert main([str(bad_file), "--ignore", "RL001", "--no-baseline"]) == 0
    assert main([str(bad_file), "--select", "RL001", "--no-baseline"]) == 1


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005",
                    "RL101", "RL102", "RL103"):
        assert rule_id in out


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope.py")]) == 2
    assert "error" in capsys.readouterr().err


def test_syntax_error_reported_as_finding(tmp_path, capsys):
    target = tmp_path / "broken.py"
    target.write_text("def oops(:\n", encoding="utf-8")
    assert main([str(target), "--no-baseline", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["findings"][0]["rule"] == "RL000"
