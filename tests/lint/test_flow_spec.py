"""The flow spec: pattern language, validation, TOML subset parser."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.flow.spec import (
    CallPattern,
    FlowSpec,
    SpecError,
    _parse_toml_subset,
    parse_toml,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE_SPEC = Path(__file__).resolve().parent / "flow_fixtures" / "taint-spec.toml"


# -- pattern language -------------------------------------------------------


@pytest.mark.parametrize(
    "pattern, qualname, attr, name, expected",
    [
        ("print", None, None, "print", True),
        ("print", "a.b.print", None, None, True),
        ("print", None, "print", None, True),
        ("print", None, None, "println", False),
        ("*.debug", None, "debug", None, True),
        ("*.debug", "logging.Logger.debug", None, None, True),
        ("*.debug", None, "warning", None, False),
        ("socket.*", "socket.create_connection", None, None, True),
        ("socket.*", "socket", None, None, True),
        ("socket.*", "socketserver.serve", None, None, False),
        ("ShamirScheme.share", "repro.sharing.shamir.ShamirScheme.share", None, None, True),
        ("ShamirScheme.share", "OtherScheme.share", None, None, False),
        ("a.b.c", "a.b.c", None, None, True),
        ("a.b.c", "z.a.b.c", None, None, True),
        ("a.b.c", "a.b", None, None, False),
    ],
)
def test_call_pattern_matching(pattern, qualname, attr, name, expected):
    assert CallPattern(pattern).matches(qualname, attr, name) is expected


# -- spec validation --------------------------------------------------------


def test_layering_allow_must_reference_declared_layers():
    with pytest.raises(SpecError, match="undeclared layer"):
        FlowSpec.from_mapping(
            {
                "layering": {
                    "layers": {"core": ["repro.core"]},
                    "allow": {"core": ["ghost"]},
                }
            }
        )


def test_load_missing_file_raises_spec_error(tmp_path):
    with pytest.raises(SpecError, match="cannot read"):
        FlowSpec.load(tmp_path / "nope.toml")


def test_discover_walks_upward(tmp_path):
    (tmp_path / "taint-spec.toml").write_text(
        '[taint]\nsecret_tokens = ["pad"]\n', encoding="utf-8"
    )
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    spec = FlowSpec.discover(nested)
    assert spec is not None
    assert spec.taint.secret_tokens == frozenset({"pad"})


def test_repo_root_spec_loads():
    spec = FlowSpec.load(REPO_ROOT / "taint-spec.toml")
    assert spec.taint.source_calls.matches(None, None, "make_dart_vector") is None
    assert spec.taint.source_calls.matches(
        "repro.core.darts.make_dart_vector", None, None
    )
    assert spec.layering.layer_of("repro.lint.flow.graph") == "lint"
    assert spec.layering.layer_of("repro.__main__") == "cli"
    assert not spec.layering.edge_allowed("network", "core")


# -- bundled TOML subset parser ---------------------------------------------


@pytest.mark.parametrize("path", [REPO_ROOT / "taint-spec.toml", FIXTURE_SPEC])
def test_subset_parser_matches_tomllib(path):
    tomllib = pytest.importorskip("tomllib")
    text = path.read_text(encoding="utf-8")
    assert _parse_toml_subset(text, str(path)) == tomllib.loads(text)


def test_subset_parser_handles_comments_and_multiline_arrays():
    parsed = _parse_toml_subset(
        """
# leading comment
[a.b]
names = [
  "x",  # trailing comment
  "y#z",
]
flag = true
count = 3
""",
        "<test>",
    )
    assert parsed == {
        "a": {"b": {"names": ["x", "y#z"], "flag": True, "count": 3}}
    }


def test_subset_parser_rejects_garbage():
    with pytest.raises(SpecError, match="cannot parse"):
        _parse_toml_subset("not toml at all", "<test>")


def test_parse_toml_reports_filename_on_invalid_input():
    with pytest.raises(SpecError):
        parse_toml("key = {", "bad.toml")
