"""Fixture: sanctioned secret-to-public transitions — no findings."""

from __future__ import annotations

from direct_leak import deal_shares


def reconstruct(shares: list[int]) -> int:
    return sum(shares)


def run() -> None:
    shares = deal_shares(3)
    print("count:", len(shares))
    opened = reconstruct(shares)
    print("opened:", opened)
