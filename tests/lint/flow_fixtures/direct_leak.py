"""Fixture: a taint source flowing straight into a sink (RL201)."""

from __future__ import annotations


def deal_shares(n: int) -> list[int]:
    return list(range(n))


def run() -> None:
    shares = deal_shares(3)
    print("dealt", shares)
