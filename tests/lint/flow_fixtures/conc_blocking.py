"""Fixture: blocking/wall-clock calls in party-reachable code (RL302),
including one reached only through a helper (path-carrying message)."""

from __future__ import annotations

import time


def helper() -> float:
    return time.time()


def party_program(pid: int):
    time.sleep(0.001)
    helper()
    yield
