"""Fixture: a real RL201 silenced by an inline suppression comment."""

from __future__ import annotations

from direct_leak import deal_shares


def run() -> None:
    shares = deal_shares(3)
    print("dealt", shares)  # repro-lint: disable=RL201
