"""Fixture: secret material interpolated into an exception (RL203)."""

from __future__ import annotations

from direct_leak import deal_shares


def check() -> None:
    shares = deal_shares(3)
    if shares:
        raise ValueError(f"unexpected share {shares[0]}")
