"""Fixture: a secret dataclass field read reaching a sink (RL201),
while the public companion attribute stays clean.

The parameter is deliberately *not* secret-named: the detection must
come from the ``via_field.Share.y`` entry in [taint.sources] fields,
via the annotation-based local typing.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Share:
    x: int
    y: int


def show(rec: Share) -> None:
    print("y =", rec.y)


def show_public(rec: Share) -> None:
    print("x =", rec.x)
