"""Fixture: low layer calling up into the high layer (RL210), plus one
sanctioned upward edge exempted via [layering] allowed_calls."""

from __future__ import annotations

import layer_high


def bad_upcall() -> str:
    return layer_high.render("from low")


def sanctioned_upcall() -> str:
    return layer_high.render("allowed")


def base_value() -> int:
    return 7
