"""Fixture: one mutable object shared by every party program built in a
loop, mutated by the callee (RL303) — plus a clean per-party variant."""

from __future__ import annotations


def party_program(pid: int, inbox: list[int]):
    inbox.append(pid)
    yield


def build_aliased() -> list:
    inbox: list[int] = []
    return [party_program(pid, inbox) for pid in range(4)]


def build_clean() -> list:
    return [party_program(pid, []) for pid in range(4)]
