"""Fixture: a secret crossing a function boundary into a sink (RL202)."""

from __future__ import annotations

from direct_leak import deal_shares


def emit(values: list[int]) -> None:
    print("values:", values)


def run() -> None:
    shares = deal_shares(3)
    emit(shares)
