"""Fixture: mutable module globals touched by party code (RL301),
with the spec's two exemption mechanisms alongside."""

from __future__ import annotations

from contextvars import ContextVar

CACHE: dict[int, int] = {}

#: exempted by name in [concurrency] allowed_globals
ALLOWED_CACHE: dict[int, int] = {}

#: exempted by constructor in [concurrency] safe_global_types
SLOT: ContextVar[int] = ContextVar("slot", default=0)


def party_program(pid: int):
    CACHE[pid] = pid
    ALLOWED_CACHE[pid] = pid
    SLOT.set(pid)
    yield
