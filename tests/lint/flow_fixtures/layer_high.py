"""Fixture: the high layer; calling down into low is allowed."""

from __future__ import annotations

import layer_low


def render(text: str) -> str:
    return f"[{text}]"


def uses_low() -> int:
    return layer_low.base_value()
