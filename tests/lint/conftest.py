"""Shared helpers for the lint test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint import Finding, LintConfig, lint_file


@pytest.fixture
def run_rules(tmp_path):
    """Lint a source snippet as if it lived at a given package path.

    Returns the list of findings for one selected rule; the fake path
    (default ``repro/core/mod.py``) controls module-name-sensitive
    rules (RL004 __main__ exemption, RL005 layering).
    """

    def _run(
        source: str,
        rule: str,
        rel_path: str = "repro/core/mod.py",
    ) -> list[Finding]:
        target = tmp_path / rel_path
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
        config = LintConfig(select=frozenset({rule}), use_baseline=False)
        findings, _ = lint_file(target, config)
        return findings

    return _run


REPO_ROOT = Path(__file__).resolve().parents[2]
