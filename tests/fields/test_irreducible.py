"""Tests for GF(2)[x] polynomial arithmetic and irreducibility search."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import (
    gf2_degree,
    gf2_divmod,
    gf2_gcd,
    gf2_mod,
    gf2_mul,
    gf2_powmod,
    irreducible_polynomial,
    is_irreducible,
    poly_to_string,
)


class TestArithmetic:
    def test_degree(self):
        assert gf2_degree(0) == -1
        assert gf2_degree(1) == 0
        assert gf2_degree(0b1011) == 3

    def test_mul_known(self):
        # (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert gf2_mul(0b11, 0b11) == 0b101
        # x * (x^2 + x + 1) = x^3 + x^2 + x
        assert gf2_mul(0b10, 0b111) == 0b1110

    def test_mod(self):
        # x^4 mod (x^4 + x + 1) = x + 1
        assert gf2_mod(0b10000, 0b10011) == 0b11

    def test_mod_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf2_mod(0b101, 0)

    def test_divmod(self):
        q, r = gf2_divmod(0b10000, 0b10011)
        assert q == 1 and r == 0b11
        assert gf2_mul(q, 0b10011) ^ r == 0b10000

    def test_divmod_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            gf2_divmod(1, 0)

    def test_gcd(self):
        # gcd((x+1)(x^2+x+1), (x+1)x) = x+1
        a = gf2_mul(0b11, 0b111)
        b = gf2_mul(0b11, 0b10)
        assert gf2_gcd(a, b) == 0b11

    def test_powmod(self):
        m = 0b10011  # x^4 + x + 1
        assert gf2_powmod(0b10, 4, m) == 0b11  # x^4 = x + 1
        assert gf2_powmod(0b10, 15, m) == 1  # multiplicative order 15


class TestIrreducibility:
    def test_known_irreducible(self):
        for p in (0b11, 0b111, 0b1011, 0b10011, 0x11B):
            assert is_irreducible(p)

    def test_known_reducible(self):
        assert not is_irreducible(0b101)  # x^2 + 1 = (x+1)^2
        assert not is_irreducible(0b110)  # divisible by x
        assert not is_irreducible(0b10101)  # (x^2+x+1)^2

    def test_constants_not_irreducible(self):
        assert not is_irreducible(0)
        assert not is_irreducible(1)

    def test_search_returns_minimal(self):
        assert irreducible_polynomial(1) == 0b11
        assert irreducible_polynomial(2) == 0b111
        assert irreducible_polynomial(3) == 0b1011
        assert irreducible_polynomial(4) == 0b10011

    def test_search_bad_degree(self):
        with pytest.raises(ValueError):
            irreducible_polynomial(0)

    def test_all_default_moduli_verify(self):
        for k in range(1, 33):
            p = irreducible_polynomial(k)
            assert gf2_degree(p) == k
            assert is_irreducible(p)


class TestPrinting:
    def test_poly_to_string(self):
        assert poly_to_string(0) == "0"
        assert poly_to_string(1) == "1"
        assert poly_to_string(0b10) == "x"
        assert poly_to_string(0b10011) == "x^4 + x + 1"


@settings(max_examples=80)
@given(
    a=st.integers(min_value=0, max_value=2**12 - 1),
    b=st.integers(min_value=1, max_value=2**12 - 1),
)
def test_divmod_identity(a, b):
    q, r = gf2_divmod(a, b)
    assert gf2_mul(q, b) ^ r == a
    assert gf2_degree(r) < gf2_degree(b)


@settings(max_examples=80)
@given(
    a=st.integers(min_value=0, max_value=2**10 - 1),
    b=st.integers(min_value=0, max_value=2**10 - 1),
)
def test_gcd_divides_both(a, b):
    g = gf2_gcd(a, b)
    if g:
        assert gf2_mod(a, g) == 0
        assert gf2_mod(b, g) == 0
