"""Unit and property tests for GF(2^k) arithmetic."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fields import GF2k, gf2k, irreducible_polynomial, is_irreducible


@pytest.fixture(scope="module")
def f16():
    return gf2k(16)


@pytest.fixture(scope="module")
def f8():
    return gf2k(8)


class TestConstruction:
    def test_order(self):
        assert gf2k(8).order == 256
        assert gf2k(1).order == 2

    def test_cached_instances(self):
        assert gf2k(8) is gf2k(8)

    def test_bad_degree(self):
        with pytest.raises(ValueError):
            GF2k(0)

    def test_reducible_modulus_rejected(self):
        # x^4 + x^2 + 1 = (x^2 + x + 1)^2 is reducible.
        with pytest.raises(ValueError):
            GF2k(4, modulus=0b10101)

    def test_modulus_degree_mismatch(self):
        with pytest.raises(ValueError):
            GF2k(4, modulus=0b1011)  # degree 3

    def test_default_modulus_is_irreducible(self):
        for k in (1, 2, 3, 5, 8, 12, 16, 24, 32, 48, 64):
            assert is_irreducible(irreducible_polynomial(k))

    def test_aes_modulus_accepted(self):
        # x^8 + x^4 + x^3 + x + 1, the AES polynomial.
        f = GF2k(8, modulus=0x11B)
        assert f.mul(0x53, 0xCA) == 0x01  # known AES inverse pair


class TestArithmeticIdentities:
    def test_addition_is_xor(self, f8):
        assert f8.add(0b1010, 0b0110) == 0b1100

    def test_add_sub_same(self, f8):
        # Characteristic 2: subtraction == addition.
        for a, b in [(3, 7), (200, 13), (255, 255)]:
            assert f8.sub(a, b) == f8.add(a, b)

    def test_neg_is_identity(self, f8):
        assert f8.neg(123) == 123

    def test_mul_by_zero_and_one(self, f16):
        assert f16.mul(0, 777) == 0
        assert f16.mul(777, 1) == 777

    def test_inverse_of_zero_raises(self, f16):
        with pytest.raises(ZeroDivisionError):
            f16.inv(0)

    def test_exhaustive_inverse_small_field(self):
        f = gf2k(4)
        for a in range(1, 16):
            assert f.mul(a, f.inv(a)) == 1

    def test_pow_matches_repeated_mul(self, f8):
        a = 0x57
        acc = 1
        for e in range(10):
            assert f8.pow(a, e) == acc
            acc = f8.mul(acc, a)

    def test_pow_negative_exponent(self, f8):
        a = 0x57
        assert f8.mul(f8.pow(a, -1), a) == 1
        assert f8.pow(a, -2) == f8.inv(f8.mul(a, a))

    def test_fermat(self, f8):
        # a^(2^k - 1) == 1 for nonzero a.
        for a in (1, 2, 77, 255):
            assert f8.pow(a, f8.order - 1) == 1


class TestTablelessFields:
    """Fields with k > TABLE_MAX_K use carry-less arithmetic directly."""

    def test_large_field_matches_table_field_structure(self):
        f = gf2k(32)
        assert f._exp is None
        a, b = 0xDEADBEEF, 0x12345678
        ab = f.mul(a, b)
        assert f.mul(ab, f.inv(b)) == a

    def test_large_field_inverse(self):
        f = gf2k(64)
        a = 0x0123456789ABCDEF
        assert f.mul(a, f.inv(a)) == 1


class TestElements:
    def test_operators(self, f16):
        a, b = f16(1234), f16(5678)
        assert (a + b).value == f16.add(1234, 5678)
        assert (a * b).value == f16.mul(1234, 5678)
        assert (a - b) == (a + b)  # char 2
        assert (a / b) * b == a
        assert (-a) == a
        assert a ** 3 == a * a * a

    def test_element_immutable(self, f16):
        a = f16(5)
        with pytest.raises(AttributeError):
            a.value = 6

    def test_mixed_field_rejected(self, f8, f16):
        with pytest.raises(ValueError):
            _ = f8(1) + f16(1)

    def test_int_coercion(self, f8):
        assert f8(3) + 5 == f8(6)  # 3 XOR 5
        assert 5 + f8(3) == f8(6)
        assert int(f8(77)) == 77

    def test_bool(self, f8):
        assert not f8(0)
        assert f8(1)

    def test_sum_helper(self, f8):
        items = [f8(v) for v in (1, 2, 4, 8)]
        assert f8.sum(items) == f8(15)
        assert f8.sum([]) == f8.zero()


class TestBits:
    def test_roundtrip(self, f8):
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        assert f8.to_bits(f8.from_bits(bits)) == bits

    def test_too_many_bits(self, f8):
        with pytest.raises(ValueError):
            f8.from_bits([0] * 9)

    def test_bad_bit(self, f8):
        with pytest.raises(ValueError):
            f8.from_bits([2])

    def test_to_bits_width(self, f16):
        assert len(f16.to_bits(f16(1))) == 16


class TestRandom:
    def test_random_nonzero(self, f8):
        rng = random.Random(0)
        for _ in range(200):
            assert f8.random_nonzero(rng).value != 0

    def test_random_in_range(self, f8):
        rng = random.Random(1)
        for _ in range(200):
            assert 0 <= f8.random(rng).value < 256


# -- hypothesis property tests -----------------------------------------

el16 = st.integers(min_value=0, max_value=2**16 - 1)


@settings(max_examples=200)
@given(a=el16, b=el16, c=el16)
def test_field_axioms_gf16(a, b, c):
    f = gf2k(16)
    # associativity / commutativity / distributivity
    assert f.mul(a, f.mul(b, c)) == f.mul(f.mul(a, b), c)
    assert f.mul(a, b) == f.mul(b, a)
    assert f.add(a, b) == f.add(b, a)
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))


@settings(max_examples=200)
@given(a=el16)
def test_inverse_property_gf16(a):
    f = gf2k(16)
    if a == 0:
        return
    assert f.mul(a, f.inv(a)) == 1


@settings(max_examples=100)
@given(a=st.integers(min_value=0, max_value=2**32 - 1),
       b=st.integers(min_value=0, max_value=2**32 - 1))
def test_tableless_agrees_with_structure(a, b):
    f = gf2k(32)
    ab = f.mul(a, b)
    if b:
        assert f.mul(ab, f.inv(b)) == a
